//! Criterion bench behind **Table I / Fig. 1**: time to count one generated
//! instance of each logic, per configuration.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pact::{pact_count, CounterConfig};
use pact_bench::{run_one, Configuration, HarnessConfig};
use pact_benchgen::{generate_for_logic, GenParams};
use pact_ir::logic::Logic;

fn bench_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("counting_per_logic");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    let harness = HarnessConfig {
        timeout: Duration::from_secs(2),
        iterations: 1,
        seed: 1,
        ..HarnessConfig::default()
    };
    let params = GenParams {
        scale: 1,
        width: 5,
        seed: 3,
    };
    for logic in Logic::TABLE_ONE {
        let instance = generate_for_logic(logic, &params);
        for configuration in Configuration::ALL {
            let id = BenchmarkId::new(configuration.label(), logic.name());
            group.bench_with_input(id, &instance, |b, inst| {
                b.iter(|| run_one(inst, configuration, &harness));
            });
        }
    }
    group.finish();
}

/// The round scheduler's speedup: a 16-iteration count on a saturating
/// instance, serial vs. one worker per round.  The outcome is bit-identical
/// for every thread count (asserted below), so the only difference the
/// scheduler is allowed to make — wall-clock time — is what this measures.
fn bench_parallel_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_rounds");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(20));
    let params = GenParams {
        scale: 2,
        width: 9,
        seed: 5,
    };
    let instance = generate_for_logic(Logic::QfBv, &params);
    // No deadline: the cross-thread equality assertion below relies on the
    // deadline-free determinism guarantee (a wall-clock budget could expire
    // at a different round depending on thread count and machine load).
    let config_for = |threads: usize| {
        CounterConfig {
            iterations_override: Some(16),
            seed: 11,
            ..CounterConfig::default()
        }
        .with_threads(threads)
    };
    // The scheduler must not change the result, only the wall-clock time.
    let serial = pact_count(
        &mut instance.tm.clone(),
        &instance.asserts,
        &instance.projection,
        &config_for(1),
    )
    .expect("serial count");
    let wide = pact_count(
        &mut instance.tm.clone(),
        &instance.asserts,
        &instance.projection,
        &config_for(16),
    )
    .expect("parallel count");
    assert_eq!(
        serial.outcome, wide.outcome,
        "thread count changed the outcome"
    );

    for threads in [1usize, 2, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut tm = instance.tm.clone();
                    pact_count(
                        &mut tm,
                        &instance.asserts,
                        &instance.projection,
                        &config_for(threads),
                    )
                    .expect("count under bench")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_counting, bench_parallel_rounds);
criterion_main!(benches);
