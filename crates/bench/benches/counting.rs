//! Criterion bench behind **Table I / Fig. 1**: time to count one generated
//! instance of each logic, per configuration.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pact_bench::{run_one, Configuration, HarnessConfig};
use pact_benchgen::{generate_for_logic, GenParams};
use pact_ir::logic::Logic;

fn bench_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("counting_per_logic");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    let harness = HarnessConfig {
        timeout: Duration::from_secs(2),
        iterations: 1,
        seed: 1,
    };
    let params = GenParams {
        scale: 1,
        width: 5,
        seed: 3,
    };
    for logic in Logic::TABLE_ONE {
        let instance = generate_for_logic(logic, &params);
        for configuration in Configuration::ALL {
            let id = BenchmarkId::new(configuration.label(), logic.name());
            group.bench_with_input(id, &instance, |b, inst| {
                b.iter(|| run_one(inst, configuration, &harness));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_counting);
criterion_main!(benches);
