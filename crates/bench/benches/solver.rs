//! Substrate micro-benchmarks: the SAT core's native XOR path vs. CNF
//! expansion, and the cost of an incremental enumeration query.
//!
//! These support the paper's §III-E claim that native XOR reasoning is the
//! main lever behind `pact_xor`, independently of the counting loop.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pact_sat::{SatResult, Solver, Var};

/// Adds an XOR over `vars` as CNF clauses (every odd-parity combination).
fn add_xor_as_cnf(solver: &mut Solver, vars: &[Var], rhs: bool) {
    let n = vars.len();
    for mask in 0u32..(1 << n) {
        // A clause is needed for every assignment with the wrong parity: the
        // clause forbids it.
        let forbidden = (mask.count_ones() % 2 == 1) != rhs;
        if !forbidden {
            continue;
        }
        let clause: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| v.lit((mask >> i) & 1 == 0))
            .collect();
        solver.add_clause(&clause);
    }
}

fn build_chain(native: bool, vars_per_xor: usize, chains: usize) -> Solver {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..vars_per_xor + chains)
        .map(|_| solver.new_var())
        .collect();
    for c in 0..chains {
        let slice: Vec<Var> = vars[c..c + vars_per_xor].to_vec();
        if native {
            solver.add_xor(&slice, c % 2 == 0);
        } else {
            add_xor_as_cnf(&mut solver, &slice, c % 2 == 0);
        }
    }
    solver
}

fn bench_xor_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("xor_native_vs_cnf");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(5));
    for &k in &[6usize, 10usize] {
        group.bench_function(BenchmarkId::new("native", k), |b| {
            b.iter(|| {
                let mut solver = build_chain(true, k, 12);
                assert_ne!(solver.solve(&[]), SatResult::Unknown);
            });
        });
        group.bench_function(BenchmarkId::new("cnf", k), |b| {
            b.iter(|| {
                let mut solver = build_chain(false, k, 12);
                assert_ne!(solver.solve(&[]), SatResult::Unknown);
            });
        });
    }
    group.finish();
}

fn bench_incremental_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_enumeration");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("enumerate_64_models", |b| {
        b.iter(|| {
            let mut solver = Solver::new();
            let vars: Vec<Var> = (0..6).map(|_| solver.new_var()).collect();
            let mut found = 0;
            while solver.solve(&[]) == SatResult::Sat {
                found += 1;
                let blocking: Vec<_> = vars
                    .iter()
                    .map(|&v| v.lit(!solver.model_value(v)))
                    .collect();
                solver.add_clause(&blocking);
            }
            assert_eq!(found, 64);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_xor_paths, bench_incremental_enumeration);
criterion_main!(benches);
