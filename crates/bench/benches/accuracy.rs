//! Criterion bench behind **Fig. 2**: the cost of producing an estimate that
//! is compared against the exact `enum` count (the accuracy experiment's
//! inner loop).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pact::{enumerate_count, pact_count, CounterConfig, HashFamily};
use pact_ir::{Sort, TermManager};

fn instance(width: u32) -> (TermManager, pact_ir::TermId, pact_ir::TermId) {
    // x >= 2^(w-1): exactly half the space, saturating the threshold.
    let mut tm = TermManager::new();
    let x = tm.mk_var("x", Sort::BitVec(width));
    let half = tm.mk_bv_const(1u128 << (width - 1), width);
    let f = tm.mk_bv_ule(half, x).unwrap();
    (tm, x, f)
}

fn bench_accuracy(c: &mut Criterion) {
    let mut group = c.benchmark_group("accuracy_experiment");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));

    group.bench_function(BenchmarkId::new("enum_exact", "w8"), |b| {
        b.iter(|| {
            let (mut tm, x, f) = instance(8);
            enumerate_count(&mut tm, &[f], &[x], 1_000, &CounterConfig::fast()).unwrap()
        });
    });

    for family in HashFamily::ALL {
        group.bench_function(BenchmarkId::new("pact_estimate", family.name()), |b| {
            b.iter(|| {
                let (mut tm, x, f) = instance(8);
                let config = CounterConfig {
                    family,
                    iterations_override: Some(3),
                    seed: 7,
                    ..CounterConfig::default()
                };
                pact_count(&mut tm, &[f], &[x], &config).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_accuracy);
criterion_main!(benches);
