//! Criterion bench behind the **§III-E ablation**: how much harder a single
//! hash-constrained oracle query becomes under each family.
//!
//! The paper's discussion attributes `H_xor`'s win to (a) native XOR
//! reasoning and (b) the bit-width blow-up of the word-level families; this
//! bench measures exactly that query-level cost.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};

use pact_hash::{generate, HashFamily};
use pact_ir::{Sort, TermManager};
use pact_solver::Context;

fn bench_hash_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_constrained_query");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(6));
    for family in HashFamily::ALL {
        for &width in &[8u32, 12u32] {
            let id = BenchmarkId::new(family.name(), format!("w{width}"));
            group.bench_function(id, |b| {
                b.iter(|| {
                    let mut tm = TermManager::new();
                    let x = tm.mk_var("x", Sort::BitVec(width));
                    let y = tm.mk_var("y", Sort::BitVec(width));
                    let sum = tm.mk_bv_add(x, y).unwrap();
                    let c0 = tm.mk_bv_const(37 % (1 << width.min(20)), width);
                    let f = tm.mk_bv_ule(c0, sum).unwrap();
                    let mut rng = StdRng::seed_from_u64(5);
                    let mut ctx = Context::new();
                    ctx.track_var(x);
                    ctx.track_var(y);
                    ctx.assert_term(f);
                    for _ in 0..3 {
                        let ell = if family == HashFamily::Xor { 1 } else { 4 };
                        let h = generate(&tm, &[x, y], ell, family, &mut rng);
                        h.assert_into(&mut ctx, &mut tm);
                    }
                    ctx.check(&mut tm).unwrap()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hash_query);
criterion_main!(benches);
