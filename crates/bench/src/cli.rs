//! Typed argument parsing for the harness binaries.
//!
//! The binaries used to `expect(...)` / `process::exit` their way through
//! `std::env::args`, which made bad invocations untestable and the messages
//! inconsistent.  [`ArgError`] is the structured replacement: parsers return
//! it, `main` renders it (plus the usage line) once, and tests assert on the
//! variant instead of on stderr text.

use std::fmt;

/// A command-line argument the harness binaries could not accept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A flag the binary does not know.
    UnknownFlag {
        /// The flag as given, including the leading dashes.
        flag: String,
    },
    /// A flag that needs a value was the last argument.
    MissingValue {
        /// The flag missing its value.
        flag: &'static str,
    },
    /// A value that failed to parse for its slot.
    InvalidValue {
        /// The positional slot or flag the value was destined for.
        slot: &'static str,
        /// The rejected text.
        got: String,
    },
    /// More positional arguments than the binary takes.
    UnexpectedPositional {
        /// The first extra argument.
        got: String,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::UnknownFlag { flag } => write!(f, "unknown flag {flag}"),
            ArgError::MissingValue { flag } => write!(f, "{flag} needs a value"),
            ArgError::InvalidValue { slot, got } => {
                write!(f, "invalid {slot} argument: {got}")
            }
            ArgError::UnexpectedPositional { got } => {
                write!(f, "unexpected extra argument: {got}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = ArgError::UnknownFlag {
            flag: "--frobnicate".into(),
        };
        assert!(e.to_string().contains("--frobnicate"));
        let e = ArgError::InvalidValue {
            slot: "per_logic",
            got: "many".into(),
        };
        assert!(e.to_string().contains("per_logic"));
        assert!(e.to_string().contains("many"));
        assert_eq!(
            ArgError::MissingValue { flag: "--threads" }.to_string(),
            "--threads needs a value"
        );
    }
}
