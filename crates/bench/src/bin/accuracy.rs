//! Regenerates **Fig. 2** (accuracy check): the observed relative error of
//! every `pact` configuration against the exact count produced by the
//! `enum` baseline, compared with the theoretical bound ε = 0.8.
//!
//! Usage: `cargo run -p pact-bench --bin accuracy --release [instances] [timeout_secs]`

use std::time::Duration;

use pact::{relative_error, CountOutcome, CounterConfig, HashFamily};
use pact_bench::instance_session;
use pact_benchgen::{paper_suite, SuiteParams};

fn main() {
    let mut args = std::env::args().skip(1);
    let per_logic: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let timeout: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    // Small-width instances so the exact enumerator terminates, mirroring the
    // paper's use of instances with counts between 100 and 500.
    let suite = paper_suite(&SuiteParams {
        per_logic,
        min_width: 7,
        max_width: 9,
        max_per_cluster: 5,
        seed: 11,
    });
    println!("instance,logic,family,exact,estimate,relative_error");
    let mut per_family: Vec<(HashFamily, Vec<f64>)> =
        HashFamily::ALL.iter().map(|&f| (f, Vec::new())).collect();

    for instance in &suite {
        // One session per instance: the problem is declared once and counted
        // once exactly plus once per hash family.
        let Ok(mut session) = instance_session(instance) else {
            continue;
        };
        let exact_cfg = CounterConfig::default().with_deadline(Duration::from_secs(timeout));
        let exact = match session.enumerate_with(5_000, &exact_cfg) {
            Ok(report) => match report.outcome {
                CountOutcome::Exact(n) if n >= 1 => n as f64,
                _ => continue, // no exact reference available
            },
            Err(_) => continue,
        };
        for family in HashFamily::ALL {
            let config = CounterConfig {
                family,
                seed: 17,
                deadline: Some(Duration::from_secs(timeout)),
                iterations_override: Some(5),
                ..CounterConfig::default()
            };
            let outcome = match session.count_with(&config) {
                Ok(report) => report.outcome,
                Err(_) => continue,
            };
            if let Some(estimate) = outcome.value() {
                if let Some(err) = relative_error(exact, estimate) {
                    println!(
                        "{},{},{},{},{:.1},{:.4}",
                        instance.name, instance.logic, family, exact, estimate, err
                    );
                    for (f, errors) in &mut per_family {
                        if *f == family {
                            errors.push(err);
                        }
                    }
                }
            }
        }
    }

    eprintln!("\nSummary (theoretical bound ε = 0.8):");
    for (family, errors) in &per_family {
        if errors.is_empty() {
            eprintln!("  pact_{family}: no data");
            continue;
        }
        let max = errors.iter().cloned().fold(0.0f64, f64::max);
        let avg = errors.iter().sum::<f64>() / errors.len() as f64;
        eprintln!(
            "  pact_{family}: {} instances, avg error {:.3}, max error {:.3}",
            errors.len(),
            avg,
            max
        );
    }
}
