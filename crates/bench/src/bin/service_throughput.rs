//! Measures `pact-service` throughput on a mixed benchgen workload:
//! requests/s and p50/p99 end-to-end latency (queue wait + count).
//!
//! Usage:
//!
//! ```text
//! cargo run -p pact-bench --bin service_throughput --release -- \
//!     [--mini] [--shards N] [--requests N] [--queue N] [--seed N] \
//!     [--json PATH]
//! ```
//!
//! * `--mini` uses the ~10-instance smoke suite (the CI job's workload).
//! * `--shards N` sets the service shard count (default 2 — the smoke
//!   acceptance shape; the bench asserts nothing, the CI step does).
//! * `--requests N` sets the workload size (default 32).
//! * `--queue N` sets the admission-queue capacity (default 64; a value
//!   below `--requests` measures throughput under backpressure).
//! * `--json PATH` writes the schema-v7 summary artifact.

use pact_bench::cli::ArgError;
use pact_bench::throughput::{run_service_workload, summary_to_json, ThroughputParams};
use pact_benchgen::{paper_suite, SuiteParams};

const USAGE: &str =
    "usage: service_throughput [--mini] [--shards N] [--requests N] [--queue N] [--seed N] [--json PATH]";

#[derive(Debug, PartialEq)]
struct Args {
    mini: bool,
    shards: usize,
    requests: usize,
    queue: usize,
    seed: u64,
    json: Option<String>,
}

fn parse_args(argv: impl IntoIterator<Item = String>) -> Result<Args, ArgError> {
    let defaults = ThroughputParams::default();
    let mut args = Args {
        mini: false,
        shards: defaults.shards,
        requests: defaults.requests,
        queue: defaults.queue_capacity,
        seed: defaults.seed,
        json: None,
    };
    let mut iter = argv.into_iter();
    while let Some(arg) = iter.next() {
        let mut numeric = |flag: &'static str| -> Result<usize, ArgError> {
            let value = iter.next().ok_or(ArgError::MissingValue { flag })?;
            value.parse().map_err(|_| ArgError::InvalidValue {
                slot: flag,
                got: value,
            })
        };
        match arg.as_str() {
            "--mini" => args.mini = true,
            "--shards" => args.shards = numeric("--shards")?,
            "--requests" => args.requests = numeric("--requests")?,
            "--queue" => args.queue = numeric("--queue")?,
            "--seed" => args.seed = numeric("--seed")? as u64,
            "--json" => {
                args.json = Some(
                    iter.next()
                        .ok_or(ArgError::MissingValue { flag: "--json" })?,
                );
            }
            other if other.starts_with("--") => {
                return Err(ArgError::UnknownFlag {
                    flag: other.to_string(),
                });
            }
            other => {
                return Err(ArgError::UnexpectedPositional {
                    got: other.to_string(),
                });
            }
        }
    }
    Ok(args)
}

fn main() {
    let args = parse_args(std::env::args().skip(1)).unwrap_or_else(|error| {
        eprintln!("{error}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    });

    let suite_params = if args.mini {
        // The table1 --mini smoke suite: every Table I logic at CI scale.
        SuiteParams {
            per_logic: 2,
            min_width: 6,
            max_width: 7,
            max_per_cluster: 1,
            seed: 7,
        }
    } else {
        SuiteParams {
            per_logic: 4,
            min_width: 9,
            max_width: 13,
            ..SuiteParams::default()
        }
    };
    let suite = paper_suite(&suite_params);
    let params = ThroughputParams {
        shards: args.shards,
        requests: args.requests,
        queue_capacity: args.queue,
        seed: args.seed,
        ..ThroughputParams::default()
    };
    eprintln!(
        "pushing {} requests over {} instances through {} shards (queue {})...",
        params.requests,
        suite.len(),
        params.shards,
        params.queue_capacity
    );

    let (summary, records) = run_service_workload(&suite, &params);

    println!("service throughput — mixed workload");
    println!("  requests          {:>10}", summary.requests);
    println!(
        "  shards            {:>10}   (used: {}, served per shard: {:?})",
        summary.shards,
        summary.shards_used(),
        summary.served_per_shard
    );
    println!("  rejected (retried) {:>9}", summary.rejected);
    println!("  elapsed            {:>12.3} s", summary.elapsed_seconds);
    println!("  requests/s         {:>12.2}", summary.requests_per_sec);
    println!("  p50 latency        {:>12.6} s", summary.p50_seconds);
    println!("  p99 latency        {:>12.6} s", summary.p99_seconds);

    if let Some(path) = args.json {
        std::fs::write(&path, summary_to_json(&summary, &records)).expect("write JSON report");
        eprintln!("wrote summary + {} records to {path}", records.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_match_the_acceptance_shape() {
        let args = parse_args(argv(&[])).unwrap();
        assert!(!args.mini);
        assert_eq!(args.shards, 2);
        assert_eq!(args.requests, 32);
        assert_eq!(args.queue, 64);
        assert_eq!(args.json, None);
    }

    #[test]
    fn flags_parse_and_reject_garbage() {
        let args = parse_args(argv(&[
            "--mini",
            "--shards",
            "3",
            "--requests",
            "48",
            "--queue",
            "8",
            "--seed",
            "9",
            "--json",
            "out.json",
        ]))
        .unwrap();
        assert!(args.mini);
        assert_eq!(args.shards, 3);
        assert_eq!(args.requests, 48);
        assert_eq!(args.queue, 8);
        assert_eq!(args.seed, 9);
        assert_eq!(args.json.as_deref(), Some("out.json"));

        assert!(matches!(
            parse_args(argv(&["--shards"])),
            Err(ArgError::MissingValue { flag: "--shards" })
        ));
        assert!(matches!(
            parse_args(argv(&["--shards", "two"])),
            Err(ArgError::InvalidValue { .. })
        ));
        assert!(matches!(
            parse_args(argv(&["--turbo"])),
            Err(ArgError::UnknownFlag { .. })
        ));
        assert!(matches!(
            parse_args(argv(&["32"])),
            Err(ArgError::UnexpectedPositional { .. })
        ));
    }
}
