//! Measures `pact-service` throughput on a mixed benchgen workload:
//! requests/s and p50/p99 end-to-end latency (queue wait + count).
//!
//! Usage:
//!
//! ```text
//! cargo run -p pact-bench --bin service_throughput --release -- \
//!     [--mini] [--shards N[,N...]] [--requests N] [--queue N] [--seed N] \
//!     [--json PATH]
//! ```
//!
//! * `--mini` uses the ~10-instance smoke suite (the CI job's workload).
//! * `--shards N` sets the service shard count (default 2 — the smoke
//!   acceptance shape; the bench asserts nothing, the CI step does).
//!   A comma-separated list (`--shards 1,2,4`) runs the *same* workload
//!   once per count — matrix mode — and `--json` then gets a JSON array
//!   with one summary row per count, for scaling assertions.
//! * `--requests N` sets the workload size (default 32).
//! * `--queue N` sets the admission-queue capacity (default 64; a value
//!   below `--requests` measures throughput under backpressure).
//! * `--json PATH` writes the schema-v9 summary artifact (one line per
//!   shard count).

use pact_bench::cli::ArgError;
use pact_bench::throughput::{run_shard_matrix, summary_to_json, ThroughputParams};
use pact_benchgen::{paper_suite, SuiteParams};

const USAGE: &str = "usage: service_throughput [--mini] [--shards N[,N...]] [--requests N] [--queue N] [--seed N] [--json PATH]";

#[derive(Debug, PartialEq)]
struct Args {
    mini: bool,
    shards: Vec<usize>,
    requests: usize,
    queue: usize,
    seed: u64,
    json: Option<String>,
}

fn parse_args(argv: impl IntoIterator<Item = String>) -> Result<Args, ArgError> {
    let defaults = ThroughputParams::default();
    let mut args = Args {
        mini: false,
        shards: vec![defaults.shards],
        requests: defaults.requests,
        queue: defaults.queue_capacity,
        seed: defaults.seed,
        json: None,
    };
    let mut iter = argv.into_iter();
    while let Some(arg) = iter.next() {
        let mut numeric = |flag: &'static str| -> Result<usize, ArgError> {
            let value = iter.next().ok_or(ArgError::MissingValue { flag })?;
            value.parse().map_err(|_| ArgError::InvalidValue {
                slot: flag,
                got: value,
            })
        };
        match arg.as_str() {
            "--mini" => args.mini = true,
            "--shards" => {
                let value = iter
                    .next()
                    .ok_or(ArgError::MissingValue { flag: "--shards" })?;
                args.shards = value
                    .split(',')
                    .map(|part| {
                        part.trim().parse::<usize>().ok().filter(|&n| n > 0).ok_or(
                            ArgError::InvalidValue {
                                slot: "--shards",
                                got: value.clone(),
                            },
                        )
                    })
                    .collect::<Result<Vec<usize>, ArgError>>()?;
                if args.shards.is_empty() {
                    return Err(ArgError::InvalidValue {
                        slot: "--shards",
                        got: value,
                    });
                }
            }
            "--requests" => args.requests = numeric("--requests")?,
            "--queue" => args.queue = numeric("--queue")?,
            "--seed" => args.seed = numeric("--seed")? as u64,
            "--json" => {
                args.json = Some(
                    iter.next()
                        .ok_or(ArgError::MissingValue { flag: "--json" })?,
                );
            }
            other if other.starts_with("--") => {
                return Err(ArgError::UnknownFlag {
                    flag: other.to_string(),
                });
            }
            other => {
                return Err(ArgError::UnexpectedPositional {
                    got: other.to_string(),
                });
            }
        }
    }
    Ok(args)
}

fn main() {
    let args = parse_args(std::env::args().skip(1)).unwrap_or_else(|error| {
        eprintln!("{error}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    });

    let suite_params = if args.mini {
        // The table1 --mini smoke suite: every Table I logic at CI scale.
        SuiteParams {
            per_logic: 2,
            min_width: 6,
            max_width: 7,
            max_per_cluster: 1,
            seed: 7,
        }
    } else {
        SuiteParams {
            per_logic: 4,
            min_width: 9,
            max_width: 13,
            ..SuiteParams::default()
        }
    };
    let suite = paper_suite(&suite_params);
    let params = ThroughputParams {
        requests: args.requests,
        queue_capacity: args.queue,
        seed: args.seed,
        ..ThroughputParams::default()
    };
    eprintln!(
        "pushing {} requests over {} instances through {:?} shard(s) (queue {})...",
        params.requests,
        suite.len(),
        args.shards,
        params.queue_capacity
    );

    let rows = run_shard_matrix(&suite, &params, &args.shards);

    for (summary, _) in &rows {
        println!(
            "service throughput — mixed workload, {} shard(s)",
            summary.shards
        );
        println!("  requests          {:>10}", summary.requests);
        println!(
            "  shards            {:>10}   (used: {}, served per shard: {:?})",
            summary.shards,
            summary.shards_used(),
            summary.served_per_shard
        );
        println!(
            "  steals             {:>9}   (per shard: {:?})",
            summary.steals(),
            summary.steals_per_shard
        );
        println!("  rejected (retried) {:>9}", summary.rejected);
        println!("  elapsed            {:>12.3} s", summary.elapsed_seconds);
        println!("  requests/s         {:>12.2}", summary.requests_per_sec);
        println!("  p50 latency        {:>12.6} s", summary.p50_seconds);
        println!("  p99 latency        {:>12.6} s", summary.p99_seconds);
    }

    if let Some(path) = args.json {
        // One shard count writes the bare summary object (the historical
        // shape); a matrix run wraps one summary per count in an array.
        let out = if rows.len() == 1 {
            summary_to_json(&rows[0].0, &rows[0].1)
        } else {
            let body = rows
                .iter()
                .map(|(summary, records)| summary_to_json(summary, records).trim_end().to_string())
                .collect::<Vec<_>>()
                .join(",\n");
            format!("[\n{body}\n]\n")
        };
        std::fs::write(&path, out).expect("write JSON report");
        eprintln!("wrote {} summary row(s) to {path}", rows.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_match_the_acceptance_shape() {
        let args = parse_args(argv(&[])).unwrap();
        assert!(!args.mini);
        assert_eq!(args.shards, vec![2]);
        assert_eq!(args.requests, 32);
        assert_eq!(args.queue, 64);
        assert_eq!(args.json, None);
    }

    #[test]
    fn shards_accepts_a_single_count_or_a_matrix() {
        let args = parse_args(argv(&["--shards", "3"])).unwrap();
        assert_eq!(args.shards, vec![3]);
        let args = parse_args(argv(&["--shards", "1,2,4"])).unwrap();
        assert_eq!(args.shards, vec![1, 2, 4]);
        let args = parse_args(argv(&["--shards", " 1 , 2 "])).unwrap();
        assert_eq!(args.shards, vec![1, 2]);
        // Zero shards, empty entries and garbage all name the flag.
        for bad in ["0", "1,,2", "1,zero", ""] {
            assert!(matches!(
                parse_args(argv(&["--shards", bad])),
                Err(ArgError::InvalidValue {
                    slot: "--shards",
                    ..
                })
            ));
        }
    }

    #[test]
    fn flags_parse_and_reject_garbage() {
        let args = parse_args(argv(&[
            "--mini",
            "--shards",
            "3",
            "--requests",
            "48",
            "--queue",
            "8",
            "--seed",
            "9",
            "--json",
            "out.json",
        ]))
        .unwrap();
        assert!(args.mini);
        assert_eq!(args.shards, vec![3]);
        assert_eq!(args.requests, 48);
        assert_eq!(args.queue, 8);
        assert_eq!(args.seed, 9);
        assert_eq!(args.json.as_deref(), Some("out.json"));

        assert!(matches!(
            parse_args(argv(&["--shards"])),
            Err(ArgError::MissingValue { flag: "--shards" })
        ));
        assert!(matches!(
            parse_args(argv(&["--shards", "two"])),
            Err(ArgError::InvalidValue { .. })
        ));
        assert!(matches!(
            parse_args(argv(&["--turbo"])),
            Err(ArgError::UnknownFlag { .. })
        ));
        assert!(matches!(
            parse_args(argv(&["32"])),
            Err(ArgError::UnexpectedPositional { .. })
        ));
    }
}
