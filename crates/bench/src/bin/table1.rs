//! Regenerates **Table I**: number of instances counted per logic for the
//! CDM baseline and the three `pact` configurations.
//!
//! Usage: `cargo run -p pact-bench --bin table1 --release [per_logic] [timeout_secs]`

use std::time::Duration;

use pact_bench::{run_suite, table_one, HarnessConfig};
use pact_benchgen::{paper_suite, SuiteParams};

fn main() {
    let mut args = std::env::args().skip(1);
    let per_logic: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let timeout: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);

    // Wider projections than the smoke defaults so the four configurations
    // separate the way the paper's evaluation does.
    let suite_params = SuiteParams {
        per_logic,
        min_width: 9,
        max_width: 13,
        ..SuiteParams::default()
    };
    let suite = paper_suite(&suite_params);
    eprintln!(
        "running {} instances x 4 configurations (timeout {timeout}s per run)...",
        suite.len()
    );
    let harness = HarnessConfig {
        timeout: Duration::from_secs(timeout),
        ..HarnessConfig::default()
    };
    let records = run_suite(&suite, &harness);
    println!("Table I — instances counted per logic (projection on BV variables)\n");
    println!("{}", table_one(&records, &suite));
}
