//! Regenerates **Table I**: number of instances counted per logic for the
//! CDM baseline and the three `pact` configurations.
//!
//! Usage:
//!
//! ```text
//! cargo run -p pact-bench --bin table1 --release -- \
//!     [per_logic] [timeout_secs] [--threads N] [--json PATH] [--mini] \
//!     [--backend rebuild|incremental|portfolio|cube|adaptive|both|all]
//! ```
//!
//! * `--threads N` fans the suite's runs across `N` workers (`0` = all
//!   cores; the default).  Each run keeps its own per-instance deadline.
//! * `--json PATH` additionally writes every run record as JSON (the CI
//!   smoke-bench artifact format).
//! * `--mini` switches to the ~10-instance smoke suite with narrow widths
//!   and a short default timeout, sized for a CI job.
//! * `--backend` selects the oracle backend (default: `incremental`, the
//!   engine default); `both` runs the whole suite once per single-engine
//!   backend so the artifact carries per-backend `rebuilds` and oracle
//!   wall time (how the incremental speedup is tracked across PRs),
//!   `portfolio` races diversified workers inside every oracle call (the
//!   artifact gains per-worker win counts), `cube` splits every hard
//!   oracle call into parallel sub-solves (the artifact gains
//!   `cubes_split` / `cubes_solved` / `cube_refuted_by_lookahead`),
//!   `adaptive` re-routes every check through the policy oracle (the
//!   artifact gains `policy_switches` / `policy_backend_checks` /
//!   `cube_depth_max`), and `all` runs all five.

use std::time::Duration;

use pact_bench::cli::ArgError;
use pact_bench::{records_to_json, run_suite_parallel, table_one, Backend, HarnessConfig};
use pact_benchgen::{paper_suite, SuiteParams};

const USAGE: &str = "usage: table1 [per_logic] [timeout_secs] [--threads N] [--json PATH] [--mini] [--backend rebuild|incremental|portfolio|cube|adaptive|both|all]";

#[derive(Debug, PartialEq)]
struct Args {
    per_logic: Option<u32>,
    timeout: Option<u64>,
    threads: usize,
    json: Option<String>,
    mini: bool,
    backends: Vec<Backend>,
}

fn parse_args(argv: impl IntoIterator<Item = String>) -> Result<Args, ArgError> {
    let mut args = Args {
        per_logic: None,
        timeout: None,
        threads: 0,
        json: None,
        mini: false,
        backends: vec![Backend::Incremental],
    };
    let mut positional = 0;
    let mut iter = argv.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threads" => {
                let value = iter
                    .next()
                    .ok_or(ArgError::MissingValue { flag: "--threads" })?;
                args.threads = value.parse().map_err(|_| ArgError::InvalidValue {
                    slot: "--threads",
                    got: value,
                })?;
            }
            "--json" => {
                args.json = Some(
                    iter.next()
                        .ok_or(ArgError::MissingValue { flag: "--json" })?,
                );
            }
            "--mini" => args.mini = true,
            "--backend" => {
                let value = iter
                    .next()
                    .ok_or(ArgError::MissingValue { flag: "--backend" })?;
                args.backends = match value.as_str() {
                    "both" => Backend::SINGLE_ENGINE.to_vec(),
                    "all" => Backend::ALL.to_vec(),
                    // Single backends resolve through the engine's spec
                    // grammar so the CLI names can never drift from
                    // `BackendSpec`.  The harness pins its own parallel
                    // parameters (adaptive worker counts), so explicit
                    // `portfolio:4`-style parameters are rejected rather
                    // than silently overridden.
                    other => {
                        let spec = other.parse::<pact::BackendSpec>().map_err(|_| {
                            ArgError::InvalidValue {
                                slot: "--backend",
                                got: value.clone(),
                            }
                        })?;
                        if other.contains(':') {
                            return Err(ArgError::InvalidValue {
                                slot: "--backend",
                                got: value,
                            });
                        }
                        vec![Backend::from_spec(spec)]
                    }
                };
            }
            other if other.starts_with("--") => {
                return Err(ArgError::UnknownFlag {
                    flag: other.to_string(),
                });
            }
            other => {
                match positional {
                    0 => {
                        args.per_logic =
                            Some(other.parse().map_err(|_| ArgError::InvalidValue {
                                slot: "per_logic",
                                got: other.to_string(),
                            })?)
                    }
                    1 => {
                        args.timeout = Some(other.parse().map_err(|_| ArgError::InvalidValue {
                            slot: "timeout_secs",
                            got: other.to_string(),
                        })?)
                    }
                    _ => {
                        return Err(ArgError::UnexpectedPositional {
                            got: other.to_string(),
                        })
                    }
                }
                positional += 1;
            }
        }
    }
    Ok(args)
}

fn main() {
    let args = parse_args(std::env::args().skip(1)).unwrap_or_else(|error| {
        eprintln!("{error}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    });

    let (suite_params, default_timeout) = if args.mini {
        // ~10 instances at smoke scale: fast enough for a CI job while still
        // covering every Table I logic.
        (
            SuiteParams {
                per_logic: args.per_logic.unwrap_or(2),
                min_width: 6,
                max_width: 7,
                max_per_cluster: 1,
                seed: 7,
            },
            2,
        )
    } else {
        // Wider projections than the smoke defaults so the four
        // configurations separate the way the paper's evaluation does.
        (
            SuiteParams {
                per_logic: args.per_logic.unwrap_or(4),
                min_width: 9,
                max_width: 13,
                ..SuiteParams::default()
            },
            5,
        )
    };
    let timeout = args.timeout.unwrap_or(default_timeout);
    let suite = paper_suite(&suite_params);
    eprintln!(
        "running {} instances x 4 configurations (timeout {timeout}s per run, {} threads)...",
        suite.len(),
        if args.threads == 0 {
            "all".to_string()
        } else {
            args.threads.to_string()
        }
    );
    let mut all_records = Vec::new();
    for backend in &args.backends {
        let harness = HarnessConfig {
            timeout: Duration::from_secs(timeout),
            backend: *backend,
            ..HarnessConfig::default()
        };
        let records = run_suite_parallel(&suite, &harness, args.threads);
        println!(
            "Table I — instances counted per logic (projection on BV variables, {} backend)\n",
            backend.label()
        );
        println!("{}", table_one(&records, &suite));
        all_records.extend(records);
    }
    if let Some(path) = args.json {
        std::fs::write(&path, records_to_json(&all_records)).expect("write JSON report");
        eprintln!("wrote {} records to {path}", all_records.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_and_positionals_parse() {
        let args = parse_args(argv(&[
            "3",
            "7",
            "--threads",
            "4",
            "--json",
            "out.json",
            "--mini",
            "--backend",
            "both",
        ]))
        .unwrap();
        assert_eq!(args.per_logic, Some(3));
        assert_eq!(args.timeout, Some(7));
        assert_eq!(args.threads, 4);
        assert_eq!(args.json.as_deref(), Some("out.json"));
        assert!(args.mini);
        assert_eq!(args.backends, vec![Backend::Rebuild, Backend::Incremental]);
    }

    #[test]
    fn backend_flag_parses_each_choice() {
        // The unflagged default follows the engine default (incremental
        // since the rebuild demotion).
        assert_eq!(
            parse_args(argv(&[])).unwrap().backends,
            vec![Backend::Incremental]
        );
        assert_eq!(
            parse_args(argv(&["--backend", "rebuild"]))
                .unwrap()
                .backends,
            vec![Backend::Rebuild]
        );
        assert_eq!(
            parse_args(argv(&["--backend", "incremental"]))
                .unwrap()
                .backends,
            vec![Backend::Incremental]
        );
        assert_eq!(
            parse_args(argv(&["--backend", "portfolio"]))
                .unwrap()
                .backends,
            vec![Backend::Portfolio]
        );
        assert_eq!(
            parse_args(argv(&["--backend", "cube"])).unwrap().backends,
            vec![Backend::Cube]
        );
        assert_eq!(
            parse_args(argv(&["--backend", "adaptive"]))
                .unwrap()
                .backends,
            vec![Backend::Adaptive]
        );
        assert_eq!(
            parse_args(argv(&["--backend", "all"])).unwrap().backends,
            vec![
                Backend::Rebuild,
                Backend::Incremental,
                Backend::Portfolio,
                Backend::Cube,
                Backend::Adaptive
            ]
        );
        assert_eq!(
            parse_args(argv(&["--backend", "sideways"])),
            Err(ArgError::InvalidValue {
                slot: "--backend",
                got: "sideways".to_string()
            })
        );
        // The harness pins its own worker counts, so explicit spec
        // parameters are rejected instead of silently overridden.
        assert_eq!(
            parse_args(argv(&["--backend", "portfolio:4"])),
            Err(ArgError::InvalidValue {
                slot: "--backend",
                got: "portfolio:4".to_string()
            })
        );
        assert_eq!(
            parse_args(argv(&["--backend"])),
            Err(ArgError::MissingValue { flag: "--backend" })
        );
    }

    #[test]
    fn bad_invocations_report_typed_errors() {
        assert_eq!(
            parse_args(argv(&["--threads"])),
            Err(ArgError::MissingValue { flag: "--threads" })
        );
        assert_eq!(
            parse_args(argv(&["--threads", "lots"])),
            Err(ArgError::InvalidValue {
                slot: "--threads",
                got: "lots".to_string()
            })
        );
        assert_eq!(
            parse_args(argv(&["--frobnicate"])),
            Err(ArgError::UnknownFlag {
                flag: "--frobnicate".to_string()
            })
        );
        assert_eq!(
            parse_args(argv(&["two"])),
            Err(ArgError::InvalidValue {
                slot: "per_logic",
                got: "two".to_string()
            })
        );
        assert_eq!(
            parse_args(argv(&["1", "2", "3"])),
            Err(ArgError::UnexpectedPositional {
                got: "3".to_string()
            })
        );
    }
}
