//! Regenerates **Table I**: number of instances counted per logic for the
//! CDM baseline and the three `pact` configurations.
//!
//! Usage:
//!
//! ```text
//! cargo run -p pact-bench --bin table1 --release -- \
//!     [per_logic] [timeout_secs] [--threads N] [--json PATH] [--mini]
//! ```
//!
//! * `--threads N` fans the suite's runs across `N` workers (`0` = all
//!   cores; the default).  Each run keeps its own per-instance deadline.
//! * `--json PATH` additionally writes every run record as JSON (the CI
//!   smoke-bench artifact format).
//! * `--mini` switches to the ~10-instance smoke suite with narrow widths
//!   and a short default timeout, sized for a CI job.

use std::time::Duration;

use pact_bench::{records_to_json, run_suite_parallel, table_one, HarnessConfig};
use pact_benchgen::{paper_suite, SuiteParams};

struct Args {
    per_logic: Option<u32>,
    timeout: Option<u64>,
    threads: usize,
    json: Option<String>,
    mini: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        per_logic: None,
        timeout: None,
        threads: 0,
        json: None,
        mini: false,
    };
    let mut positional = 0;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threads" => {
                args.threads = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
            }
            "--json" => {
                args.json = Some(iter.next().expect("--json needs a path"));
            }
            "--mini" => args.mini = true,
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: table1 [per_logic] [timeout_secs] [--threads N] [--json PATH] [--mini]"
                );
                std::process::exit(2);
            }
            other => {
                match positional {
                    0 => match other.parse() {
                        Ok(v) => args.per_logic = Some(v),
                        Err(_) => usage_error("per_logic", other),
                    },
                    1 => match other.parse() {
                        Ok(v) => args.timeout = Some(v),
                        Err(_) => usage_error("timeout_secs", other),
                    },
                    _ => usage_error("(extra)", other),
                }
                positional += 1;
            }
        }
    }
    args
}

fn usage_error(slot: &str, got: &str) -> ! {
    eprintln!("invalid {slot} argument: {got}");
    eprintln!("usage: table1 [per_logic] [timeout_secs] [--threads N] [--json PATH] [--mini]");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();

    let (suite_params, default_timeout) = if args.mini {
        // ~10 instances at smoke scale: fast enough for a CI job while still
        // covering every Table I logic.
        (
            SuiteParams {
                per_logic: args.per_logic.unwrap_or(2),
                min_width: 6,
                max_width: 7,
                max_per_cluster: 1,
                seed: 7,
            },
            2,
        )
    } else {
        // Wider projections than the smoke defaults so the four
        // configurations separate the way the paper's evaluation does.
        (
            SuiteParams {
                per_logic: args.per_logic.unwrap_or(4),
                min_width: 9,
                max_width: 13,
                ..SuiteParams::default()
            },
            5,
        )
    };
    let timeout = args.timeout.unwrap_or(default_timeout);
    let suite = paper_suite(&suite_params);
    eprintln!(
        "running {} instances x 4 configurations (timeout {timeout}s per run, {} threads)...",
        suite.len(),
        if args.threads == 0 {
            "all".to_string()
        } else {
            args.threads.to_string()
        }
    );
    let harness = HarnessConfig {
        timeout: Duration::from_secs(timeout),
        ..HarnessConfig::default()
    };
    let records = run_suite_parallel(&suite, &harness, args.threads);
    println!("Table I — instances counted per logic (projection on BV variables)\n");
    println!("{}", table_one(&records, &suite));
    if let Some(path) = args.json {
        std::fs::write(&path, records_to_json(&records)).expect("write JSON report");
        eprintln!("wrote {} records to {path}", records.len());
    }
}
