//! Regenerates the **Theorem 1** measurement: the number of SMT oracle calls
//! grows logarithmically with the number of projection bits `|S|` — and
//! compares every oracle backend on the same sweep, reporting per-backend
//! encoder rebuilds and oracle wall time (the incremental backend's
//! `rebuilds` column is 0 by construction; the portfolio's sums its
//! rebuild-style workers).
//!
//! Usage: `cargo run -p pact-bench --bin oracle_calls --release [max_width]`

use pact::{HashFamily, Session};
use pact_bench::Backend;
use pact_ir::{Sort, TermManager};

fn main() {
    let max_width: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(14);

    println!(
        "backend,projection_bits,oracle_calls,cells_explored,calls_per_iteration,rebuilds,oracle_seconds,wall_seconds"
    );
    for backend in Backend::ALL {
        for width in (6..=max_width).step_by(2) {
            // A formula whose projected count is always half the space, so
            // the hashing path runs at every width.
            let mut tm = TermManager::new();
            let x = tm.mk_var("x", Sort::BitVec(width));
            let half = tm.mk_bv_const(1u128 << (width - 1), width);
            let f = tm.mk_bv_ule(half, x).unwrap();
            let session = Session::builder(tm)
                .assert(f)
                .project(x)
                .family(HashFamily::Xor)
                .iterations(3)
                .seed(9)
                .oracle_factory(backend.oracle_factory())
                .build();
            match session.and_then(|mut s| s.count()) {
                Ok(report) => {
                    let iters = report.stats.iterations.max(1) as f64;
                    println!(
                        "{},{},{},{},{:.1},{},{:.6},{:.6}",
                        backend.label(),
                        width,
                        report.stats.oracle_calls,
                        report.stats.cells_explored,
                        report.stats.cells_explored as f64 / iters,
                        report.stats.rebuilds,
                        report.stats.oracle_seconds,
                        report.stats.wall_seconds
                    );
                }
                Err(e) => eprintln!("{} width {width}: {e}", backend.label()),
            }
        }
    }
}
