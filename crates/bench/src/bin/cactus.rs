//! Regenerates **Fig. 1** (the cactus plot): for each configuration, the
//! cumulative runtime over the instances it solves, as CSV suitable for
//! plotting.
//!
//! Usage: `cargo run -p pact-bench --bin cactus --release [per_logic] [timeout_secs]`

use std::time::Duration;

use pact_bench::{cactus_report, cactus_series, run_suite, HarnessConfig};
use pact_benchgen::{paper_suite, SuiteParams};

fn main() {
    let mut args = std::env::args().skip(1);
    let per_logic: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let timeout: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);

    // Wider projections than the smoke defaults so the four configurations
    // separate the way the paper's evaluation does.
    let suite = paper_suite(&SuiteParams {
        per_logic,
        min_width: 9,
        max_width: 13,
        ..SuiteParams::default()
    });
    eprintln!(
        "running {} instances x 4 configurations (timeout {timeout}s per run)...",
        suite.len()
    );
    let harness = HarnessConfig {
        timeout: Duration::from_secs(timeout),
        ..HarnessConfig::default()
    };
    let records = run_suite(&suite, &harness);
    let series = cactus_series(&records);
    for (configuration, times) in &series {
        eprintln!(
            "{}: solved {} instances",
            configuration.label(),
            times.len()
        );
    }
    print!("{}", cactus_report(&series));
}
