//! Shared harness code for regenerating the paper's tables and figures.
//!
//! The binaries in `src/bin/` print the same rows / series the paper reports:
//!
//! * `table1`  — instances counted per logic and configuration (Table I);
//! * `cactus`  — sorted per-instance runtimes per configuration (Fig. 1);
//! * `accuracy` — observed relative error against the exact count (Fig. 2);
//! * `oracle_calls` — oracle calls vs. projection size (Theorem 1).
//!
//! Absolute numbers differ from the paper (the substrate is this workspace's
//! own solver on generated workloads, not CVC5 on SMT-LIB 2023 on a cluster),
//! but the comparisons — which configuration wins, by roughly what factor —
//! are the reproduction target.  See `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use pact::parallel::{run_rounds, RoundOutput};
use pact::{CountOutcome, CountReport, CounterConfig, HashFamily, Session};
use pact_benchgen::Instance;
use pact_ir::logic::Logic;

pub mod cli;
pub mod throughput;

/// One counting configuration of the evaluation: the CDM baseline or `pact`
/// with one of the three hash families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Configuration {
    /// The Chistikov–Dimitrova–Majumdar baseline.
    Cdm,
    /// `pact` with the given hash family.
    Pact(HashFamily),
}

impl Configuration {
    /// All configurations in the order of Table I's columns.
    pub const ALL: [Configuration; 4] = [
        Configuration::Cdm,
        Configuration::Pact(HashFamily::Prime),
        Configuration::Pact(HashFamily::Shift),
        Configuration::Pact(HashFamily::Xor),
    ];

    /// Column label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Configuration::Cdm => "CDM",
            Configuration::Pact(HashFamily::Prime) => "pact_prime",
            Configuration::Pact(HashFamily::Shift) => "pact_shift",
            Configuration::Pact(HashFamily::Xor) => "pact_xor",
        }
    }
}

/// Upper bound on the diversified workers the harness's portfolio backend
/// races per oracle `check` — four covers both backend styles plus a
/// polarity flip and a sprint restart schedule.
pub const MAX_HARNESS_WORKERS: usize = 4;

/// Clamps a detected core count into the harness's worker range:
/// `min(cores, 4)` with a floor of one.  Split out of
/// [`portfolio_workers`] so the clamp itself is unit-testable without
/// depending on the machine the tests run on.
pub fn clamp_harness_workers(cores: usize) -> usize {
    cores.clamp(1, MAX_HARNESS_WORKERS)
}

/// Number of workers the harness's parallel backends (portfolio racers,
/// cube conquerors) use per oracle `check`: `min(available cores, 4)`.
/// The count is adaptive because on single-core CI runners a fixed 4-way
/// race serializes and can lose per-instance deadlines the single engines
/// beat.
pub fn portfolio_workers() -> usize {
    clamp_harness_workers(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    )
}

/// Split depth of the harness's cube backend (up to `2^3 = 8` cubes per
/// hard oracle check, the `CubeContext` default).
pub const CUBE_DEPTH: usize = 3;

/// Which built-in oracle backend a run used (the `OracleFactory` choice):
/// the rebuild-on-`pop` debug encoder, the activation-literal incremental
/// encoder that survives `pop` (the default since the default flip), the
/// racing portfolio that fans every `check` out to diversified workers, the
/// cube-and-conquer backend that partitions every hard `check` into
/// sub-solves, or the adaptive policy that re-routes each `check` across
/// the others from observed statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The rebuilding `Context` debug backend.
    Rebuild,
    /// The activation-literal `IncrementalContext` backend (zero rebuilds;
    /// the default).
    #[default]
    Incremental,
    /// The racing `PortfolioContext` backend ([`portfolio_workers`]
    /// workers).
    Portfolio,
    /// The cube-and-conquer `CubeContext` backend ([`CUBE_DEPTH`] split
    /// depth, [`portfolio_workers`] conquering workers).
    Cube,
    /// The adaptive `PolicyOracle` backend (per-check routing).
    Adaptive,
}

impl Backend {
    /// Every backend, in artifact emission order.
    pub const ALL: [Backend; 5] = [
        Backend::Rebuild,
        Backend::Incremental,
        Backend::Portfolio,
        Backend::Cube,
        Backend::Adaptive,
    ];

    /// The two single-engine backends (the pre-portfolio `--backend both`).
    pub const SINGLE_ENGINE: [Backend; 2] = [Backend::Rebuild, Backend::Incremental];

    /// Column label used in reports and the JSON artifact.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Rebuild => "rebuild",
            Backend::Incremental => "incremental",
            Backend::Portfolio => "portfolio",
            Backend::Cube => "cube",
            Backend::Adaptive => "adaptive",
        }
    }

    /// The declarative [`pact::BackendSpec`] this harness backend maps onto
    /// — the single place the enum meets the counting engine's backend API,
    /// so every binary sweeping [`Backend::ALL`] builds the oracle its label
    /// claims.
    pub fn spec(&self) -> pact::BackendSpec {
        match self {
            Backend::Rebuild => pact::BackendSpec::Rebuild,
            Backend::Incremental => pact::BackendSpec::Incremental,
            Backend::Portfolio => pact::BackendSpec::Portfolio {
                workers: portfolio_workers(),
            },
            Backend::Cube => pact::BackendSpec::Cube {
                depth: CUBE_DEPTH,
                workers: portfolio_workers(),
            },
            Backend::Adaptive => pact::BackendSpec::Adaptive,
        }
    }

    /// The `OracleFactory` this backend selects (its [`Backend::spec`]
    /// resolved through the engine's one spec-to-factory mapping).
    pub fn oracle_factory(&self) -> pact::OracleFactory {
        pact::OracleFactory::from_spec(self.spec())
    }

    /// The harness backend sweeping a given engine spec's family.  The
    /// harness pins its own parallel parameters ([`portfolio_workers`],
    /// [`CUBE_DEPTH`]), so an explicit `workers`/`depth` carried by the
    /// spec is not representable here — callers that must honor it should
    /// reject parameterized specs instead of mapping them.
    pub fn from_spec(spec: pact::BackendSpec) -> Backend {
        match spec {
            pact::BackendSpec::Rebuild => Backend::Rebuild,
            pact::BackendSpec::Incremental => Backend::Incremental,
            pact::BackendSpec::Portfolio { .. } => Backend::Portfolio,
            pact::BackendSpec::Cube { .. } => Backend::Cube,
            pact::BackendSpec::Adaptive => Backend::Adaptive,
        }
    }
}

/// The result of running one configuration on one instance.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Instance name.
    pub instance: String,
    /// Instance logic (Table I row).
    pub logic: Logic,
    /// Which configuration ran.
    pub configuration: Configuration,
    /// Which oracle backend ran it.
    pub backend: Backend,
    /// The service shard that served the run, for records produced through
    /// `pact-service` (the throughput bench); `None` for direct runs.
    pub shard: Option<usize>,
    /// Wall-clock seconds the request waited in the service admission queue
    /// before a shard picked it up; `0.0` for direct runs.
    pub queue_seconds: f64,
    /// The deterministic size estimate the service's placement layer
    /// stamped on the request (projection width × interned terms); `0` for
    /// direct runs, which never pass through placement.
    pub cost_estimate: u64,
    /// The counting report (outcome + stats).
    pub report: CountReport,
}

impl RunRecord {
    /// Whether the run finished within its budget.
    pub fn solved(&self) -> bool {
        self.report.outcome.is_solved()
    }

    /// Wall-clock seconds the run took.
    pub fn seconds(&self) -> f64 {
        self.report.stats.wall_seconds
    }
}

/// Harness settings: the per-instance budget and the work-reduction knobs
/// that keep the laptop-scale reproduction tractable.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Per-instance wall-clock budget (the paper uses 3600 s on a cluster;
    /// the default here is deliberately small).
    pub timeout: Duration,
    /// Number of outer iterations per count (overrides Algorithm 3's value;
    /// the guarantee weakens accordingly but the runtime becomes tractable).
    pub iterations: u32,
    /// RNG seed shared by all runs.
    pub seed: u64,
    /// Oracle backend every run builds (see [`Backend`]).
    pub backend: Backend,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            timeout: Duration::from_secs(5),
            iterations: 3,
            seed: 42,
            backend: Backend::Incremental,
        }
    }
}

impl HarnessConfig {
    /// Builds the counter configuration for one run.
    pub fn counter_config(&self, family: HashFamily) -> CounterConfig {
        CounterConfig {
            family,
            seed: self.seed,
            deadline: Some(self.timeout),
            iterations_override: Some(self.iterations),
            ..CounterConfig::default()
        }
        .with_oracle_factory(self.backend.oracle_factory())
    }
}

/// Declares one instance as a counting [`Session`] (cloning the instance's
/// term manager so runs stay independent).
///
/// The harness deliberately goes through the session API: one declared
/// problem is counted under all four configurations of the evaluation via
/// [`Session::count_with`] / [`Session::count_cdm_with`].
///
/// # Errors
///
/// Returns [`pact::CountError`] when the instance declares no projection
/// (generated instances always do).
pub fn instance_session(instance: &Instance) -> Result<Session, pact::CountError> {
    Session::builder(instance.tm.clone())
        .assert_all(&instance.asserts)
        .project_all(&instance.projection)
        .build()
}

/// Runs one configuration on one instance.
pub fn run_one(
    instance: &Instance,
    configuration: Configuration,
    harness: &HarnessConfig,
) -> RunRecord {
    let report = instance_session(instance).and_then(|mut session| match configuration {
        Configuration::Cdm => session.count_cdm_with(&harness.counter_config(HashFamily::Xor)),
        Configuration::Pact(family) => session.count_with(&harness.counter_config(family)),
    });
    let report = report.unwrap_or(CountReport {
        outcome: CountOutcome::Timeout,
        stats: pact::CountStats::default(),
    });
    RunRecord {
        instance: instance.name.clone(),
        logic: instance.logic,
        configuration,
        backend: harness.backend,
        shard: None,
        queue_seconds: 0.0,
        cost_estimate: 0,
        report,
    }
}

/// Runs every configuration on every instance of the suite.
pub fn run_suite(instances: &[Instance], harness: &HarnessConfig) -> Vec<RunRecord> {
    run_suite_parallel(instances, harness, 1)
}

/// Runs every configuration on every instance, fanning the independent
/// `(instance, configuration)` runs across `threads` workers (`0` = all
/// cores).
///
/// Each run owns its clones of the instance's term manager and its own
/// oracle, and each carries its own per-instance deadline
/// ([`HarnessConfig::timeout`]), so a stuck instance only occupies one
/// worker.  Records come back in the same deterministic order `run_suite`
/// produces (instance-major, configuration-minor).  The per-record
/// *verdicts* match a sequential run except near the timeout boundary:
/// `wall_seconds` always reflects the actual run, and an instance whose
/// runtime sits close to the deadline can tip either way when workers
/// oversubscribe the cores.  Suite-level parallelism composes with, and is
/// independent of, the round-level parallelism inside a single count
/// ([`CounterConfig::parallel`]).
pub fn run_suite_parallel(
    instances: &[Instance],
    harness: &HarnessConfig,
    threads: usize,
) -> Vec<RunRecord> {
    let pairs: Vec<(&Instance, Configuration)> = instances
        .iter()
        .flat_map(|instance| {
            Configuration::ALL
                .iter()
                .map(move |&configuration| (instance, configuration))
        })
        .collect();
    let workers = pact::ParallelConfig { threads }.effective_threads();
    // The counting engine's round scheduler is exactly the fan-out needed
    // here: runs never stop the schedule, so every ticket is executed.
    let outputs = run_rounds(workers, pairs.len() as u32, |i| {
        let (instance, configuration) = pairs[i as usize];
        RoundOutput {
            value: run_one(instance, configuration, harness),
            stop: false,
        }
    });
    outputs
        .into_iter()
        .map(|slot| slot.expect("no run stops the schedule"))
        .collect()
}

/// Version of the per-record JSON schema emitted by [`records_to_json`].
///
/// Bump this (and the round-trip test pinning the field list) whenever a
/// field is added, removed or re-typed, so downstream consumers of the CI
/// artifact can dispatch on `schema_version` instead of sniffing keys.
pub const RECORD_SCHEMA_VERSION: u32 = 9;

/// The field names of one JSON record, in emission order (the schema that
/// [`RECORD_SCHEMA_VERSION`] versions).
///
/// Schema v3 added the portfolio accounting triple: `portfolio_workers`
/// (how many workers each oracle `check` raced; 0 for single-engine
/// backends), `worker_wins` (a JSON array of per-worker decisive-answer
/// counts, one entry per configured worker — two-plus non-zero entries mean
/// the diversification is live), and `cancelled_solves` (worker solves cut
/// short after losing a race).
///
/// Schema v4 adds the cube accounting triple: `cubes_split` (oracle checks
/// the cube backend divided into cubes; 0 for every other backend),
/// `cubes_solved` (cubes decisively answered — by lookahead probe or
/// conquest), and `cube_refuted_by_lookahead` (cubes the probe killed
/// before any conquest work was spent).
///
/// Schema v5 adds the persistent-runtime pair: `pool_reuses` (batches the
/// parallel backends' long-lived worker pools served instead of spawning
/// fresh threads; 0 for single-engine backends) and `compactions`
/// (frame-garbage re-encodes the activation-literal oracles performed —
/// their `rebuilds` stays 0).
///
/// Schema v6 adds the service pair: `shard` (which `pact-service` shard
/// served the run; `-1` for direct, non-service runs) and `queue_seconds`
/// (wall-clock time the request waited in the service admission queue;
/// `0.0` for direct runs).  Both come from the `service_throughput` bench.
///
/// Schema v7 adds the hash-consing triple: `terms_interned` (the final size
/// of the interned term store — a size, not a flow), `preprocess_cache_hits`
/// (preprocessing results served from a term-id-keyed cache instead of
/// recomputed) and `probe_cache_hits` (cube lookahead probes answered from
/// the probe-outcome cache; 0 for every other backend).
///
/// Schema v8 adds the adaptive-policy triple: `policy_switches` (backend
/// re-routes the adaptive policy performed; 0 for fixed-strategy backends),
/// `policy_backend_checks` (a JSON array of checks served per backend slot,
/// in the order rebuild, incremental, portfolio, cube — two-plus non-zero
/// entries mean the adaptivity is live) and `cube_depth_max` (the deepest
/// cube split the policy reached; a max, not a flow).
///
/// Schema v9 adds `cost_estimate`: the deterministic size estimate
/// (projection width × interned terms) the service's size-aware placement
/// stamped on the request, `0` for direct runs.  The wire protocol
/// (`pact_service::wire`) mirrors this schema's field names and version on
/// its result objects, and the service throughput summary gains the
/// per-shard steal counters alongside it.
pub const RECORD_SCHEMA_FIELDS: [&str; 31] = [
    "schema_version",
    "instance",
    "logic",
    "configuration",
    "backend",
    "shard",
    "queue_seconds",
    "cost_estimate",
    "outcome",
    "estimate",
    "log2_estimate",
    "oracle_calls",
    "cells_explored",
    "iterations",
    "rebuilds",
    "portfolio_workers",
    "worker_wins",
    "cancelled_solves",
    "cubes_split",
    "cubes_solved",
    "cube_refuted_by_lookahead",
    "pool_reuses",
    "compactions",
    "terms_interned",
    "preprocess_cache_hits",
    "probe_cache_hits",
    "policy_switches",
    "policy_backend_checks",
    "cube_depth_max",
    "oracle_seconds",
    "wall_seconds",
];

/// Renders run records as a JSON array (one object per run), the format the
/// CI smoke-bench job uploads as its artifact.
///
/// Every record carries a `schema_version` field (see
/// [`RECORD_SCHEMA_VERSION`]).
pub fn records_to_json(records: &[RunRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, record) in records.iter().enumerate() {
        let (kind, value, log2) = match record.report.outcome {
            CountOutcome::Exact(n) => ("exact", n as f64, (n as f64).max(1.0).log2()),
            CountOutcome::Approximate {
                estimate,
                log2_estimate,
            } => ("approximate", estimate, log2_estimate),
            CountOutcome::Unsatisfiable => ("unsat", 0.0, 0.0),
            CountOutcome::Timeout => ("timeout", -1.0, -1.0),
        };
        let stats = &record.report.stats;
        // Compact (no inner spaces) so the flat line format stays parseable
        // by split-on-", " consumers: one entry per configured worker.
        let wins = stats.worker_wins[..stats.portfolio_workers as usize]
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        // `shard` is -1 for direct (non-service) runs, so the column stays
        // numeric and split-on-", " parseable.
        let shard = record.shard.map(|s| s as i64).unwrap_or(-1);
        // Compact like `worker_wins`: all four slots, in the fixed rebuild /
        // incremental / portfolio / cube order.
        let policy_checks = stats
            .policy_backend_checks
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            concat!(
                "  {{\"schema_version\": {}, ",
                "\"instance\": \"{}\", \"logic\": \"{}\", \"configuration\": \"{}\", ",
                "\"backend\": \"{}\", \"shard\": {}, \"queue_seconds\": {:.6}, ",
                "\"cost_estimate\": {}, ",
                "\"outcome\": \"{}\", \"estimate\": {}, \"log2_estimate\": {}, ",
                "\"oracle_calls\": {}, \"cells_explored\": {}, \"iterations\": {}, ",
                "\"rebuilds\": {}, \"portfolio_workers\": {}, \"worker_wins\": [{}], ",
                "\"cancelled_solves\": {}, \"cubes_split\": {}, \"cubes_solved\": {}, ",
                "\"cube_refuted_by_lookahead\": {}, \"pool_reuses\": {}, ",
                "\"compactions\": {}, \"terms_interned\": {}, ",
                "\"preprocess_cache_hits\": {}, \"probe_cache_hits\": {}, ",
                "\"policy_switches\": {}, \"policy_backend_checks\": [{}], ",
                "\"cube_depth_max\": {}, ",
                "\"oracle_seconds\": {:.6}, ",
                "\"wall_seconds\": {:.6}}}{}\n"
            ),
            RECORD_SCHEMA_VERSION,
            record.instance,
            record.logic.name(),
            record.configuration.label(),
            record.backend.label(),
            shard,
            record.queue_seconds,
            record.cost_estimate,
            kind,
            value,
            log2,
            stats.oracle_calls,
            stats.cells_explored,
            stats.iterations,
            stats.rebuilds,
            stats.portfolio_workers,
            wins,
            stats.cancelled_solves,
            stats.cubes_split,
            stats.cubes_solved,
            stats.cube_refuted_by_lookahead,
            stats.pool_reuses,
            stats.compactions,
            stats.terms_interned,
            stats.preprocess_cache_hits,
            stats.probe_cache_hits,
            stats.policy_switches,
            policy_checks,
            stats.cube_depth_max,
            stats.oracle_seconds,
            stats.wall_seconds,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    out
}

/// Parses one emitted record line back into its `(key, value)` pairs, with
/// string values unquoted.  This is the test-side half of the schema
/// round-trip: it understands exactly the flat format [`records_to_json`]
/// writes (no nesting, no escapes), which is the point — the schema is
/// pinned, not general.  Deliberately test-only: artifact consumers
/// should use a real JSON parser.
#[cfg(test)]
fn parse_record_line(line: &str) -> Option<Vec<(String, String)>> {
    let line = line.trim().trim_end_matches(',');
    let body = line.strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    for pair in body.split(", ") {
        let (key, value) = pair.split_once(": ")?;
        let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .unwrap_or(value);
        fields.push((key.to_string(), value.to_string()));
    }
    Some(fields)
}

/// Table I: the number of instances counted per logic and configuration.
pub fn table_one(records: &[RunRecord], instances: &[Instance]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>6} {:>12} {:>12} {:>12} {:>12}\n",
        "Logic", "total", "CDM", "pact_prime", "pact_shift", "pact_xor"
    ));
    let mut totals = [0usize; 4];
    for logic in Logic::TABLE_ONE {
        let total = instances.iter().filter(|i| i.logic == logic).count();
        let mut row = format!("{:<22} {:>6}", logic.name(), total);
        for (k, configuration) in Configuration::ALL.iter().enumerate() {
            let solved = records
                .iter()
                .filter(|r| r.logic == logic && r.configuration == *configuration && r.solved())
                .count();
            totals[k] += solved;
            row.push_str(&format!(" {solved:>12}"));
        }
        out.push_str(&row);
        out.push('\n');
    }
    let total_instances = instances.len();
    out.push_str(&format!(
        "{:<22} {:>6} {:>12} {:>12} {:>12} {:>12}\n",
        "Total", total_instances, totals[0], totals[1], totals[2], totals[3]
    ));
    out
}

/// Fig. 1 (cactus plot): for each configuration, the sorted list of runtimes
/// of the instances it solved.  A point `(i, t)` means "the i-th fastest
/// solved instance took `t` seconds".
pub fn cactus_series(records: &[RunRecord]) -> Vec<(Configuration, Vec<f64>)> {
    Configuration::ALL
        .iter()
        .map(|&configuration| {
            let mut times: Vec<f64> = records
                .iter()
                .filter(|r| r.configuration == configuration && r.solved())
                .map(|r| r.seconds())
                .collect();
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            (configuration, times)
        })
        .collect()
}

/// Renders the cactus series as CSV (one line per point).
pub fn cactus_report(series: &[(Configuration, Vec<f64>)]) -> String {
    let mut out = String::from("configuration,instances_solved,cumulative_seconds\n");
    for (configuration, times) in series {
        let mut cumulative = 0.0;
        for (i, t) in times.iter().enumerate() {
            cumulative += t;
            out.push_str(&format!(
                "{},{},{:.4}\n",
                configuration.label(),
                i + 1,
                cumulative
            ));
        }
        if times.is_empty() {
            out.push_str(&format!("{},0,0.0\n", configuration.label()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_benchgen::{paper_suite, SuiteParams};

    fn tiny_suite() -> Vec<Instance> {
        let params = SuiteParams {
            per_logic: 1,
            min_width: 5,
            max_width: 5,
            max_per_cluster: 5,
            seed: 3,
        };
        paper_suite(&params)
    }

    #[test]
    fn configurations_have_stable_labels() {
        let labels: Vec<&str> = Configuration::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["CDM", "pact_prime", "pact_shift", "pact_xor"]);
    }

    #[test]
    fn harness_runs_a_single_instance_with_every_configuration() {
        let suite = tiny_suite();
        let harness = HarnessConfig {
            timeout: Duration::from_secs(10),
            iterations: 1,
            seed: 1,
            ..HarnessConfig::default()
        };
        // Only exercise the first instance to keep the test fast.
        for configuration in Configuration::ALL {
            let record = run_one(&suite[0], configuration, &harness);
            assert_eq!(record.instance, suite[0].name);
            assert!(record.seconds() >= 0.0);
        }
    }

    #[test]
    fn parallel_suite_runner_matches_sequential_outcomes() {
        let suite: Vec<Instance> = tiny_suite().into_iter().take(2).collect();
        let harness = HarnessConfig {
            timeout: Duration::from_secs(10),
            iterations: 1,
            seed: 1,
            ..HarnessConfig::default()
        };
        let sequential = run_suite(&suite, &harness);
        let parallel = run_suite_parallel(&suite, &harness, 4);
        assert_eq!(sequential.len(), parallel.len());
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.instance, b.instance, "record order must be stable");
            assert_eq!(a.configuration, b.configuration);
            assert_eq!(a.report.outcome, b.report.outcome);
        }
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let suite = tiny_suite();
        let harness = HarnessConfig {
            timeout: Duration::from_secs(10),
            iterations: 1,
            seed: 1,
            ..HarnessConfig::default()
        };
        let records = vec![run_one(
            &suite[0],
            Configuration::Pact(HashFamily::Xor),
            &harness,
        )];
        let json = records_to_json(&records);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("\"configuration\": \"pact_xor\""));
        assert!(json.contains("\"oracle_calls\""));
        assert_eq!(json.matches("{\"schema_version\"").count(), records.len());
    }

    #[test]
    fn json_records_round_trip_and_pin_the_schema() {
        let suite = tiny_suite();
        let harness = HarnessConfig {
            timeout: Duration::from_secs(10),
            iterations: 1,
            seed: 1,
            ..HarnessConfig::default()
        };
        let mut records = vec![
            run_one(&suite[0], Configuration::Pact(HashFamily::Xor), &harness),
            run_one(&suite[0], Configuration::Cdm, &harness),
        ];
        // Cover both shapes of the v6 service pair: a direct run (shard -1,
        // zero queue wait) and a service-served run — which, as of v9, also
        // carries its placement cost estimate.
        records[1].shard = Some(1);
        records[1].queue_seconds = 0.25;
        records[1].cost_estimate = 384;
        let json = records_to_json(&records);
        let parsed: Vec<Vec<(String, String)>> = json
            .lines()
            .filter(|l| l.trim_start().starts_with('{'))
            .map(|l| parse_record_line(l).expect("well-formed record line"))
            .collect();
        assert_eq!(parsed.len(), records.len());
        for (fields, record) in parsed.iter().zip(&records) {
            // The schema is pinned: exactly these keys, in this order.
            let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(keys, RECORD_SCHEMA_FIELDS);
            // And the values round-trip.
            let get = |key: &str| {
                fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.as_str())
                    .unwrap()
            };
            assert_eq!(
                get("schema_version").parse::<u32>().unwrap(),
                RECORD_SCHEMA_VERSION
            );
            assert_eq!(get("instance"), record.instance);
            assert_eq!(get("logic"), record.logic.name());
            assert_eq!(get("configuration"), record.configuration.label());
            assert_eq!(get("backend"), record.backend.label());
            // The v6 service pair: -1 / the shard index, and a non-negative
            // queue wait.
            assert_eq!(
                get("shard").parse::<i64>().unwrap(),
                record.shard.map(|s| s as i64).unwrap_or(-1)
            );
            let queued = get("queue_seconds").parse::<f64>().unwrap();
            assert!((queued - record.queue_seconds).abs() < 1e-5);
            assert!(queued >= 0.0);
            // The v9 placement field: 0 for direct runs, the stamped
            // estimate for service runs.
            assert_eq!(
                get("cost_estimate").parse::<u64>().unwrap(),
                record.cost_estimate
            );
            assert_eq!(
                get("oracle_calls").parse::<u64>().unwrap(),
                record.report.stats.oracle_calls
            );
            assert_eq!(
                get("rebuilds").parse::<u64>().unwrap(),
                record.report.stats.rebuilds
            );
            assert_eq!(
                get("portfolio_workers").parse::<u32>().unwrap(),
                record.report.stats.portfolio_workers
            );
            let wins = get("worker_wins");
            assert!(wins.starts_with('[') && wins.ends_with(']'), "{wins}");
            assert_eq!(
                get("cancelled_solves").parse::<u64>().unwrap(),
                record.report.stats.cancelled_solves
            );
            assert_eq!(
                get("cubes_split").parse::<u64>().unwrap(),
                record.report.stats.cubes_split
            );
            assert_eq!(
                get("cubes_solved").parse::<u64>().unwrap(),
                record.report.stats.cubes_solved
            );
            assert_eq!(
                get("cube_refuted_by_lookahead").parse::<u64>().unwrap(),
                record.report.stats.cube_refuted_by_lookahead
            );
            assert_eq!(
                get("pool_reuses").parse::<u64>().unwrap(),
                record.report.stats.pool_reuses
            );
            assert_eq!(
                get("compactions").parse::<u64>().unwrap(),
                record.report.stats.compactions
            );
            // The v7 hash-consing triple: the interned store is never empty
            // for a run that built a formula, and the caches round-trip.
            assert_eq!(
                get("terms_interned").parse::<u64>().unwrap(),
                record.report.stats.terms_interned
            );
            assert!(get("terms_interned").parse::<u64>().unwrap() > 0);
            assert_eq!(
                get("preprocess_cache_hits").parse::<u64>().unwrap(),
                record.report.stats.preprocess_cache_hits
            );
            assert_eq!(
                get("probe_cache_hits").parse::<u64>().unwrap(),
                record.report.stats.probe_cache_hits
            );
            assert!(get("oracle_seconds").parse::<f64>().unwrap() >= 0.0);
            assert_eq!(
                get("iterations").parse::<u32>().unwrap(),
                record.report.stats.iterations
            );
            let wall = get("wall_seconds").parse::<f64>().unwrap();
            assert!((wall - record.report.stats.wall_seconds).abs() < 1e-5);
        }
    }

    #[test]
    fn backends_agree_on_outcomes_and_differ_on_rebuilds() {
        // The per-backend smoke-bench rows must be comparable: identical
        // deterministic outcome slices, with the rebuild column separating
        // the backends (that column is what tracks the speedup across PRs).
        let suite = tiny_suite();
        let base = HarnessConfig {
            timeout: Duration::from_secs(10),
            iterations: 1,
            seed: 1,
            ..HarnessConfig::default()
        };
        let configuration = Configuration::Pact(HashFamily::Xor);
        let rebuild = run_one(
            &suite[0],
            configuration,
            &HarnessConfig {
                backend: Backend::Rebuild,
                ..base
            },
        );
        let incremental = run_one(
            &suite[0],
            configuration,
            &HarnessConfig {
                backend: Backend::Incremental,
                ..base
            },
        );
        assert_eq!(rebuild.backend.label(), "rebuild");
        assert_eq!(incremental.backend.label(), "incremental");
        assert_eq!(rebuild.report.outcome, incremental.report.outcome);
        assert_eq!(
            rebuild.report.stats.oracle_calls,
            incremental.report.stats.oracle_calls
        );
        assert_eq!(incremental.report.stats.rebuilds, 0);
        assert!(incremental.report.stats.oracle_seconds >= 0.0);
        // The JSON artifact distinguishes the rows.
        let json = records_to_json(&[rebuild, incremental]);
        assert!(json.contains("\"backend\": \"rebuild\""));
        assert!(json.contains("\"backend\": \"incremental\""));
        assert!(json.contains("\"rebuilds\": 0"));
    }

    #[test]
    fn portfolio_backend_matches_outcomes_and_spreads_wins() {
        // The smoke-bench acceptance probe at unit scale: the portfolio rows
        // must agree with the reference backend's deterministic outcome
        // slice, and — when the adaptive sizing races at least two workers —
        // the win counts must credit at least two distinct worker
        // configurations (diversification live, not one worker always
        // winning).
        let suite = tiny_suite();
        let base = HarnessConfig {
            timeout: Duration::from_secs(10),
            iterations: 1,
            seed: 1,
            ..HarnessConfig::default()
        };
        let configuration = Configuration::Pact(HashFamily::Xor);
        let rebuild = run_one(
            &suite[0],
            configuration,
            &HarnessConfig {
                backend: Backend::Rebuild,
                ..base
            },
        );
        let portfolio = run_one(
            &suite[0],
            configuration,
            &HarnessConfig {
                backend: Backend::Portfolio,
                ..base
            },
        );
        assert_eq!(portfolio.backend.label(), "portfolio");
        assert_eq!(portfolio.report.outcome, rebuild.report.outcome);
        assert_eq!(
            portfolio.report.stats.oracle_calls,
            rebuild.report.stats.oracle_calls
        );
        assert_eq!(
            portfolio.report.stats.portfolio_workers,
            portfolio_workers() as u32
        );
        let winners = portfolio
            .report
            .stats
            .worker_wins
            .iter()
            .filter(|&&w| w > 0)
            .count();
        // On a single-core runner the adaptive clamp races one worker (the
        // ROADMAP deadline fix) and every win lands in slot 0; with two or
        // more the rotation must spread them.
        let expected_spread = portfolio_workers().min(2);
        assert!(
            winners >= expected_spread,
            "wins = {:?}",
            portfolio.report.stats.worker_wins
        );
        let json = records_to_json(&[portfolio]);
        assert!(json.contains("\"backend\": \"portfolio\""));
        assert!(json.contains(&format!("\"portfolio_workers\": {}", portfolio_workers())));
    }

    #[test]
    fn adaptive_worker_clamp_tracks_min_cores_four() {
        // The ROADMAP open item: min(available cores, 4), floored at one so
        // a failed core probe still builds a working backend.
        assert_eq!(clamp_harness_workers(0), 1);
        assert_eq!(clamp_harness_workers(1), 1);
        assert_eq!(clamp_harness_workers(2), 2);
        assert_eq!(clamp_harness_workers(4), 4);
        assert_eq!(clamp_harness_workers(16), 4);
        assert_eq!(clamp_harness_workers(usize::MAX), MAX_HARNESS_WORKERS);
        // The live probe obeys the clamp whatever machine the tests run on.
        let live = portfolio_workers();
        assert!((1..=MAX_HARNESS_WORKERS).contains(&live));
    }

    #[test]
    fn cube_backend_matches_outcomes_and_splits_cubes() {
        // The cube rows must agree with the reference backend's
        // deterministic outcome slice, and the accounting must show the
        // backend actually split checks into cubes (the CI smoke probe at
        // unit scale).
        let suite = tiny_suite();
        let base = HarnessConfig {
            timeout: Duration::from_secs(10),
            iterations: 1,
            seed: 1,
            ..HarnessConfig::default()
        };
        let configuration = Configuration::Pact(HashFamily::Xor);
        let rebuild = run_one(
            &suite[0],
            configuration,
            &HarnessConfig {
                backend: Backend::Rebuild,
                ..base
            },
        );
        let cube = run_one(
            &suite[0],
            configuration,
            &HarnessConfig {
                backend: Backend::Cube,
                ..base
            },
        );
        assert_eq!(cube.backend.label(), "cube");
        assert_eq!(cube.report.outcome, rebuild.report.outcome);
        assert_eq!(
            cube.report.stats.oracle_calls,
            rebuild.report.stats.oracle_calls
        );
        assert!(
            cube.report.stats.cubes_split > 0,
            "the cube backend never split a check"
        );
        assert!(cube.report.stats.cubes_solved >= cube.report.stats.cube_refuted_by_lookahead);
        assert_eq!(rebuild.report.stats.cubes_split, 0);
        let json = records_to_json(&[cube]);
        assert!(json.contains("\"backend\": \"cube\""));
        assert!(json.contains("\"cubes_split\""));
    }

    #[test]
    fn instance_sessions_count_under_every_configuration() {
        let suite = tiny_suite();
        let mut session = instance_session(&suite[0]).expect("generated instances project");
        let harness = HarnessConfig {
            timeout: Duration::from_secs(10),
            iterations: 1,
            seed: 1,
            ..HarnessConfig::default()
        };
        // One declared problem, four strategies — no re-declaration.
        let cdm = session
            .count_cdm_with(&harness.counter_config(HashFamily::Xor))
            .unwrap();
        assert!(cdm.stats.wall_seconds >= 0.0);
        for family in HashFamily::ALL {
            let report = session.count_with(&harness.counter_config(family)).unwrap();
            assert!(report.stats.oracle_calls > 0, "family {family}");
        }
    }

    #[test]
    fn table_and_cactus_render() {
        let suite = tiny_suite();
        let harness = HarnessConfig {
            timeout: Duration::from_secs(10),
            iterations: 1,
            seed: 1,
            ..HarnessConfig::default()
        };
        // Run only the xor configuration over the suite for speed; the
        // rendering still covers every column (with zero entries).
        let mut records = Vec::new();
        for inst in &suite {
            records.push(run_one(
                inst,
                Configuration::Pact(HashFamily::Xor),
                &harness,
            ));
        }
        let table = table_one(&records, &suite);
        assert!(table.contains("QF_ABV"));
        assert!(table.contains("Total"));
        let series = cactus_series(&records);
        let report = cactus_report(&series);
        assert!(report.starts_with("configuration,"));
        assert!(report.contains("pact_xor"));
    }
}
