//! Service throughput measurement: requests/s and latency percentiles for
//! a mixed workload pushed through a [`CountingService`].
//!
//! The ROADMAP's scaling claim ("serves heavy concurrent traffic") is
//! measured here rather than asserted: the workload interleaves many short
//! incremental counts with periodic hard cube-and-conquer counts — the
//! mixed shape the admission queue and priority lanes exist for — and the
//! summary records end-to-end latency (queue wait + count wall time) as
//! p50/p99 alongside aggregate requests/s and per-shard service counts.
//!
//! Results serialize as bench JSON schema v9 (see
//! [`RECORD_SCHEMA_FIELDS`](crate::RECORD_SCHEMA_FIELDS)): the summary
//! object embeds one per-request [`RunRecord`] carrying the v6 `shard` /
//! `queue_seconds` pair, the v7 hash-consing triple and the v9
//! `cost_estimate`, and the summary itself carries the v8
//! terminal-disposition split (`served_per_shard` counts only requests
//! that truly finished; cancellations, deadline expiries and failures
//! land in their own counters) plus the v9 per-shard steal counters from
//! size-aware placement.
//!
//! [`run_shard_matrix`] repeats the same workload across a list of shard
//! counts and emits one summary row per count — the CI scaling smoke
//! (`service_throughput --shards 1,2,4`) is built on it.
//!
//! Each instance's term store is snapshotted once up front and every
//! request over it is built with
//! [`CountRequest::from_snapshot`](pact_service::CountRequest::from_snapshot):
//! submission shares the interned id table across concurrent requests
//! instead of deep-cloning the manager per request, so identical requests
//! report identical `terms_interned` whichever shard serves them.

use std::time::{Duration, Instant};

use pact::{BackendSpec, HashFamily};
use pact_benchgen::Instance;
use pact_service::{CountRequest, CountingService, Priority, ServiceConfig};

use crate::{records_to_json, Backend, Configuration, RunRecord, RECORD_SCHEMA_VERSION};

/// Sizing of one throughput run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThroughputParams {
    /// Service shard threads.
    pub shards: usize,
    /// Total requests pushed through the service.
    pub requests: usize,
    /// Admission-queue capacity (smaller than `requests` exercises
    /// backpressure: saturated submissions retry until admitted).
    pub queue_capacity: usize,
    /// Seed shared by every request (per-request counts stay deterministic).
    pub seed: u64,
    /// Per-request end-to-end deadline.
    pub deadline: Duration,
}

impl Default for ThroughputParams {
    fn default() -> Self {
        ThroughputParams {
            shards: 2,
            requests: 32,
            queue_capacity: 64,
            seed: 42,
            deadline: Duration::from_secs(10),
        }
    }
}

/// Every `HARD_EVERY`-th request is a hard one: more rounds, counted by the
/// cube-and-conquer backend — the head-of-line-blocking shape the priority
/// lanes exist for (hard requests ride the batch lane).
pub const HARD_EVERY: usize = 8;

/// Aggregate result of one throughput run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputSummary {
    /// Requests completed.
    pub requests: usize,
    /// Shard threads the service ran.
    pub shards: usize,
    /// Requests served per shard (index = shard id).  Counts only terminal
    /// *finishes* — a request that was cancelled or expired mid-flight lands
    /// in [`cancelled`](Self::cancelled) / [`timed_out`](Self::timed_out)
    /// instead.
    pub served_per_shard: Vec<u64>,
    /// Admission rejections observed while submitting (each was retried
    /// until admitted, so every request still completed).
    pub rejected: u64,
    /// Requests that resolved as cancelled (in queue or mid-flight).
    pub cancelled: u64,
    /// Requests whose end-to-end deadline expired before a decisive count.
    pub timed_out: u64,
    /// Requests that resolved with an engine error.
    pub failed: u64,
    /// Work-steals performed per shard (index = thief shard id): how often
    /// an idle shard pulled a queued ticket placed on a busier one.  All
    /// zeros on a single-shard run; a mixed-size multi-shard run is
    /// expected to steal (the CI matrix smoke asserts it).
    pub steals_per_shard: Vec<u64>,
    /// Wall-clock seconds from first submission to last completion.
    pub elapsed_seconds: f64,
    /// Completed requests per wall-clock second.
    pub requests_per_sec: f64,
    /// Median end-to-end latency (queue wait + count), seconds.
    pub p50_seconds: f64,
    /// 99th-percentile end-to-end latency, seconds.
    pub p99_seconds: f64,
}

impl ThroughputSummary {
    /// How many distinct shards served at least one request — the smoke
    /// assertion that sharding is real (`> 1` on a multi-shard run).
    pub fn shards_used(&self) -> usize {
        self.served_per_shard.iter().filter(|&&n| n > 0).count()
    }

    /// Total work-steals across all shards.
    pub fn steals(&self) -> u64 {
        self.steals_per_shard.iter().sum()
    }
}

/// Nearest-rank percentile of an **ascending-sorted** slice (`q` in
/// `0.0..=1.0`).  Returns `0.0` for an empty slice.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Builds the `k`-th request of the mixed workload over `instance`, whose
/// term store is shared through `snapshot` (an `Arc` of the interned id
/// table — the per-request manager is a share, not a deep clone).
fn workload_request(
    instance: &Instance,
    snapshot: &std::sync::Arc<pact_ir::TermSnapshot>,
    k: usize,
    params: &ThroughputParams,
) -> CountRequest {
    let request = CountRequest::from_snapshot(std::sync::Arc::clone(snapshot))
        .assert_all(&instance.asserts)
        .project_all(&instance.projection)
        .family(HashFamily::Xor)
        .seed(params.seed)
        .deadline(params.deadline);
    if k % HARD_EVERY == HARD_EVERY - 1 {
        request
            .backend(BackendSpec::Cube {
                depth: 2,
                workers: 2,
            })
            .iterations(3)
            .priority(Priority::Batch)
    } else {
        request.backend(BackendSpec::Incremental).iterations(1)
    }
}

/// Runs the mixed workload through a fresh service and returns the summary
/// plus one v6 [`RunRecord`] per request (instances are cycled round-robin).
///
/// Submissions retry on [`QueueFull`](pact_service::ServiceError::QueueFull)
/// — with a queue smaller than the request count this measures throughput
/// *under backpressure*, which is the production shape.
///
/// # Panics
///
/// Panics if `instances` is empty or a request fails for a reason other
/// than admission control (generated instances are always supported).
pub fn run_service_workload(
    instances: &[Instance],
    params: &ThroughputParams,
) -> (ThroughputSummary, Vec<RunRecord>) {
    assert!(!instances.is_empty(), "throughput needs instances");
    // One snapshot per instance, taken before any request exists: every
    // request over the same instance shares the same frozen id table.
    let snapshots: Vec<std::sync::Arc<pact_ir::TermSnapshot>> = instances
        .iter()
        .map(|instance| instance.tm.clone().snapshot())
        .collect();
    let service = CountingService::new(ServiceConfig {
        shards: params.shards,
        queue_capacity: params.queue_capacity,
    });
    let started = Instant::now();
    let mut handles = Vec::with_capacity(params.requests);
    for k in 0..params.requests {
        let instance = &instances[k % instances.len()];
        let snapshot = &snapshots[k % instances.len()];
        let handle = loop {
            match service.submit(workload_request(instance, snapshot, k, params)) {
                Ok(handle) => break handle,
                Err(pact_service::ServiceError::QueueFull { .. }) => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("service rejected workload request: {e}"),
            }
        };
        handles.push((k, handle));
    }
    let mut records = Vec::with_capacity(params.requests);
    let mut latencies = Vec::with_capacity(params.requests);
    for (k, handle) in &mut handles {
        let instance = &instances[*k % instances.len()];
        let report = handle.wait().expect("workload request completed");
        let backend = if *k % HARD_EVERY == HARD_EVERY - 1 {
            Backend::Cube
        } else {
            Backend::Incremental
        };
        latencies.push(report.queue_seconds + report.report.stats.wall_seconds);
        records.push(RunRecord {
            instance: instance.name.clone(),
            logic: instance.logic,
            configuration: Configuration::Pact(HashFamily::Xor),
            backend,
            shard: report.shard,
            queue_seconds: report.queue_seconds,
            cost_estimate: report.cost_estimate,
            report: report.report,
        });
    }
    let elapsed = started.elapsed().as_secs_f64();
    let metrics = service.metrics();
    service.shutdown();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let summary = ThroughputSummary {
        requests: records.len(),
        shards: params.shards,
        served_per_shard: metrics.served_per_shard,
        rejected: metrics.rejected,
        cancelled: metrics.cancelled,
        timed_out: metrics.timed_out,
        failed: metrics.failed,
        steals_per_shard: metrics.steals_per_shard,
        elapsed_seconds: elapsed,
        requests_per_sec: records.len() as f64 / elapsed.max(f64::EPSILON),
        p50_seconds: percentile(&latencies, 0.50),
        p99_seconds: percentile(&latencies, 0.99),
    };
    (summary, records)
}

/// Runs the same workload once per entry of `shard_counts` and returns one
/// `(summary, records)` pair per count, in order.  Each run gets a fresh
/// service sized to that shard count; everything else in `params` is
/// shared, so rows are comparable (`service_throughput --shards 1,2,4`
/// emits one JSON line per row).
pub fn run_shard_matrix(
    instances: &[Instance],
    params: &ThroughputParams,
    shard_counts: &[usize],
) -> Vec<(ThroughputSummary, Vec<RunRecord>)> {
    shard_counts
        .iter()
        .map(|&shards| {
            let row_params = ThroughputParams { shards, ..*params };
            run_service_workload(instances, &row_params)
        })
        .collect()
}

/// Renders a throughput summary (plus its per-request records) as the
/// schema-v9 JSON artifact the CI smoke step asserts on.
pub fn summary_to_json(summary: &ThroughputSummary, records: &[RunRecord]) -> String {
    let join = |counts: &[u64]| {
        counts
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",")
    };
    let served = join(&summary.served_per_shard);
    let steals = join(&summary.steals_per_shard);
    format!(
        concat!(
            "{{\"schema_version\": {}, \"kind\": \"service_throughput\", ",
            "\"requests\": {}, \"shards\": {}, \"shards_used\": {}, ",
            "\"served_per_shard\": [{}], \"rejected\": {}, ",
            "\"cancelled\": {}, \"timed_out\": {}, \"failed\": {}, ",
            "\"steals\": {}, \"steals_per_shard\": [{}], ",
            "\"elapsed_seconds\": {:.6}, \"requests_per_sec\": {:.3}, ",
            "\"p50_seconds\": {:.6}, \"p99_seconds\": {:.6}, ",
            "\"records\": {}}}\n"
        ),
        RECORD_SCHEMA_VERSION,
        summary.requests,
        summary.shards,
        summary.shards_used(),
        served,
        summary.rejected,
        summary.cancelled,
        summary.timed_out,
        summary.failed,
        summary.steals(),
        steals,
        summary.elapsed_seconds,
        summary.requests_per_sec,
        summary.p50_seconds,
        summary.p99_seconds,
        records_to_json(records).trim_end(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_benchgen::{paper_suite, SuiteParams};

    fn tiny_suite() -> Vec<Instance> {
        paper_suite(&SuiteParams {
            per_logic: 1,
            min_width: 5,
            max_width: 5,
            max_per_cluster: 5,
            seed: 3,
        })
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.50), 2.0);
        assert_eq!(percentile(&sorted, 0.99), 4.0);
        assert_eq!(percentile(&sorted, 0.25), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 4.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn workload_runs_and_summarizes() {
        let suite = tiny_suite();
        let params = ThroughputParams {
            shards: 2,
            requests: 12,
            queue_capacity: 4, // smaller than requests: exercises retries
            seed: 7,
            deadline: Duration::from_secs(10),
        };
        let (summary, records) = run_service_workload(&suite, &params);
        assert_eq!(summary.requests, 12);
        assert_eq!(records.len(), 12);
        assert_eq!(summary.served_per_shard.iter().sum::<u64>(), 12);
        // Nothing was cancelled or expired, so the disposition split is
        // all-served.
        assert_eq!(summary.cancelled, 0);
        assert_eq!(summary.timed_out, 0);
        assert_eq!(summary.failed, 0);
        assert!(summary.requests_per_sec > 0.0);
        assert!(summary.p50_seconds > 0.0);
        assert!(summary.p99_seconds >= summary.p50_seconds);
        // Steal accounting is per shard and never negative-shaped: one
        // counter per shard thread, whatever its value.
        assert_eq!(summary.steals_per_shard.len(), 2);
        assert_eq!(summary.steals(), summary.steals_per_shard.iter().sum());
        // Every record was served by a real shard and carries the v6 pair
        // plus the v9 placement cost.
        for record in &records {
            assert!(record.shard.is_some());
            assert!(record.queue_seconds >= 0.0);
            assert!(record.cost_estimate >= 1);
        }
        // The mixed workload really mixes: both backends appear.
        assert!(records.iter().any(|r| r.backend == Backend::Cube));
        assert!(records.iter().any(|r| r.backend == Backend::Incremental));
        // Identical requests (same instance, seed, backend) got identical
        // outcomes — the service does not perturb determinism.
        let outcomes: Vec<_> = records
            .iter()
            .enumerate()
            .filter(|(k, r)| k % HARD_EVERY != HARD_EVERY - 1 && r.instance == records[0].instance)
            .map(|(_, r)| r.report.outcome.clone())
            .collect();
        assert!(outcomes.windows(2).all(|w| w[0] == w[1]));
        // Shared-snapshot requests observe the same interned store: every
        // identical request stamps the same `terms_interned`, whichever
        // shard served it.
        let interned: Vec<_> = records
            .iter()
            .enumerate()
            .filter(|(k, r)| k % HARD_EVERY != HARD_EVERY - 1 && r.instance == records[0].instance)
            .map(|(_, r)| r.report.stats.terms_interned)
            .collect();
        assert!(interned[0] > 0, "requests must report the store size");
        assert!(interned.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn summary_json_carries_the_smoke_fields() {
        let suite = tiny_suite();
        let params = ThroughputParams {
            requests: 4,
            ..ThroughputParams::default()
        };
        let (summary, records) = run_service_workload(&suite, &params);
        let json = summary_to_json(&summary, &records);
        assert!(json.starts_with("{\"schema_version\": 9"));
        assert!(json.contains("\"kind\": \"service_throughput\""));
        assert!(json.contains("\"cancelled\": 0"));
        assert!(json.contains("\"timed_out\": 0"));
        assert!(json.contains("\"failed\": 0"));
        assert!(json.contains("\"steals\": "));
        assert!(json.contains("\"steals_per_shard\": ["));
        assert!(json.contains("\"requests_per_sec\""));
        assert!(json.contains("\"p50_seconds\""));
        assert!(json.contains("\"p99_seconds\""));
        assert!(json.contains("\"shards_used\""));
        assert!(json.contains("\"records\": [\n"));
        assert!(json.contains("\"queue_seconds\""));
        assert!(json.contains("\"cost_estimate\""));
    }

    #[test]
    fn shard_matrix_yields_one_row_per_count() {
        let suite = tiny_suite();
        let params = ThroughputParams {
            requests: 6,
            ..ThroughputParams::default()
        };
        let rows = run_shard_matrix(&suite, &params, &[1, 2]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0.shards, 1);
        assert_eq!(rows[1].0.shards, 2);
        for (summary, records) in &rows {
            assert_eq!(summary.requests, 6);
            assert_eq!(records.len(), 6);
            assert_eq!(summary.steals_per_shard.len(), summary.shards);
        }
        // Single-shard runs have nobody to steal from.
        assert_eq!(rows[0].0.steals(), 0);
    }

    #[test]
    fn wire_and_record_schemas_move_together() {
        // The wire protocol mirrors the bench record schema field-for-field;
        // a version skew between the two is a bug, not a feature.
        assert_eq!(
            pact_service::wire::WIRE_SCHEMA_VERSION,
            RECORD_SCHEMA_VERSION
        );
    }
}
