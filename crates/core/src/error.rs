//! Structured error types of the counting API.
//!
//! The counting engine distinguishes *configuration* mistakes (caught before
//! any solving starts, [`ConfigError`]) from *problem* mistakes (an empty
//! projection set) and from *solver* failures surfaced by the oracle
//! ([`SolverError`]).  [`CountError`] is the union the public entry points
//! return; it is `#[non_exhaustive]` so future failure classes (e.g. a
//! remote-oracle transport error) can be added without a breaking release.

use std::fmt;

use pact_solver::SolverError;

use crate::config::BackendSpec;

/// A parameter of [`crate::CounterConfig`] is outside its valid range.
///
/// Every variant carries the offending value so callers (CLIs, services) can
/// render precise diagnostics without parsing message strings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// The tolerance `ε` of the `(ε, δ)` guarantee must be positive.
    NonPositiveEpsilon {
        /// The rejected value.
        epsilon: f64,
    },
    /// The confidence `δ` must lie strictly inside `(0, 1)`.
    DeltaOutOfRange {
        /// The rejected value.
        delta: f64,
    },
    /// Two different built-in backends were selected for the same run (e.g.
    /// `.backend(BackendSpec::Portfolio { workers: 2 })` followed by
    /// `.backend(BackendSpec::Incremental)`).  Earlier versions silently let
    /// the last call win; the conflict is now surfaced with both requests so
    /// the caller can drop the unintended one.
    ConflictingBackends {
        /// The backend selected first.
        first: BackendSpec,
        /// The conflicting later selection.
        second: BackendSpec,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonPositiveEpsilon { epsilon } => {
                write!(f, "epsilon must be positive, got {epsilon}")
            }
            ConfigError::DeltaOutOfRange { delta } => {
                write!(f, "delta must be in (0, 1), got {delta}")
            }
            ConfigError::ConflictingBackends { first, second } => {
                write!(
                    f,
                    "conflicting backend selections: {first} was requested, then {second}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Any failure of a counting run.
///
/// Returned by [`crate::Session`]'s methods and by the compatibility
/// wrappers [`crate::pact_count`], [`crate::cdm_count`] and
/// [`crate::enumerate_count`].  Budget exhaustion (deadline, solver limits)
/// and cooperative cancellation are *not* errors: they are reported as
/// [`crate::CountOutcome::Timeout`] so partial statistics survive.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CountError {
    /// The counter configuration is invalid.
    Config(ConfigError),
    /// The projection set is empty: a projected count needs at least one
    /// variable to project onto.
    EmptyProjection,
    /// The SMT oracle rejected the formula (unsupported fragment) or hit an
    /// internal error.
    Solver(SolverError),
}

impl fmt::Display for CountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CountError::Config(e) => write!(f, "invalid configuration: {e}"),
            CountError::EmptyProjection => f.write_str("empty projection set"),
            CountError::Solver(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CountError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CountError::Config(e) => Some(e),
            CountError::EmptyProjection => None,
            CountError::Solver(e) => Some(e),
        }
    }
}

impl From<ConfigError> for CountError {
    fn from(e: ConfigError) -> Self {
        CountError::Config(e)
    }
}

impl From<SolverError> for CountError {
    fn from(e: SolverError) -> Self {
        CountError::Solver(e)
    }
}

/// Result alias of the counting API.
pub type CountResult<T> = std::result::Result<T, CountError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_carry_typed_fields() {
        let e = ConfigError::NonPositiveEpsilon { epsilon: -1.5 };
        assert!(e.to_string().contains("-1.5"));
        let e = ConfigError::DeltaOutOfRange { delta: 1.0 };
        assert!(e.to_string().contains('1'));
        match CountError::from(e) {
            CountError::Config(ConfigError::DeltaOutOfRange { delta }) => assert_eq!(delta, 1.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn solver_errors_convert_and_chain() {
        let solver = SolverError::Unsupported("nonlinear".to_string());
        let err = CountError::from(solver.clone());
        assert_eq!(err, CountError::Solver(solver));
        assert!(std::error::Error::source(&err).is_some());
        assert!(std::error::Error::source(&CountError::EmptyProjection).is_none());
    }
}
