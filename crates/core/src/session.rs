//! The session-based counting API: declare a problem once, count it many
//! ways.
//!
//! A [`Session`] owns the term manager, the asserted formula and the
//! projection set — the *problem* — while every counting method takes (or
//! stores) a [`CounterConfig`] — the *strategy*.  That split is what the
//! free functions could not offer: benchmark harnesses re-count the same
//! instance under four configurations, services re-count with tightened
//! `(ε, δ)` after a cheap first pass, and neither should re-declare (or
//! re-clone) the formula to do it.
//!
//! Sessions are built with [`Session::builder`], which validates the
//! configuration up front ([`CountError::Config`],
//! [`CountError::EmptyProjection`]) instead of deep inside the first count.
//! Every session carries a [`CancellationToken`] (share it across threads to
//! abort cleanly) and an optional [`Progress`] observer that sees models,
//! cells and rounds as they complete.
//!
//! ```
//! use pact_ir::{TermManager, Sort};
//! use pact::{CountOutcome, HashFamily, Session};
//!
//! let mut tm = TermManager::new();
//! let x = tm.mk_var("x", Sort::BitVec(6));
//! let c = tm.mk_bv_const(12, 6);
//! let f = tm.mk_bv_ult(x, c).unwrap();
//!
//! let mut session = Session::builder(tm)
//!     .assert(f)
//!     .project(x)
//!     .epsilon(0.8)
//!     .delta(0.2)
//!     .seed(1)
//!     .build()
//!     .unwrap();
//!
//! // Count, then count again under a different hash family — the problem
//! // is declared exactly once.
//! let first = session.count().unwrap();
//! assert_eq!(first.outcome, CountOutcome::Exact(12));
//! let prime = session.config().clone().with_family(HashFamily::Prime);
//! let second = session.count_with(&prime).unwrap();
//! assert_eq!(second.outcome, CountOutcome::Exact(12));
//! ```

use std::sync::Arc;
use std::time::Duration;

use pact_hash::HashFamily;
use pact_ir::{TermId, TermManager};
use pact_solver::SolverConfig;

use crate::config::{BackendSpec, CounterConfig, OracleFactory, ParallelConfig};
use crate::error::{ConfigError, CountError, CountResult};
use crate::progress::{CancellationToken, Progress, ProgressEvent, RunControl};
use crate::result::CountReport;
use crate::{cdm, counter, enumerate};

/// A declared counting problem: term manager, formula, projection set, and
/// the default strategy ([`CounterConfig`]) plus run hooks.
///
/// Built via [`Session::builder`]; see the crate-level quickstart for the
/// usage pattern.
pub struct Session {
    tm: TermManager,
    formula: Vec<TermId>,
    projection: Vec<TermId>,
    config: CounterConfig,
    cancel: CancellationToken,
    progress: Option<Arc<dyn Progress>>,
}

impl Session {
    /// Starts declaring a problem over the given term manager.
    pub fn builder(tm: TermManager) -> SessionBuilder {
        SessionBuilder {
            tm,
            formula: Vec::new(),
            projection: Vec::new(),
            config: CounterConfig::default(),
            backend_first: None,
            backend_conflict: None,
            cancel: None,
            progress: None,
        }
    }

    /// The session's default counting configuration.
    pub fn config(&self) -> &CounterConfig {
        &self.config
    }

    /// Replaces the default configuration for subsequent counts.
    ///
    /// # Errors
    ///
    /// Returns [`CountError::Config`] (and leaves the old configuration in
    /// place) when the new parameters are invalid.
    pub fn set_config(&mut self, config: CounterConfig) -> CountResult<()> {
        config.validate()?;
        self.config = config;
        Ok(())
    }

    /// The asserted formula (conjunction of assertions).
    pub fn formula(&self) -> &[TermId] {
        &self.formula
    }

    /// The projection set `S`.
    pub fn projection(&self) -> &[TermId] {
        &self.projection
    }

    /// A clone of the session's cancellation token.  Cancel it — from any
    /// thread, or from inside the progress observer — and the running count
    /// stops at the next cell boundary, reporting
    /// [`CountOutcome::Timeout`](crate::CountOutcome::Timeout)-style partial
    /// results.
    ///
    /// Cancellation is sticky: after an abort, call
    /// [`CancellationToken::reset`] on the token before counting with this
    /// session again, otherwise subsequent counts stop immediately.
    pub fn cancellation(&self) -> CancellationToken {
        self.cancel.clone()
    }

    /// Counts with Algorithm 1 (`pact`) under the session's configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CountError::Solver`] when the formula falls outside the
    /// oracle's supported fragment.
    pub fn count(&mut self) -> CountResult<CountReport> {
        let config = self.config.clone();
        self.count_with(&config)
    }

    /// Counts with Algorithm 1 (`pact`) under an explicit configuration,
    /// leaving the session's default untouched.
    ///
    /// # Errors
    ///
    /// Returns [`CountError::Config`] for an invalid override and
    /// [`CountError::Solver`] for unsupported constructs.
    pub fn count_with(&mut self, config: &CounterConfig) -> CountResult<CountReport> {
        let hooks = self.hooks();
        counter::count_pact(
            &mut self.tm,
            &self.formula,
            &self.projection,
            config,
            &hooks,
        )
    }

    /// Counts with the CDM baseline under the session's configuration.
    ///
    /// # Errors
    ///
    /// As for [`Session::count`].
    pub fn count_cdm(&mut self) -> CountResult<CountReport> {
        let config = self.config.clone();
        self.count_cdm_with(&config)
    }

    /// Counts with the CDM baseline under an explicit configuration.
    ///
    /// # Errors
    ///
    /// As for [`Session::count_with`].
    pub fn count_cdm_with(&mut self, config: &CounterConfig) -> CountResult<CountReport> {
        let hooks = self.hooks();
        cdm::count_cdm(
            &mut self.tm,
            &self.formula,
            &self.projection,
            config,
            &hooks,
        )
    }

    /// Counts exactly by enumeration, up to `limit` models, under the
    /// session's configuration.
    ///
    /// # Errors
    ///
    /// As for [`Session::count`].
    pub fn enumerate(&mut self, limit: u64) -> CountResult<CountReport> {
        let config = self.config.clone();
        self.enumerate_with(limit, &config)
    }

    /// Counts exactly by enumeration under an explicit configuration.
    ///
    /// # Errors
    ///
    /// As for [`Session::count_with`].
    pub fn enumerate_with(
        &mut self,
        limit: u64,
        config: &CounterConfig,
    ) -> CountResult<CountReport> {
        let hooks = self.hooks();
        enumerate::count_enumerate(
            &mut self.tm,
            &self.formula,
            &self.projection,
            limit,
            config,
            &hooks,
        )
    }

    /// Dissolves the session, handing the (possibly grown) term manager
    /// back.  The compatibility wrappers use this to restore the caller's
    /// borrowed manager.
    pub fn into_term_manager(self) -> TermManager {
        self.tm
    }

    fn hooks(&self) -> RunControl {
        RunControl {
            deadline: None, // the engine derives it from the config
            cancel: Some(self.cancel.clone()),
            progress: self.progress.clone(),
        }
    }
}

/// Builder for [`Session`]: problem declaration (assertions, projection)
/// plus every strategy knob of [`CounterConfig`] as a named method.
pub struct SessionBuilder {
    tm: TermManager,
    formula: Vec<TermId>,
    projection: Vec<TermId>,
    config: CounterConfig,
    /// First backend selected via [`SessionBuilder::backend`]; later
    /// *different* selections are a conflict.
    backend_first: Option<BackendSpec>,
    /// The first conflicting pair of backend selections, surfaced as
    /// [`ConfigError::ConflictingBackends`] at [`SessionBuilder::build`].
    backend_conflict: Option<(BackendSpec, BackendSpec)>,
    cancel: Option<CancellationToken>,
    progress: Option<Arc<dyn Progress>>,
}

impl SessionBuilder {
    /// Asserts one boolean term.
    pub fn assert(mut self, t: TermId) -> Self {
        self.formula.push(t);
        self
    }

    /// Asserts every term in the slice.
    pub fn assert_all(mut self, ts: &[TermId]) -> Self {
        self.formula.extend_from_slice(ts);
        self
    }

    /// Adds one variable to the projection set.
    pub fn project(mut self, v: TermId) -> Self {
        self.projection.push(v);
        self
    }

    /// Adds every variable in the slice to the projection set.
    pub fn project_all(mut self, vs: &[TermId]) -> Self {
        self.projection.extend_from_slice(vs);
        self
    }

    /// Replaces the whole configuration (the other strategy methods tweak
    /// individual fields of it).  Deliberately replacing the configuration
    /// also resets any backend selections made so far — the new config's
    /// factory is the fresh starting point.
    pub fn config(mut self, config: CounterConfig) -> Self {
        self.config = config;
        self.backend_first = None;
        self.backend_conflict = None;
        self
    }

    /// Tolerance `ε` of the `(ε, δ)` guarantee.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.config.epsilon = epsilon;
        self
    }

    /// Confidence `δ` of the `(ε, δ)` guarantee.
    pub fn delta(mut self, delta: f64) -> Self {
        self.config.delta = delta;
        self
    }

    /// Hash family used to partition the solution space.
    pub fn family(mut self, family: HashFamily) -> Self {
        self.config.family = family;
        self
    }

    /// Seed for all randomness (hash-function sampling).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Per-count wall-clock budget.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.config.deadline = Some(deadline);
        self
    }

    /// Resource limits handed to the SMT oracle for every check.
    pub fn solver(mut self, solver: SolverConfig) -> Self {
        self.config.solver = solver;
        self
    }

    /// Worker threads for the outer rounds (`0` = all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.parallel = ParallelConfig { threads };
        self
    }

    /// Overrides the number of outer iterations computed from `δ`.
    pub fn iterations(mut self, iterations: u32) -> Self {
        self.config.iterations_override = Some(iterations);
        self
    }

    /// Oracle backend the counts build (per round; see [`OracleFactory`]).
    pub fn oracle_factory(mut self, factory: OracleFactory) -> Self {
        self.config.oracle_factory = factory;
        self
    }

    /// Selects the built-in oracle backend the counts build (see
    /// [`BackendSpec`] for the choices).  The reported count is bit-identical
    /// for every backend; only the work profile changes —
    /// [`BackendSpec::Incremental`] survives `push`/`pop` without rebuilds,
    /// [`BackendSpec::Portfolio`] races diversified workers inside each
    /// `check` (the within-round complement of [`SessionBuilder::threads`]),
    /// and [`BackendSpec::Cube`] partitions hard checks into sub-solves.
    ///
    /// Selecting two *different* backends on the same builder is reported as
    /// [`ConfigError::ConflictingBackends`] by [`SessionBuilder::build`]
    /// (earlier versions silently let the last call win).  Re-selecting the
    /// same spec is fine.
    pub fn backend(mut self, spec: BackendSpec) -> Self {
        match self.backend_first {
            None => self.backend_first = Some(spec),
            Some(first) if first != spec && self.backend_conflict.is_none() => {
                self.backend_conflict = Some((first, spec));
            }
            Some(_) => {}
        }
        self.config = self.config.with_backend(spec);
        self
    }

    /// Attaches a progress observer (see [`Progress`]).
    pub fn progress(mut self, observer: Arc<dyn Progress>) -> Self {
        self.progress = Some(observer);
        self
    }

    /// Attaches a closure as the progress observer.
    pub fn on_progress(self, observer: impl Fn(&ProgressEvent) + Send + Sync + 'static) -> Self {
        self.progress(Arc::new(observer))
    }

    /// Uses an externally created cancellation token (e.g. one shared with
    /// a supervisor thread).  Without this call the session creates its
    /// own, available via [`Session::cancellation`].
    pub fn cancellation(mut self, token: CancellationToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Validates and builds the session.
    ///
    /// # Errors
    ///
    /// Returns [`CountError::Config`] when the configuration is invalid —
    /// including [`ConfigError::ConflictingBackends`] when two different
    /// backends were selected — and [`CountError::EmptyProjection`] when no
    /// projection variable was declared.
    pub fn build(self) -> CountResult<Session> {
        if let Some((first, second)) = self.backend_conflict {
            return Err(CountError::Config(ConfigError::ConflictingBackends {
                first,
                second,
            }));
        }
        self.config.validate()?;
        if self.projection.is_empty() {
            return Err(CountError::EmptyProjection);
        }
        Ok(Session {
            tm: self.tm,
            formula: self.formula,
            projection: self.projection,
            config: self.config,
            cancel: self.cancel.unwrap_or_default(),
            progress: self.progress,
        })
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("assertions", &self.formula.len())
            .field("projection", &self.projection.len())
            .field("config", &self.config)
            .field("cancelled", &self.cancel.is_cancelled())
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for SessionBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("assertions", &self.formula.len())
            .field("projection", &self.projection.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ConfigError;
    use crate::result::CountOutcome;
    use pact_ir::Sort;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn saturating_session(width: u32, iterations: u32) -> Session {
        // x >= 16 over `width` bits: saturates the threshold, so the
        // hashing rounds run.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(width));
        let c = tm.mk_bv_const(16, width);
        let f = tm.mk_bv_ule(c, x).unwrap();
        Session::builder(tm)
            .assert(f)
            .project(x)
            .seed(42)
            .iterations(iterations)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_up_front() {
        let tm = TermManager::new();
        assert_eq!(
            Session::builder(tm).build().unwrap_err(),
            CountError::EmptyProjection
        );

        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let err = Session::builder(tm)
            .project(x)
            .epsilon(-1.0)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CountError::Config(ConfigError::NonPositiveEpsilon { epsilon: -1.0 })
        );
    }

    #[test]
    fn conflicting_backend_selections_are_a_config_error() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let err = Session::builder(tm)
            .project(x)
            .backend(BackendSpec::Portfolio { workers: 2 })
            .backend(BackendSpec::Incremental)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CountError::Config(ConfigError::ConflictingBackends {
                first: BackendSpec::Portfolio { workers: 2 },
                second: BackendSpec::Incremental,
            })
        );
        // The rendered diagnostic names both requests.
        let text = err.to_string();
        assert!(text.contains("portfolio:2"), "{text}");
        assert!(text.contains("incremental"), "{text}");
    }

    #[test]
    fn reselecting_the_same_backend_is_not_a_conflict() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let session = Session::builder(tm)
            .project(x)
            .backend(BackendSpec::Cube {
                depth: 3,
                workers: 2,
            })
            .backend(BackendSpec::Cube {
                depth: 3,
                workers: 2,
            })
            .build()
            .unwrap();
        assert!(session.config().oracle_factory.is_cube());
    }

    #[test]
    fn replacing_the_whole_config_resets_backend_tracking() {
        // `.config(...)` is a deliberate wholesale replacement, not a
        // second selection: a backend chosen afterwards wins cleanly.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let session = Session::builder(tm)
            .project(x)
            .backend(BackendSpec::Portfolio { workers: 2 })
            .config(CounterConfig::default())
            .backend(BackendSpec::Incremental)
            .build()
            .unwrap();
        assert!(session.config().oracle_factory.is_incremental());
    }

    #[test]
    fn one_problem_counts_under_many_configs() {
        let mut session = saturating_session(8, 3);
        let xor = session.count().unwrap();
        let prime = session
            .count_with(&session.config().clone().with_family(HashFamily::Prime))
            .unwrap();
        let exact = session.enumerate(10_000).unwrap();
        assert_eq!(exact.outcome, CountOutcome::Exact(240));
        for report in [&xor, &prime] {
            let estimate = report.outcome.value().expect("a count");
            assert!(estimate > 0.0);
        }
        // The CDM baseline runs on the same declared problem too.
        let cdm = session.count_cdm().unwrap();
        assert!(cdm.outcome.value().is_some());
    }

    #[test]
    fn incremental_backend_counts_without_rebuilds() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let c = tm.mk_bv_const(16, 8);
        let f = tm.mk_bv_ule(c, x).unwrap(); // 240 models: saturates
        let mut session = Session::builder(tm)
            .assert(f)
            .project(x)
            .seed(42)
            .iterations(3)
            .backend(BackendSpec::Incremental)
            .build()
            .unwrap();
        assert!(session.config().oracle_factory.is_incremental());
        let report = session.count().unwrap();
        assert!(matches!(report.outcome, CountOutcome::Approximate { .. }));
        // The whole galloping search ran without a single encoder rebuild.
        assert_eq!(report.stats.rebuilds, 0);
        // Toggling back restores the default backend (which does rebuild).
        let rebuild = session
            .count_with(&session.config().clone().with_backend(BackendSpec::Rebuild))
            .unwrap();
        assert_eq!(rebuild.outcome, report.outcome);
        assert!(rebuild.stats.rebuilds > 0);
    }

    #[test]
    fn portfolio_backend_counts_bit_identically_and_records_wins() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let c = tm.mk_bv_const(16, 8);
        let f = tm.mk_bv_ule(c, x).unwrap(); // 240 models: saturates
        let mut session = Session::builder(tm)
            .assert(f)
            .project(x)
            .seed(42)
            .iterations(3)
            .backend(BackendSpec::Portfolio { workers: 3 })
            .build()
            .unwrap();
        assert!(session.config().oracle_factory.is_portfolio());
        let report = session.count().unwrap();
        assert!(matches!(report.outcome, CountOutcome::Approximate { .. }));
        // Winner accounting: every check was credited, across 3 workers.
        assert_eq!(report.stats.portfolio_workers, 3);
        let total_wins: u64 = report.stats.worker_wins.iter().sum();
        assert_eq!(total_wins, report.stats.oracle_calls);
        // The deterministic slice matches the single-engine backend's.
        let reference = session
            .count_with(&session.config().clone().with_backend(BackendSpec::Rebuild))
            .unwrap();
        assert_eq!(reference.outcome, report.outcome);
        assert_eq!(reference.stats.oracle_calls, report.stats.oracle_calls);
        assert_eq!(reference.stats.cells_explored, report.stats.cells_explored);
        assert_eq!(reference.stats.portfolio_workers, 0);
        assert_eq!(reference.stats.worker_wins.iter().sum::<u64>(), 0);
    }

    #[test]
    fn cube_backend_counts_bit_identically_and_records_splits() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let c = tm.mk_bv_const(16, 8);
        let f = tm.mk_bv_ule(c, x).unwrap(); // 240 models: saturates
        let mut session = Session::builder(tm)
            .assert(f)
            .project(x)
            .seed(42)
            .iterations(3)
            .backend(BackendSpec::Cube {
                depth: 3,
                workers: 2,
            })
            .build()
            .unwrap();
        assert!(session.config().oracle_factory.is_cube());
        let report = session.count().unwrap();
        assert!(matches!(report.outcome, CountOutcome::Approximate { .. }));
        // Cube accounting reached the merged stats: checks were split, and
        // every refutation-by-lookahead is also a solved cube.
        assert!(report.stats.cubes_split > 0);
        assert!(report.stats.cubes_solved >= report.stats.cube_refuted_by_lookahead);
        // The backend never rebuilds (scout and workers are all
        // activation-literal engines).
        assert_eq!(report.stats.rebuilds, 0);
        // The deterministic slice matches the single-engine backend's.
        let reference = session
            .count_with(&session.config().clone().with_backend(BackendSpec::Rebuild))
            .unwrap();
        assert_eq!(reference.outcome, report.outcome);
        assert_eq!(reference.stats.oracle_calls, report.stats.oracle_calls);
        assert_eq!(reference.stats.cells_explored, report.stats.cells_explored);
        assert_eq!(reference.stats.cubes_split, 0);
        assert_eq!(reference.stats.cubes_solved, 0);
    }

    #[test]
    fn repeated_counts_are_deterministic() {
        let mut session = saturating_session(8, 5);
        let a = session.count().unwrap();
        let b = session.count().unwrap();
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.stats.oracle_calls, b.stats.oracle_calls);
    }

    #[test]
    fn set_config_rejects_bad_parameters_and_keeps_the_old_ones() {
        let mut session = saturating_session(8, 3);
        let good = session.config().clone();
        let bad = CounterConfig {
            delta: 2.0,
            ..good.clone()
        };
        assert!(session.set_config(bad).is_err());
        assert_eq!(session.config(), &good);
    }

    #[test]
    fn pre_cancelled_sessions_report_timeout_immediately() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(10));
        let c = tm.mk_bv_const(16, 10);
        let f = tm.mk_bv_ule(c, x).unwrap();
        let token = CancellationToken::new();
        token.cancel();
        let mut session = Session::builder(tm)
            .assert(f)
            .project(x)
            .cancellation(token)
            .build()
            .unwrap();
        let report = session.count().unwrap();
        assert_eq!(report.outcome, CountOutcome::Timeout);
        // Cancellation is sticky until reset; after a reset the same
        // session counts normally again.
        assert_eq!(session.count().unwrap().outcome, CountOutcome::Timeout);
        session.cancellation().reset();
        let report = session.count().unwrap();
        assert!(matches!(
            report.outcome,
            CountOutcome::Approximate { .. } | CountOutcome::Exact(_)
        ));
    }

    #[test]
    fn progress_observer_sees_models_cells_and_rounds() {
        let models = Arc::new(AtomicU64::new(0));
        let cells = Arc::new(AtomicU64::new(0));
        let rounds = Arc::new(AtomicU64::new(0));
        let (m, c, r) = (Arc::clone(&models), Arc::clone(&cells), Arc::clone(&rounds));

        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let bound = tm.mk_bv_const(16, 8);
        let f = tm.mk_bv_ule(bound, x).unwrap(); // 240 models: saturates
        let mut session = Session::builder(tm)
            .assert(f)
            .project(x)
            .seed(7)
            .iterations(3)
            .on_progress(move |event| match event {
                ProgressEvent::Model { .. } => {
                    m.fetch_add(1, Ordering::Relaxed);
                }
                ProgressEvent::Cell { .. } => {
                    c.fetch_add(1, Ordering::Relaxed);
                }
                ProgressEvent::Round { .. } => {
                    r.fetch_add(1, Ordering::Relaxed);
                }
            })
            .build()
            .unwrap();
        let report = session.count().unwrap();
        // Every measured cell (including the base check) fired an event, and
        // every scheduled round reported in.
        assert_eq!(cells.load(Ordering::Relaxed), report.stats.cells_explored);
        assert_eq!(rounds.load(Ordering::Relaxed), 3);
        assert!(models.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn observer_driven_cancellation_stops_a_long_count() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(12));
        let c = tm.mk_bv_const(2048, 12);
        let f = tm.mk_bv_ule(c, x).unwrap(); // 2048 models: saturates
        let token = CancellationToken::new();
        let trigger = token.clone();
        let mut session = Session::builder(tm)
            .assert(f)
            .project(x)
            .seed(1)
            .iterations(500)
            .cancellation(token)
            .on_progress(move |event| {
                // Abort as soon as the second round completes.
                if let ProgressEvent::Round { round, .. } = event {
                    if *round >= 1 {
                        trigger.cancel();
                    }
                }
            })
            .build()
            .unwrap();
        let report = session.count().unwrap();
        // Far fewer than the 500 requested rounds ran, and the partial work
        // is reported rather than discarded.
        assert!(report.stats.iterations < 500);
        assert!(report.stats.cells_explored >= 1);
        assert!(session.cancellation().is_cancelled());
    }
}
