//! `SaturatingCounter` (§III-B): bounded projected-model enumeration.

use std::collections::HashMap;
use std::time::Instant;

use pact_ir::{BvValue, TermId, TermManager};
use pact_solver::{Oracle, Result, SolverResult};

use crate::progress::{ProgressEvent, RunControl};

/// The size of a cell as measured by the saturating counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellCount {
    /// The cell has exactly this many projected models (strictly below the
    /// threshold).
    Exact(u64),
    /// The cell has at least `thresh` projected models (the paper's `⊤`).
    Saturated,
    /// The oracle gave up (conflict budget or deadline exhausted).
    Unknown,
}

impl CellCount {
    /// Returns `true` for [`CellCount::Saturated`].
    pub fn is_saturated(&self) -> bool {
        matches!(self, CellCount::Saturated)
    }

    /// The exact size, if known.
    pub fn exact(&self) -> Option<u64> {
        match self {
            CellCount::Exact(n) => Some(*n),
            _ => None,
        }
    }
}

/// Enumerates projected models of the formula currently asserted in `ctx`
/// until `thresh` models are found (saturation) or the cell is exhausted.
///
/// Every discovered projected model is blocked by asserting the negation of
/// `S = model`, so the enumeration counts *distinct projected* assignments,
/// exactly as §III-B describes.  Blocking clauses are asserted in the current
/// frame; callers wrap the call in `push`/`pop` when the formula must be
/// reused afterwards.
///
/// `deadline` is the absolute instant after which the enumeration gives up
/// with [`CellCount::Unknown`].
///
/// This is the deadline-only compatibility form; [`saturating_count_ctl`]
/// additionally observes a cancellation token and reports each discovered
/// model to a progress observer.
///
/// # Errors
///
/// Propagates [`pact_solver::SolverError`] for unsupported constructs.
pub fn saturating_count<O: Oracle + ?Sized>(
    ctx: &mut O,
    tm: &mut TermManager,
    projection: &[TermId],
    thresh: u64,
    deadline: Option<Instant>,
) -> Result<CellCount> {
    saturating_count_ctl(
        ctx,
        tm,
        projection,
        thresh,
        &RunControl::with_deadline(deadline),
    )
}

/// [`saturating_count`] under a full [`RunControl`]: the enumeration checks
/// the deadline *and* the cancellation token before every oracle call, and
/// emits a [`ProgressEvent::Model`] for every projected model it finds.
///
/// Cancellation surfaces as [`CellCount::Unknown`], the same verdict as a
/// deadline expiry or an oracle give-up, so callers need exactly one
/// "stop now" path.
///
/// # Errors
///
/// Propagates [`pact_solver::SolverError`] for unsupported constructs.
pub fn saturating_count_ctl<O: Oracle + ?Sized>(
    ctx: &mut O,
    tm: &mut TermManager,
    projection: &[TermId],
    thresh: u64,
    ctrl: &RunControl,
) -> Result<CellCount> {
    let mut count = 0u64;
    loop {
        if ctrl.interrupted() {
            return Ok(CellCount::Unknown);
        }
        match ctx.check(tm)? {
            SolverResult::Unsat => return Ok(CellCount::Exact(count)),
            SolverResult::Unknown => return Ok(CellCount::Unknown),
            SolverResult::Sat => {
                count += 1;
                ctrl.emit(ProgressEvent::Model { found: count });
                if count >= thresh {
                    return Ok(CellCount::Saturated);
                }
                let model = ctx
                    .projected_model(tm, projection)
                    .expect("model available after SAT");
                block_projected_model(ctx, tm, projection, &model);
            }
        }
    }
}

/// Asserts `¬(S = model)` so the same projected assignment is not found again.
pub fn block_projected_model<O: Oracle + ?Sized>(
    ctx: &mut O,
    tm: &mut TermManager,
    projection: &[TermId],
    model: &[BvValue],
) {
    let mut equalities = Vec::with_capacity(projection.len());
    for (&var, value) in projection.iter().zip(model) {
        let equal = match tm.sort(var) {
            pact_ir::Sort::Bool => {
                let target = tm.mk_bool(value.as_u128() == 1);
                tm.mk_eq(var, target)
            }
            pact_ir::Sort::BoundedInt { .. } => {
                let target = tm.mk_int_const(value.as_u128() as i64);
                // Equality requires matching sorts; compare through an
                // integer constant of the variable's own sort via Eq on the
                // bounded-int encoding: build `var <= c ∧ c <= var`.
                let le = tm.mk_int_le(var, target).expect("int comparison");
                let ge = tm.mk_int_le(target, var).expect("int comparison");
                tm.mk_and([le, ge])
            }
            _ => {
                let target = tm.mk_bv_value(*value);
                tm.mk_eq(var, target)
            }
        };
        equalities.push(equal);
    }
    let conj = tm.mk_and(equalities);
    let blocking = tm.mk_not(conj);
    ctx.assert_term(blocking);
}

/// Collects the projected model as a map keyed by projection variable, which
/// is the representation the hash-constraint evaluator expects.
pub fn projected_model_map<O: Oracle + ?Sized>(
    ctx: &O,
    tm: &TermManager,
    projection: &[TermId],
) -> Option<HashMap<TermId, BvValue>> {
    let values = ctx.projected_model(tm, projection)?;
    Some(projection.iter().copied().zip(values).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::CancellationToken;
    use pact_ir::Sort;
    use pact_solver::Context;

    fn small_instance(tm: &mut TermManager) -> (TermId, TermId) {
        // x < 6 over 4 bits: exactly 6 projected models.
        let x = tm.mk_var("x", Sort::BitVec(4));
        let six = tm.mk_bv_const(6, 4);
        let f = tm.mk_bv_ult(x, six).unwrap();
        (x, f)
    }

    #[test]
    fn counts_exactly_below_threshold() {
        let mut tm = TermManager::new();
        let (x, f) = small_instance(&mut tm);
        let mut ctx = Context::new();
        ctx.track_var(x);
        ctx.assert_term(f);
        let c = saturating_count(&mut ctx, &mut tm, &[x], 100, None).unwrap();
        assert_eq!(c, CellCount::Exact(6));
    }

    #[test]
    fn saturates_at_threshold() {
        let mut tm = TermManager::new();
        let (x, f) = small_instance(&mut tm);
        let mut ctx = Context::new();
        ctx.track_var(x);
        ctx.assert_term(f);
        let c = saturating_count(&mut ctx, &mut tm, &[x], 3, None).unwrap();
        assert!(c.is_saturated());
    }

    #[test]
    fn unsat_formula_counts_zero() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let zero = tm.mk_bv_const(0, 4);
        let f = tm.mk_bv_ult(x, zero).unwrap();
        let mut ctx = Context::new();
        ctx.track_var(x);
        ctx.assert_term(f);
        let c = saturating_count(&mut ctx, &mut tm, &[x], 10, None).unwrap();
        assert_eq!(c, CellCount::Exact(0));
    }

    #[test]
    fn projection_ignores_non_projected_variables() {
        // x is projected, y is free 2-bit: projected count is still 6.
        let mut tm = TermManager::new();
        let (x, f) = small_instance(&mut tm);
        let y = tm.mk_var("y", Sort::BitVec(2));
        let c1 = tm.mk_bv_const(3, 2);
        let g = tm.mk_bv_ule(y, c1).unwrap();
        let both = tm.mk_and([f, g]);
        let mut ctx = Context::new();
        ctx.track_var(x);
        ctx.assert_term(both);
        let c = saturating_count(&mut ctx, &mut tm, &[x], 100, None).unwrap();
        assert_eq!(c, CellCount::Exact(6));
    }

    #[test]
    fn hybrid_projection_counts_extensible_assignments_only() {
        // b ∈ [0, 16), r real; constraint: b < 4 ∧ r > 0 ∧ r < 1.
        // The real part is satisfiable independently, so the projected count
        // is the number of b values: 4.
        let mut tm = TermManager::new();
        let b = tm.mk_var("b", Sort::BitVec(4));
        let r = tm.mk_var("r", Sort::Real);
        let four = tm.mk_bv_const(4, 4);
        let f1 = tm.mk_bv_ult(b, four).unwrap();
        let zero = tm.mk_real_const(pact_ir::Rational::ZERO);
        let one = tm.mk_real_const(pact_ir::Rational::ONE);
        let f2 = tm.mk_real_lt(zero, r).unwrap();
        let f3 = tm.mk_real_lt(r, one).unwrap();
        let mut ctx = Context::new();
        ctx.track_var(b);
        for f in [f1, f2, f3] {
            ctx.assert_term(f);
        }
        let c = saturating_count(&mut ctx, &mut tm, &[b], 100, None).unwrap();
        assert_eq!(c, CellCount::Exact(4));
    }

    #[test]
    fn deadline_in_the_past_reports_unknown() {
        let mut tm = TermManager::new();
        let (x, f) = small_instance(&mut tm);
        let mut ctx = Context::new();
        ctx.track_var(x);
        ctx.assert_term(f);
        let past = Instant::now();
        let c = saturating_count(&mut ctx, &mut tm, &[x], 100, Some(past)).unwrap();
        assert_eq!(c, CellCount::Unknown);
    }

    #[test]
    fn cancelled_token_reports_unknown() {
        let mut tm = TermManager::new();
        let (x, f) = small_instance(&mut tm);
        let mut ctx = Context::new();
        ctx.track_var(x);
        ctx.assert_term(f);
        let token = CancellationToken::new();
        token.cancel();
        let ctrl = RunControl {
            cancel: Some(token),
            ..RunControl::default()
        };
        let c = saturating_count_ctl(&mut ctx, &mut tm, &[x], 100, &ctrl).unwrap();
        assert_eq!(c, CellCount::Unknown);
    }

    #[test]
    fn multi_variable_projection() {
        // x < 2 and y < 3 projected over {x, y}: 6 combinations.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(3));
        let y = tm.mk_var("y", Sort::BitVec(3));
        let two = tm.mk_bv_const(2, 3);
        let three = tm.mk_bv_const(3, 3);
        let f1 = tm.mk_bv_ult(x, two).unwrap();
        let f2 = tm.mk_bv_ult(y, three).unwrap();
        let mut ctx = Context::new();
        ctx.track_var(x);
        ctx.track_var(y);
        ctx.assert_term(f1);
        ctx.assert_term(f2);
        let c = saturating_count(&mut ctx, &mut tm, &[x, y], 100, None).unwrap();
        assert_eq!(c, CellCount::Exact(6));
    }
}
