//! Progress observation and cooperative cancellation of counting runs.
//!
//! Long counts — thousands of oracle calls across many rounds — need two
//! hooks that the original free-function API could not offer: a way to *see*
//! work as it completes (for progress bars, log streams, service metrics)
//! and a way to *stop* it cleanly (a user abort, a smarter scheduler-level
//! timeout).  Both are cooperative: the engine polls a [`CancellationToken`]
//! at every cell boundary and model discovery, and emits [`ProgressEvent`]s
//! to an optional [`Progress`] observer at the same points.
//!
//! Cancellation is not an error.  A cancelled run reports
//! [`CountOutcome::Timeout`] (or an approximate outcome from the rounds that
//! did finish), with all partial statistics intact — exactly like a deadline
//! expiry, which shares the same code path.
//!
//! Observers are called from whichever thread performs the work.  With
//! [`ParallelConfig::threads`] > 1 events from different rounds interleave in
//! wall-clock order (which varies run to run); the *reported outcome* stays
//! bit-identical regardless, as the round scheduler guarantees.
//!
//! [`CountOutcome::Timeout`]: crate::CountOutcome
//! [`ParallelConfig::threads`]: crate::ParallelConfig

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use pact_solver::InterruptFlag;

/// A cloneable flag that asks a running count to stop at the next safe
/// point.
///
/// Clones share the same flag, so a token handed to
/// [`SessionBuilder::cancellation`] can be cancelled from another thread (or
/// from inside a [`Progress`] observer) while the count runs.
///
/// The token is backed by a [`pact_solver::InterruptFlag`], and the engine
/// installs that flag into every oracle it builds
/// ([`Oracle::set_interrupt`](pact_solver::Oracle::set_interrupt)): besides
/// the engine's own cell-boundary polling, cancellation reaches *inside*
/// in-flight solver calls — the SAT search gives up at its next conflict or
/// restart boundary, and a portfolio oracle's racing workers all stand down.
///
/// [`SessionBuilder::cancellation`]: crate::SessionBuilder::cancellation
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    cancelled: InterruptFlag,
}

impl CancellationToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        CancellationToken::default()
    }

    /// Requests cancellation; every clone of the token observes it.
    ///
    /// Cancellation is *sticky*: the flag stays set (and every new count
    /// started with this token stops immediately) until [`reset`] is
    /// called.  Reusing a [`Session`](crate::Session) after aborting a
    /// count therefore requires a reset first.
    ///
    /// [`reset`]: CancellationToken::reset
    pub fn cancel(&self) {
        self.cancelled.set();
    }

    /// Clears a previous cancellation so the token (and any session holding
    /// it) can be used for further counts.
    pub fn reset(&self) {
        self.cancelled.clear();
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.is_set()
    }

    /// The solver-level interrupt flag sharing this token's atomic, which
    /// the engine installs into every oracle so cancellation aborts
    /// in-flight solver work (not just the next cell boundary).
    pub fn interrupt_flag(&self) -> InterruptFlag {
        self.cancelled.clone()
    }
}

/// One observable step of a counting run.
///
/// The enum is `#[non_exhaustive]`: future engines (portfolio oracles,
/// suite runners) will add event kinds, and observers must ignore unknown
/// ones.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProgressEvent {
    /// A projected model was discovered during a saturating enumeration;
    /// `found` counts models within the current cell.
    Model {
        /// Models found so far in the cell being measured.
        found: u64,
    },
    /// A cell's size was measured (one saturating enumeration finished).
    Cell {
        /// The outer round the cell belongs to (0 for the base exactness
        /// check and for the exact enumerator).
        round: u32,
        /// Cells measured so far within that round.
        cells_in_round: u64,
    },
    /// An outer round finished.  `estimate` is `None` when the round failed
    /// (empty boundary cell) or ran out of budget.
    Round {
        /// The round index.
        round: u32,
        /// The round's estimate, if it produced one.
        estimate: Option<f64>,
    },
}

/// An observer of [`ProgressEvent`]s.
///
/// # Thread-safety bounds
///
/// Implementations must be `Send + Sync` — the bound is on the trait, not
/// on call sites, so it is checked where the observer is *written* rather
/// than deep inside the engine.  Two consumers rely on it:
///
/// * with a parallel [`ParallelConfig`](crate::ParallelConfig) the engine
///   calls [`Progress::report`] from several round-worker threads
///   concurrently (`Sync`), and
/// * service front-ends (`pact-service`) move the observer onto a shard
///   thread and forward events over channels to a handle owned by another
///   thread (`Send`).
///
/// Any `Fn(&ProgressEvent) + Send + Sync` closure implements the trait; a
/// non-`Sync` sink (e.g. an `mpsc::Sender` on older toolchains) can be
/// wrapped in a `Mutex` inside the closure.  Events are `Clone + Send`, so
/// forwarding them across threads needs no wrapper at all.
pub trait Progress: Send + Sync {
    /// Called once per event, from the thread doing the work.
    fn report(&self, event: &ProgressEvent);
}

impl<F: Fn(&ProgressEvent) + Send + Sync> Progress for F {
    fn report(&self, event: &ProgressEvent) {
        self(event)
    }
}

/// The run-scoped control block threaded through the round scheduler and the
/// saturating counter: the absolute deadline, the cancellation token, and
/// the progress observer.
///
/// All three are optional; [`RunControl::default`] is a no-op control block
/// (no deadline, never cancelled, no observer), which is what the
/// compatibility wrappers use.
#[derive(Clone, Default)]
pub struct RunControl {
    /// Absolute instant after which the run reports a timeout.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag.
    pub cancel: Option<CancellationToken>,
    /// Progress observer.
    pub progress: Option<Arc<dyn Progress>>,
}

impl fmt::Debug for RunControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunControl")
            .field("deadline", &self.deadline)
            .field("cancelled", &self.cancel.as_ref().map(|c| c.is_cancelled()))
            .field(
                "progress",
                &self.progress.as_ref().map(|_| "Arc<dyn Progress>"),
            )
            .finish()
    }
}

impl RunControl {
    /// A control block that only watches a deadline (the pre-session
    /// behaviour of the engine).
    pub fn with_deadline(deadline: Option<Instant>) -> Self {
        RunControl {
            deadline,
            ..RunControl::default()
        }
    }

    /// Whether the run should stop now: the deadline passed or cancellation
    /// was requested.
    pub fn interrupted(&self) -> bool {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return true;
            }
        }
        self.deadline.map(|d| Instant::now() >= d).unwrap_or(false)
    }

    /// Emits a progress event to the observer, if one is attached.
    pub fn emit(&self, event: ProgressEvent) {
        if let Some(observer) = &self.progress {
            observer.report(&event);
        }
    }

    /// The cancellation token's solver-level interrupt flag, if a token is
    /// attached — what the engine hands to every oracle it builds so
    /// cancellation reaches in-flight solver calls.
    pub fn solver_interrupt(&self) -> Option<InterruptFlag> {
        self.cancel.as_ref().map(CancellationToken::interrupt_flag)
    }
}

// Cross-thread delivery is the whole point of these types: tokens are
// cancelled from supervisor threads, events cross shard/handle boundaries,
// and `RunControl` (carrying an `Arc<dyn Progress>`) is shared by round
// workers.  Pin the auto-traits at compile time so a field change cannot
// silently break them.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CancellationToken>();
    assert_send_sync::<ProgressEvent>();
    assert_send_sync::<RunControl>();
    assert_send_sync::<Arc<dyn Progress>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn token_clones_share_the_flag() {
        let token = CancellationToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn default_control_never_interrupts_and_swallows_events() {
        let ctrl = RunControl::default();
        assert!(!ctrl.interrupted());
        ctrl.emit(ProgressEvent::Model { found: 1 }); // no observer: no-op
    }

    #[test]
    fn control_observes_deadline_cancellation_and_progress() {
        let seen = Arc::new(AtomicU64::new(0));
        let sink = {
            let seen = Arc::clone(&seen);
            move |_event: &ProgressEvent| {
                seen.fetch_add(1, Ordering::Relaxed);
            }
        };
        let token = CancellationToken::new();
        let ctrl = RunControl {
            deadline: None,
            cancel: Some(token.clone()),
            progress: Some(Arc::new(sink)),
        };
        assert!(!ctrl.interrupted());
        ctrl.emit(ProgressEvent::Cell {
            round: 0,
            cells_in_round: 1,
        });
        ctrl.emit(ProgressEvent::Round {
            round: 0,
            estimate: Some(4.0),
        });
        assert_eq!(seen.load(Ordering::Relaxed), 2);
        token.cancel();
        assert!(ctrl.interrupted());

        let expired = RunControl::with_deadline(Some(Instant::now()));
        assert!(expired.interrupted());
    }
}
