//! Configuration of the counting algorithms.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use pact_hash::HashFamily;
use pact_solver::{
    Context, CubeContext, IncrementalContext, Oracle, PolicyOracle, PortfolioContext, SolverConfig,
};

use crate::error::ConfigError;

/// Declarative selection of a built-in oracle backend — the single value
/// that travels from CLI flags ([`std::str::FromStr`]) through
/// [`CounterConfig::with_backend`] / `SessionBuilder::backend` down to
/// [`OracleFactory::from_spec`].
///
/// Before this type, each backend had its own selector method and the last
/// call silently won; a spec makes the choice a first-class value that can
/// be parsed, compared, stored and — when two different ones are requested
/// for the same run — rejected as [`ConfigError::ConflictingBackends`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendSpec {
    /// The reference rebuild-on-`pop` backend (`Context`).  Demoted to a
    /// debug backend since the default flip: it pays a full encoder rebuild
    /// on every `pop`, which the incremental backend eliminates, so select
    /// it explicitly only to reproduce the paper's baseline work profile.
    Rebuild,
    /// The activation-literal backend whose encoder survives `pop`
    /// (`IncrementalContext`; zero rebuilds).  The default backend: it
    /// dominates `rebuild` on every observed signal while staying
    /// single-engine and deterministic.
    #[default]
    Incremental,
    /// The racing-portfolio backend (`PortfolioContext`).
    Portfolio {
        /// Diversified workers racing each `check`.
        workers: usize,
    },
    /// The cube-and-conquer backend (`CubeContext`).
    Cube {
        /// Split depth: up to `2^depth` cubes per hard `check`.
        depth: usize,
        /// Conquering workers.
        workers: usize,
    },
    /// The adaptive policy backend (`PolicyOracle`): starts on the
    /// incremental engine and re-routes each `check` across the other
    /// backends from a sliding window of observed statistics.  Takes no
    /// parameters — depth and worker counts are policy decisions.
    Adaptive,
}

impl fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendSpec::Rebuild => f.write_str("rebuild"),
            BackendSpec::Incremental => f.write_str("incremental"),
            BackendSpec::Portfolio { workers } => write!(f, "portfolio:{workers}"),
            BackendSpec::Cube { depth, workers } => write!(f, "cube:{depth}:{workers}"),
            BackendSpec::Adaptive => f.write_str("adaptive"),
        }
    }
}

impl std::str::FromStr for BackendSpec {
    type Err = String;

    /// Parses `rebuild`, `incremental`, `portfolio[:workers]`,
    /// `cube[:depth[:workers]]` and `adaptive` (the [`fmt::Display`]
    /// format, with the numeric suffixes optional).  Omitted worker counts
    /// default to 2 and an omitted cube depth to 3, mirroring the benchmark
    /// harness.
    ///
    /// Explicit parameters are validated against the backend's real limits
    /// — `portfolio` workers in `1..=`[`pact_solver::MAX_PORTFOLIO_WORKERS`],
    /// `cube` depth in `1..=`[`pact_solver::MAX_CUBE_DEPTH`] and workers in
    /// `1..=`[`pact_solver::MAX_CUBE_WORKERS`] — and rejected with an error
    /// naming the valid range.  (The constructors clamp too, but a spec
    /// that parses must mean what it says: `cube:0:2` used to parse and
    /// silently run at depth 1.)
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or_default();
        let mut number = |what: &str, default: usize, max: usize| -> Result<usize, String> {
            match parts.next() {
                None => Ok(default),
                Some(n) => {
                    let value = n
                        .parse::<usize>()
                        .map_err(|_| format!("invalid backend parameter {n:?} in {s:?}"))?;
                    if value < 1 || value > max {
                        return Err(format!(
                            "{what} must be in 1..={max} (got {value} in {s:?})"
                        ));
                    }
                    Ok(value)
                }
            }
        };
        let spec = match head {
            "rebuild" => BackendSpec::Rebuild,
            "incremental" => BackendSpec::Incremental,
            "portfolio" => BackendSpec::Portfolio {
                workers: number("portfolio workers", 2, pact_solver::MAX_PORTFOLIO_WORKERS)?,
            },
            "cube" => BackendSpec::Cube {
                depth: number("cube depth", 3, pact_solver::MAX_CUBE_DEPTH)?,
                workers: number("cube workers", 2, pact_solver::MAX_CUBE_WORKERS)?,
            },
            "adaptive" => BackendSpec::Adaptive,
            other => {
                return Err(format!(
                    "unknown backend {other:?} (expected rebuild, incremental, \
                     portfolio[:workers], cube[:depth[:workers]] or adaptive)"
                ))
            }
        };
        if parts.next().is_some() {
            return Err(format!("trailing backend parameters in {s:?}"));
        }
        Ok(spec)
    }
}

/// Builds the SMT oracle a counting run talks to.
///
/// The counting core is generic over the [`Oracle`] trait; this factory is
/// the hook that decides *which* implementation gets built.
///
/// # Thread-safety bounds
///
/// The factory is `Send + Sync`, and custom constructors must be too
/// ([`OracleFactory::new`] requires `Fn(SolverConfig) -> Box<dyn Oracle> +
/// Send + Sync + 'static`).  It is invoked once for the base context and
/// once per scheduled round — with a parallel [`ParallelConfig`] that means
/// once per worker-claimed round, on the worker's own thread (`Sync`), and
/// service front-ends (`pact-service`) additionally move whole
/// configurations onto shard threads (`Send`).  The bound is pinned by a
/// compile-time assertion next to this type, so a non-thread-safe variant
/// cannot be added by accident.
///
/// The default factory builds the activation-literal
/// [`IncrementalContext`] (the rebuilding [`Context`] is the explicit
/// `rebuild` debug backend since the default flip); the other built-in
/// backends are selected declaratively through [`OracleFactory::from_spec`]
/// (see [`BackendSpec`] for the choices); tests and alternative backends
/// swap in their own with [`OracleFactory::new`] (see `tests/session.rs`
/// for an instrumented example).
#[derive(Clone, Default)]
pub struct OracleFactory {
    backend: Backend,
}

/// Which constructor an [`OracleFactory`] runs.
#[derive(Clone, Default)]
enum Backend {
    /// The reference rebuild-on-`pop` backend (debug).
    Rebuild,
    /// The activation-literal backend that survives `pop` (the default).
    #[default]
    Incremental,
    /// The racing-portfolio backend with this many diversified workers.
    Portfolio(usize),
    /// The cube-and-conquer backend with this split depth and this many
    /// conquering workers.
    Cube(usize, usize),
    /// The adaptive policy backend routing each check across the others.
    Adaptive,
    /// A user-supplied constructor closure.
    Custom(Arc<BuildOracleFn>),
}

/// The constructor closure an [`OracleFactory`] stores.
type BuildOracleFn = dyn Fn(SolverConfig) -> Box<dyn Oracle> + Send + Sync;

impl OracleFactory {
    /// Wraps a constructor closure.  The closure receives the run's
    /// [`SolverConfig`] (resource limits) and returns a fresh oracle.
    pub fn new(build: impl Fn(SolverConfig) -> Box<dyn Oracle> + Send + Sync + 'static) -> Self {
        OracleFactory {
            backend: Backend::Custom(Arc::new(build)),
        }
    }

    /// The factory a [`BackendSpec`] describes — the one mapping from the
    /// declarative spec onto a constructor.
    ///
    /// [`BackendSpec::Incremental`] selects the activation-literal
    /// [`IncrementalContext`] whose encoder survives `pop` (zero rebuilds
    /// across the galloping search).  [`BackendSpec::Portfolio`] fans every
    /// `check` out to diversified racing workers (clamped to
    /// `1..=`[`pact_solver::MAX_PORTFOLIO_WORKERS`]).  [`BackendSpec::Cube`]
    /// partitions hard checks into up to `2^depth` cubes conquered by
    /// `workers` scoped-thread oracles (`depth` clamped to
    /// `1..=`[`pact_solver::MAX_CUBE_DEPTH`], `workers` to
    /// `1..=`[`pact_solver::MAX_CUBE_WORKERS`]).  [`BackendSpec::Adaptive`]
    /// builds the [`PolicyOracle`], which starts incremental and re-routes
    /// each check from observed statistics.  The reported count is
    /// bit-identical for every choice; only the work profile (rebuilds,
    /// wins, splits, switches — see [`CountStats`](crate::CountStats))
    /// changes.
    pub fn from_spec(spec: BackendSpec) -> Self {
        let backend = match spec {
            BackendSpec::Rebuild => Backend::Rebuild,
            BackendSpec::Incremental => Backend::Incremental,
            BackendSpec::Portfolio { workers } => Backend::Portfolio(workers),
            BackendSpec::Cube { depth, workers } => Backend::Cube(depth, workers),
            BackendSpec::Adaptive => Backend::Adaptive,
        };
        OracleFactory { backend }
    }

    /// The spec this factory was built from, or `None` for a custom
    /// constructor closure (which no spec can describe).
    pub fn spec(&self) -> Option<BackendSpec> {
        match self.backend {
            Backend::Rebuild => Some(BackendSpec::Rebuild),
            Backend::Incremental => Some(BackendSpec::Incremental),
            Backend::Portfolio(workers) => Some(BackendSpec::Portfolio { workers }),
            Backend::Cube(depth, workers) => Some(BackendSpec::Cube { depth, workers }),
            Backend::Adaptive => Some(BackendSpec::Adaptive),
            Backend::Custom(_) => None,
        }
    }

    /// Builds one oracle with the given resource limits.
    pub fn build(&self, config: SolverConfig) -> Box<dyn Oracle> {
        match &self.backend {
            Backend::Rebuild => Box::new(Context::with_config(config)),
            Backend::Incremental => Box::new(IncrementalContext::with_config(config)),
            Backend::Portfolio(workers) => {
                Box::new(PortfolioContext::with_config(*workers, config))
            }
            Backend::Cube(depth, workers) => {
                Box::new(CubeContext::with_config(*depth, *workers, config))
            }
            Backend::Adaptive => Box::new(PolicyOracle::with_config(config)),
            Backend::Custom(build) => build(config),
        }
    }

    /// Whether this is the default backend (the incremental engine, since
    /// the default flip away from `rebuild`) — i.e. whether this factory
    /// equals [`OracleFactory::default()`].
    pub fn is_default(&self) -> bool {
        matches!(self.backend, Backend::Incremental)
    }

    /// Whether this is the built-in rebuilding [`Context`] debug backend.
    pub fn is_rebuild(&self) -> bool {
        matches!(self.backend, Backend::Rebuild)
    }

    /// Whether this is the built-in [`IncrementalContext`] backend.
    pub fn is_incremental(&self) -> bool {
        matches!(self.backend, Backend::Incremental)
    }

    /// Whether this is the built-in [`PortfolioContext`] backend.
    pub fn is_portfolio(&self) -> bool {
        matches!(self.backend, Backend::Portfolio(_))
    }

    /// Whether this is the built-in [`CubeContext`] backend.
    pub fn is_cube(&self) -> bool {
        matches!(self.backend, Backend::Cube(_, _))
    }

    /// Whether this is the adaptive [`PolicyOracle`] backend.
    pub fn is_adaptive(&self) -> bool {
        matches!(self.backend, Backend::Adaptive)
    }

    /// Short backend name for reports and benchmark columns.
    pub fn label(&self) -> &'static str {
        match self.backend {
            Backend::Rebuild => "rebuild",
            Backend::Incremental => "incremental",
            Backend::Portfolio(_) => "portfolio",
            Backend::Cube(_, _) => "cube",
            Backend::Adaptive => "adaptive",
            Backend::Custom(_) => "custom",
        }
    }
}

impl fmt::Debug for OracleFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OracleFactory({})", self.label())
    }
}

impl PartialEq for OracleFactory {
    /// The built-in backends compare by kind (and parameters); custom
    /// factories compare by closure identity.
    fn eq(&self, other: &Self) -> bool {
        match (&self.backend, &other.backend) {
            (Backend::Rebuild, Backend::Rebuild) => true,
            (Backend::Incremental, Backend::Incremental) => true,
            (Backend::Portfolio(a), Backend::Portfolio(b)) => a == b,
            (Backend::Cube(d1, w1), Backend::Cube(d2, w2)) => d1 == d2 && w1 == w2,
            (Backend::Adaptive, Backend::Adaptive) => true,
            (Backend::Custom(a), Backend::Custom(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

// Factories (and the configs carrying them) cross thread boundaries twice
// over: the round scheduler builds one oracle per worker-claimed round, and
// service shards receive whole `CounterConfig`s from submitter threads.
// Every variant of `Backend` — including `Custom`, whose closure type is
// explicitly `+ Send + Sync` — must preserve that; these assertions turn a
// regression into a compile error at the definition site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BackendSpec>();
    assert_send_sync::<OracleFactory>();
    assert_send_sync::<CounterConfig>();
};

/// Thread scheduling of the independent outer rounds of the counting
/// algorithms.
///
/// The rounds of Algorithm 1 (and of the CDM baseline) are independent: each
/// draws its own hash functions and measures its own cells.  The scheduler
/// fans them out over a scoped thread pool; every round derives its RNG
/// stream from `seed ^ round` and runs against its own clones of the term
/// manager and oracle, so the reported outcome is bit-identical for every
/// thread count (only wall-clock time changes).
///
/// The bit-identical guarantee assumes no deadline fires mid-run: a
/// [`CounterConfig::deadline`] is checked against the wall clock, so *which*
/// round first observes it depends on how fast rounds complete — and that
/// varies with the thread count (and machine load).  Deadline-free runs, and
/// runs that comfortably fit their budget, are exactly reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of worker threads for the outer rounds.  `1` (the default)
    /// runs rounds on the calling thread; `0` uses all available cores.
    pub threads: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig { threads: 1 }
    }
}

impl ParallelConfig {
    /// Uses every core the OS reports.
    pub fn auto() -> Self {
        ParallelConfig { threads: 0 }
    }

    /// The number of workers to actually spawn (resolves `0` to the core
    /// count, with a floor of one).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// Configuration shared by [`crate::pact_count`], the CDM baseline and the
/// exact enumerator.
///
/// The defaults mirror the paper's experimental setup (§IV): `ε = 0.8`,
/// `δ = 0.2`, the `H_xor` family, and no resource limits.  Benchmark
/// harnesses typically set [`CounterConfig::deadline`] to emulate the
/// per-instance timeout of the evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterConfig {
    /// Tolerance `ε` of the `(ε, δ)` guarantee.
    pub epsilon: f64,
    /// Confidence `δ` of the `(ε, δ)` guarantee.
    pub delta: f64,
    /// Hash family used to partition the solution space.
    pub family: HashFamily,
    /// Seed for all randomness (hash-function sampling).
    pub seed: u64,
    /// Per-instance wall-clock budget; `None` means unlimited.
    pub deadline: Option<Duration>,
    /// Resource limits handed to the SMT oracle for every check.
    pub solver: SolverConfig,
    /// Overrides the number of outer iterations computed from `δ`
    /// (Algorithm 3).  Intended for benchmark harnesses that trade the
    /// theoretical confidence for wall-clock time; `None` keeps the paper's
    /// value.
    pub iterations_override: Option<u32>,
    /// Thread scheduling of the outer rounds (deterministic for every
    /// thread count; see [`ParallelConfig`]).
    pub parallel: ParallelConfig,
    /// Which [`Oracle`] backend the run builds — once for the base context
    /// and once per scheduled round, so parallel rounds each get their own
    /// oracle.  Defaults to the workspace's [`Context`].
    pub oracle_factory: OracleFactory,
}

impl Default for CounterConfig {
    fn default() -> Self {
        CounterConfig {
            epsilon: 0.8,
            delta: 0.2,
            family: HashFamily::Xor,
            seed: 0,
            deadline: None,
            solver: SolverConfig::default(),
            iterations_override: None,
            parallel: ParallelConfig::default(),
            oracle_factory: OracleFactory::default(),
        }
    }
}

impl CounterConfig {
    /// The paper's experimental configuration (`ε = 0.8`, `δ = 0.2`).
    pub fn paper() -> Self {
        CounterConfig::default()
    }

    /// A configuration suitable for quick regression tests and examples:
    /// the same `(ε, δ)` but a single outer iteration and a small conflict
    /// budget, so a count is produced in milliseconds on toy formulas.
    pub fn fast() -> Self {
        CounterConfig {
            iterations_override: Some(3),
            ..CounterConfig::default()
        }
    }

    /// Returns a copy using the given hash family.
    pub fn with_family(mut self, family: HashFamily) -> Self {
        self.family = family;
        self
    }

    /// Returns a copy using the given RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a wall-clock budget.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns a copy running the outer rounds on `threads` workers
    /// (`0` = all cores).  Absent a mid-run deadline expiry, the outcome is
    /// identical for every value; only wall-clock time changes (see
    /// [`ParallelConfig`] for the caveat).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.parallel = ParallelConfig { threads };
        self
    }

    /// Returns a copy building its oracles through `factory` instead of the
    /// default [`Context`] backend.
    pub fn with_oracle_factory(mut self, factory: OracleFactory) -> Self {
        self.oracle_factory = factory;
        self
    }

    /// Returns a copy counting through the built-in backend the spec
    /// describes (see [`BackendSpec`]).  Shorthand for
    /// [`CounterConfig::with_oracle_factory`] with
    /// [`OracleFactory::from_spec`].
    pub fn with_backend(mut self, spec: BackendSpec) -> Self {
        self.oracle_factory = OracleFactory::from_spec(spec);
        self
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns the typed [`ConfigError`] variant for the first parameter
    /// outside its valid range (`ε ≤ 0`, or `δ` outside `(0, 1)`).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.epsilon <= 0.0 {
            return Err(ConfigError::NonPositiveEpsilon {
                epsilon: self.epsilon,
            });
        }
        if self.delta <= 0.0 || self.delta >= 1.0 {
            return Err(ConfigError::DeltaOutOfRange { delta: self.delta });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = CounterConfig::default();
        assert_eq!(c.epsilon, 0.8);
        assert_eq!(c.delta, 0.2);
        assert_eq!(c.family, HashFamily::Xor);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let zero_epsilon = CounterConfig {
            epsilon: 0.0,
            ..CounterConfig::default()
        };
        assert!(zero_epsilon.validate().is_err());
        let delta_too_big = CounterConfig {
            delta: 1.0,
            ..CounterConfig::default()
        };
        assert!(delta_too_big.validate().is_err());
        let negative_delta = CounterConfig {
            delta: -0.1,
            ..CounterConfig::default()
        };
        assert!(negative_delta.validate().is_err());
    }

    #[test]
    fn builders_compose() {
        let c = CounterConfig::default()
            .with_family(HashFamily::Prime)
            .with_seed(7)
            .with_deadline(Duration::from_secs(5))
            .with_threads(4);
        assert_eq!(c.family, HashFamily::Prime);
        assert_eq!(c.seed, 7);
        assert_eq!(c.deadline, Some(Duration::from_secs(5)));
        assert_eq!(c.parallel.threads, 4);
    }

    #[test]
    fn validation_errors_carry_the_offending_value() {
        let bad_epsilon = CounterConfig {
            epsilon: -2.0,
            ..CounterConfig::default()
        };
        assert_eq!(
            bad_epsilon.validate(),
            Err(ConfigError::NonPositiveEpsilon { epsilon: -2.0 })
        );
        let bad_delta = CounterConfig {
            delta: 1.5,
            ..CounterConfig::default()
        };
        assert_eq!(
            bad_delta.validate(),
            Err(ConfigError::DeltaOutOfRange { delta: 1.5 })
        );
    }

    #[test]
    fn oracle_factories_compare_by_identity() {
        // Two default configs are equal (both build the incremental
        // backend since the default flip)...
        assert_eq!(CounterConfig::default(), CounterConfig::default());
        assert!(CounterConfig::default().oracle_factory.is_default());
        assert!(CounterConfig::default().oracle_factory.is_incremental());
        // ...as are two rebuild factories (same built-in debug backend),
        // which no longer equal the default...
        let rebuild = || OracleFactory::from_spec(BackendSpec::Rebuild);
        assert_eq!(rebuild(), rebuild());
        assert_ne!(rebuild(), OracleFactory::default());
        assert!(rebuild().is_rebuild());
        assert!(!rebuild().is_default());
        // ...while a custom factory equals its clones but not an unrelated
        // one.
        let custom = OracleFactory::new(|cfg| Box::new(Context::with_config(cfg)));
        assert_eq!(custom.clone(), custom);
        assert_ne!(custom, OracleFactory::default());
        assert_ne!(custom, rebuild());
        assert!(!custom.is_default());
        let mut oracle = custom.build(SolverConfig::default());
        assert_eq!(oracle.stats().checks, 0);
        oracle.push();
        oracle.pop();
    }

    #[test]
    fn backend_specs_parse_display_and_reject_garbage() {
        for (text, spec) in [
            ("rebuild", BackendSpec::Rebuild),
            ("incremental", BackendSpec::Incremental),
            ("portfolio", BackendSpec::Portfolio { workers: 2 }),
            ("portfolio:5", BackendSpec::Portfolio { workers: 5 }),
            (
                "cube",
                BackendSpec::Cube {
                    depth: 3,
                    workers: 2,
                },
            ),
            (
                "cube:4",
                BackendSpec::Cube {
                    depth: 4,
                    workers: 2,
                },
            ),
            (
                "cube:4:6",
                BackendSpec::Cube {
                    depth: 4,
                    workers: 6,
                },
            ),
            ("adaptive", BackendSpec::Adaptive),
        ] {
            assert_eq!(text.parse::<BackendSpec>().unwrap(), spec, "{text}");
        }
        // Display round-trips through FromStr.
        for spec in [
            BackendSpec::Rebuild,
            BackendSpec::Incremental,
            BackendSpec::Portfolio { workers: 3 },
            BackendSpec::Cube {
                depth: 2,
                workers: 4,
            },
            BackendSpec::Adaptive,
        ] {
            assert_eq!(spec.to_string().parse::<BackendSpec>().unwrap(), spec);
        }
        assert!("sideways".parse::<BackendSpec>().is_err());
        assert!("portfolio:banana".parse::<BackendSpec>().is_err());
        assert!("cube:1:2:3".parse::<BackendSpec>().is_err());
        assert!("incremental:1".parse::<BackendSpec>().is_err());
        assert!("adaptive:2".parse::<BackendSpec>().is_err());
        // Zero and out-of-range parameters are rejected at parse time with
        // the valid range in the message (tests/properties.rs pins the
        // full matrix).
        for bad in [
            "portfolio:0",
            "portfolio:9",
            "cube:0:2",
            "cube:3:0",
            "cube:7",
        ] {
            let err = bad.parse::<BackendSpec>().unwrap_err();
            assert!(err.contains("must be in 1..="), "{bad}: {err}");
        }
    }

    #[test]
    fn factories_round_trip_through_specs() {
        for spec in [
            BackendSpec::Rebuild,
            BackendSpec::Incremental,
            BackendSpec::Portfolio { workers: 3 },
            BackendSpec::Cube {
                depth: 3,
                workers: 2,
            },
            BackendSpec::Adaptive,
        ] {
            assert_eq!(OracleFactory::from_spec(spec).spec(), Some(spec));
        }
        // A custom closure has no spec.
        let custom = OracleFactory::new(|cfg| Box::new(Context::with_config(cfg)));
        assert_eq!(custom.spec(), None);
        // The default spec builds the default factory.
        assert_eq!(
            OracleFactory::from_spec(BackendSpec::default()),
            OracleFactory::default()
        );
    }

    #[test]
    fn backend_selection_round_trips_through_the_config() {
        let rebuild = CounterConfig::default().with_backend(BackendSpec::Rebuild);
        assert!(rebuild.oracle_factory.is_rebuild());
        assert!(!rebuild.oracle_factory.is_default());
        assert_eq!(rebuild.oracle_factory.label(), "rebuild");
        let back = rebuild.with_backend(BackendSpec::Incremental);
        assert!(back.oracle_factory.is_default());
        assert_eq!(back.oracle_factory.label(), "incremental");
        assert_eq!(back, CounterConfig::default());
        // The default (incremental) factory builds a working oracle with
        // zero rebuilds across a push/pop cycle.
        let mut oracle = OracleFactory::default().build(SolverConfig::default());
        oracle.push();
        oracle.pop();
        assert_eq!(oracle.stats().rebuilds, 0);
    }

    #[test]
    fn adaptive_selection_round_trips_through_the_config() {
        let adaptive = CounterConfig::default().with_backend(BackendSpec::Adaptive);
        assert!(adaptive.oracle_factory.is_adaptive());
        assert!(!adaptive.oracle_factory.is_default());
        assert_eq!(adaptive.oracle_factory.label(), "adaptive");
        // The factory builds a working oracle that reports its routing
        // accounting; a fresh one has made no decisions yet.
        let oracle = OracleFactory::from_spec(BackendSpec::Adaptive).build(SolverConfig::default());
        let policy = oracle.policy().expect("policy accounting");
        assert_eq!(policy.switches, 0);
        assert_eq!(policy.backend_checks, [0; 4]);
        // Fixed-strategy backends report no policy accounting.
        assert!(OracleFactory::default()
            .build(SolverConfig::default())
            .policy()
            .is_none());
    }

    #[test]
    fn portfolio_selection_round_trips_through_the_config() {
        let portfolio =
            CounterConfig::default().with_backend(BackendSpec::Portfolio { workers: 3 });
        assert!(portfolio.oracle_factory.is_portfolio());
        assert!(!portfolio.oracle_factory.is_default());
        assert_eq!(portfolio.oracle_factory.label(), "portfolio");
        // Portfolio factories compare by worker count.
        let portfolio_of = |workers| OracleFactory::from_spec(BackendSpec::Portfolio { workers });
        assert_eq!(portfolio_of(3), portfolio_of(3));
        assert_ne!(portfolio_of(3), portfolio_of(4));
        assert_ne!(
            portfolio_of(3),
            OracleFactory::from_spec(BackendSpec::Incremental)
        );
        // The factory builds a working racing oracle that reports its
        // winner accounting.
        let mut oracle = portfolio_of(2).build(SolverConfig::default());
        oracle.push();
        oracle.pop();
        let stats = oracle.portfolio().expect("portfolio accounting");
        assert_eq!(stats.workers, 2);
        // The single-engine backends report no portfolio accounting.
        assert!(OracleFactory::default()
            .build(SolverConfig::default())
            .portfolio()
            .is_none());
    }

    #[test]
    fn cube_selection_round_trips_through_the_config() {
        let cube = CounterConfig::default().with_backend(BackendSpec::Cube {
            depth: 3,
            workers: 2,
        });
        assert!(cube.oracle_factory.is_cube());
        assert!(!cube.oracle_factory.is_default());
        assert_eq!(cube.oracle_factory.label(), "cube");
        // Cube factories compare by (depth, workers).
        let cube_of =
            |depth, workers| OracleFactory::from_spec(BackendSpec::Cube { depth, workers });
        assert_eq!(cube_of(3, 2), cube_of(3, 2));
        assert_ne!(cube_of(3, 2), cube_of(2, 2));
        assert_ne!(cube_of(3, 2), cube_of(3, 4));
        assert_ne!(
            cube_of(3, 2),
            OracleFactory::from_spec(BackendSpec::Portfolio { workers: 2 })
        );
        // The factory builds a working oracle that reports cube accounting
        // (and no portfolio accounting).
        let mut oracle = cube_of(2, 2).build(SolverConfig::default());
        oracle.push();
        oracle.pop();
        assert_eq!(oracle.cube().expect("cube accounting").splits, 0);
        assert!(oracle.portfolio().is_none());
        // The other backends report no cube accounting.
        assert!(OracleFactory::default()
            .build(SolverConfig::default())
            .cube()
            .is_none());
        assert!(
            OracleFactory::from_spec(BackendSpec::Portfolio { workers: 2 })
                .build(SolverConfig::default())
                .cube()
                .is_none()
        );
    }

    #[test]
    fn parallel_config_resolves_workers() {
        assert_eq!(ParallelConfig::default().effective_threads(), 1);
        assert_eq!(ParallelConfig { threads: 8 }.effective_threads(), 8);
        // `0` asks for every core; the exact count is machine-dependent but
        // never zero.
        assert!(ParallelConfig::auto().effective_threads() >= 1);
    }
}
