//! Configuration of the counting algorithms.

use std::time::Duration;

use pact_hash::HashFamily;
use pact_solver::SolverConfig;

/// Configuration shared by [`crate::pact_count`], the CDM baseline and the
/// exact enumerator.
///
/// The defaults mirror the paper's experimental setup (§IV): `ε = 0.8`,
/// `δ = 0.2`, the `H_xor` family, and no resource limits.  Benchmark
/// harnesses typically set [`CounterConfig::deadline`] to emulate the
/// per-instance timeout of the evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterConfig {
    /// Tolerance `ε` of the `(ε, δ)` guarantee.
    pub epsilon: f64,
    /// Confidence `δ` of the `(ε, δ)` guarantee.
    pub delta: f64,
    /// Hash family used to partition the solution space.
    pub family: HashFamily,
    /// Seed for all randomness (hash-function sampling).
    pub seed: u64,
    /// Per-instance wall-clock budget; `None` means unlimited.
    pub deadline: Option<Duration>,
    /// Resource limits handed to the SMT oracle for every check.
    pub solver: SolverConfig,
    /// Overrides the number of outer iterations computed from `δ`
    /// (Algorithm 3).  Intended for benchmark harnesses that trade the
    /// theoretical confidence for wall-clock time; `None` keeps the paper's
    /// value.
    pub iterations_override: Option<u32>,
}

impl Default for CounterConfig {
    fn default() -> Self {
        CounterConfig {
            epsilon: 0.8,
            delta: 0.2,
            family: HashFamily::Xor,
            seed: 0,
            deadline: None,
            solver: SolverConfig::default(),
            iterations_override: None,
        }
    }
}

impl CounterConfig {
    /// The paper's experimental configuration (`ε = 0.8`, `δ = 0.2`).
    pub fn paper() -> Self {
        CounterConfig::default()
    }

    /// A configuration suitable for quick regression tests and examples:
    /// the same `(ε, δ)` but a single outer iteration and a small conflict
    /// budget, so a count is produced in milliseconds on toy formulas.
    pub fn fast() -> Self {
        CounterConfig {
            iterations_override: Some(3),
            ..CounterConfig::default()
        }
    }

    /// Returns a copy using the given hash family.
    pub fn with_family(mut self, family: HashFamily) -> Self {
        self.family = family;
        self
    }

    /// Returns a copy using the given RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a wall-clock budget.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if `ε ≤ 0` or `δ` is outside `(0, 1)`.
    pub fn validate(&self) -> Result<(), String> {
        if self.epsilon <= 0.0 {
            return Err(format!("epsilon must be positive, got {}", self.epsilon));
        }
        if self.delta <= 0.0 || self.delta >= 1.0 {
            return Err(format!("delta must be in (0, 1), got {}", self.delta));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = CounterConfig::default();
        assert_eq!(c.epsilon, 0.8);
        assert_eq!(c.delta, 0.2);
        assert_eq!(c.family, HashFamily::Xor);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut c = CounterConfig::default();
        c.epsilon = 0.0;
        assert!(c.validate().is_err());
        c.epsilon = 0.8;
        c.delta = 1.0;
        assert!(c.validate().is_err());
        c.delta = -0.1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_compose() {
        let c = CounterConfig::default()
            .with_family(HashFamily::Prime)
            .with_seed(7)
            .with_deadline(Duration::from_secs(5));
        assert_eq!(c.family, HashFamily::Prime);
        assert_eq!(c.seed, 7);
        assert_eq!(c.deadline, Some(Duration::from_secs(5)));
    }
}
