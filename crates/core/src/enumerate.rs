//! The `enum` exact baseline (§IV-B): projected counting by enumeration.

use std::time::Instant;

use pact_ir::{TermId, TermManager};
use pact_solver::{Context, Result};

use crate::config::CounterConfig;
use crate::result::{CountOutcome, CountReport, CountStats};
use crate::saturating::{saturating_count, CellCount};

/// Counts projected models exactly by enumerating and blocking them, up to
/// `limit` models.
///
/// This is the `enum` baseline the paper uses to assess the accuracy of
/// `pact` (Fig. 2): it only terminates on instances with small counts, which
/// is exactly why an approximate counter is needed.  Instances whose count
/// reaches `limit` (or whose budget expires) report
/// [`CountOutcome::Timeout`].
///
/// # Errors
///
/// Propagates [`pact_solver::SolverError`] for unsupported constructs.
///
/// # Example
///
/// ```
/// use pact_ir::{TermManager, Sort};
/// use pact::{enumerate_count, CounterConfig, CountOutcome};
///
/// let mut tm = TermManager::new();
/// let x = tm.mk_var("x", Sort::BitVec(8));
/// let c = tm.mk_bv_const(42, 8);
/// let f = tm.mk_bv_ult(x, c).unwrap();
/// let report = enumerate_count(&mut tm, &[f], &[x], 1000, &CounterConfig::fast()).unwrap();
/// assert_eq!(report.outcome, CountOutcome::Exact(42));
/// ```
pub fn enumerate_count(
    tm: &mut TermManager,
    formula: &[TermId],
    projection: &[TermId],
    limit: u64,
    config: &CounterConfig,
) -> Result<CountReport> {
    let start = Instant::now();
    let deadline = config.deadline.map(|d| start + d);
    let mut ctx = Context::with_config(config.solver);
    for &v in projection {
        ctx.track_var(v);
    }
    for &f in formula {
        ctx.assert_term(f);
    }
    let mut stats = CountStats::default();
    let result = saturating_count(&mut ctx, tm, projection, limit, deadline)?;
    stats.cells_explored = 1;
    stats.oracle_calls = ctx.stats().checks;
    stats.wall_seconds = start.elapsed().as_secs_f64();
    let outcome = match result {
        CellCount::Exact(0) => CountOutcome::Unsatisfiable,
        CellCount::Exact(n) => CountOutcome::Exact(n),
        CellCount::Saturated | CellCount::Unknown => CountOutcome::Timeout,
    };
    Ok(CountReport { outcome, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_ir::Sort;

    #[test]
    fn exact_enumeration_of_a_small_instance() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        let c = tm.mk_bv_const(17, 6);
        let f = tm.mk_bv_ult(x, c).unwrap();
        let report = enumerate_count(&mut tm, &[f], &[x], 1_000, &CounterConfig::fast()).unwrap();
        assert_eq!(report.outcome, CountOutcome::Exact(17));
    }

    #[test]
    fn limit_is_reported_as_timeout() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let c = tm.mk_bv_const(5, 8);
        let f = tm.mk_bv_ule(c, x).unwrap(); // 251 models
        let report = enumerate_count(&mut tm, &[f], &[x], 50, &CounterConfig::fast()).unwrap();
        assert_eq!(report.outcome, CountOutcome::Timeout);
    }

    #[test]
    fn unsat_is_zero() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(5));
        let a = tm.mk_bv_const(3, 5);
        let f1 = tm.mk_bv_ult(x, a).unwrap();
        let f2 = tm.mk_bv_ult(a, x).unwrap();
        let eq = tm.mk_eq(x, a);
        let neq = tm.mk_not(eq);
        let both = tm.mk_and([f1, f2, neq]);
        let report = enumerate_count(&mut tm, &[both], &[x], 100, &CounterConfig::fast()).unwrap();
        assert_eq!(report.outcome, CountOutcome::Unsatisfiable);
    }
}
