//! The `enum` exact baseline (§IV-B): projected counting by enumeration.

use std::time::Instant;

use pact_ir::{TermId, TermManager};

use crate::config::CounterConfig;
use crate::error::{CountError, CountResult};
use crate::progress::{ProgressEvent, RunControl};
use crate::result::{CountOutcome, CountReport, CountStats};
use crate::saturating::{saturating_count_ctl, CellCount};
use crate::session::Session;

/// Counts projected models exactly by enumerating and blocking them, up to
/// `limit` models.
///
/// This is the `enum` baseline the paper uses to assess the accuracy of
/// `pact` (Fig. 2): it only terminates on instances with small counts, which
/// is exactly why an approximate counter is needed.  Instances whose count
/// reaches `limit` (or whose budget expires) report
/// [`CountOutcome::Timeout`].
///
/// This is the compatibility form; [`Session::enumerate`] counts the same
/// problem repeatedly without re-declaring it, and reports every discovered
/// model to the session's progress observer.
///
/// # Errors
///
/// Returns [`CountError::Config`] for invalid parameters,
/// [`CountError::EmptyProjection`] for an empty projection set, and
/// [`CountError::Solver`] for unsupported constructs.  Note that the
/// `(ε, δ)` fields are validated for uniformity with the other entry
/// points even though enumeration does not use them — a deliberate
/// tightening over the pre-session API, which skipped validation here.
///
/// # Example
///
/// ```
/// use pact_ir::{TermManager, Sort};
/// use pact::{enumerate_count, CounterConfig, CountOutcome};
///
/// let mut tm = TermManager::new();
/// let x = tm.mk_var("x", Sort::BitVec(8));
/// let c = tm.mk_bv_const(42, 8);
/// let f = tm.mk_bv_ult(x, c).unwrap();
/// let report = enumerate_count(&mut tm, &[f], &[x], 1000, &CounterConfig::fast()).unwrap();
/// assert_eq!(report.outcome, CountOutcome::Exact(42));
/// ```
pub fn enumerate_count(
    tm: &mut TermManager,
    formula: &[TermId],
    projection: &[TermId],
    limit: u64,
    config: &CounterConfig,
) -> CountResult<CountReport> {
    config.validate()?;
    if projection.is_empty() {
        return Err(CountError::EmptyProjection);
    }
    let mut session = Session::builder(std::mem::take(tm))
        .assert_all(formula)
        .project_all(projection)
        .config(config.clone())
        .build()
        .expect("configuration validated above");
    let result = session.enumerate(limit);
    *tm = session.into_term_manager();
    result
}

/// The engine behind [`enumerate_count`] and [`Session::enumerate`].
pub(crate) fn count_enumerate(
    tm: &mut TermManager,
    formula: &[TermId],
    projection: &[TermId],
    limit: u64,
    config: &CounterConfig,
    hooks: &RunControl,
) -> CountResult<CountReport> {
    config.validate()?;
    if projection.is_empty() {
        return Err(CountError::EmptyProjection);
    }
    let start = Instant::now();
    let ctrl = RunControl {
        deadline: config.deadline.map(|d| start + d),
        ..hooks.clone()
    };
    let mut ctx = config.oracle_factory.build(config.solver);
    if let Some(flag) = ctrl.solver_interrupt() {
        ctx.set_interrupt(flag);
    }
    for &v in projection {
        ctx.track_var(v);
    }
    for &f in formula {
        ctx.assert_term(f);
    }
    let mut stats = CountStats::default();
    let oracle_timer = Instant::now();
    let result = saturating_count_ctl(&mut *ctx, tm, projection, limit, &ctrl)?;
    stats.oracle_seconds = oracle_timer.elapsed().as_secs_f64();
    stats.cells_explored = 1;
    let oracle_stats = ctx.stats();
    stats.oracle_calls = oracle_stats.checks;
    stats.rebuilds = oracle_stats.rebuilds;
    stats.pool_reuses = oracle_stats.pool_reuses;
    stats.compactions = oracle_stats.compactions;
    stats.preprocess_cache_hits = oracle_stats.preprocess_cache_hits;
    stats.terms_interned = tm.len() as u64;
    crate::result::merge_portfolio(&mut stats, ctx.portfolio());
    crate::result::merge_cube(&mut stats, ctx.cube());
    crate::result::merge_policy(&mut stats, ctx.policy());
    stats.wall_seconds = start.elapsed().as_secs_f64();
    ctrl.emit(ProgressEvent::Cell {
        round: 0,
        cells_in_round: 1,
    });
    let outcome = match result {
        CellCount::Exact(0) => CountOutcome::Unsatisfiable,
        CellCount::Exact(n) => CountOutcome::Exact(n),
        CellCount::Saturated | CellCount::Unknown => CountOutcome::Timeout,
    };
    Ok(CountReport { outcome, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_ir::Sort;

    #[test]
    fn exact_enumeration_of_a_small_instance() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        let c = tm.mk_bv_const(17, 6);
        let f = tm.mk_bv_ult(x, c).unwrap();
        let report = enumerate_count(&mut tm, &[f], &[x], 1_000, &CounterConfig::fast()).unwrap();
        assert_eq!(report.outcome, CountOutcome::Exact(17));
    }

    #[test]
    fn limit_is_reported_as_timeout() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let c = tm.mk_bv_const(5, 8);
        let f = tm.mk_bv_ule(c, x).unwrap(); // 251 models
        let report = enumerate_count(&mut tm, &[f], &[x], 50, &CounterConfig::fast()).unwrap();
        assert_eq!(report.outcome, CountOutcome::Timeout);
    }

    #[test]
    fn unsat_is_zero() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(5));
        let a = tm.mk_bv_const(3, 5);
        let f1 = tm.mk_bv_ult(x, a).unwrap();
        let f2 = tm.mk_bv_ult(a, x).unwrap();
        let eq = tm.mk_eq(x, a);
        let neq = tm.mk_not(eq);
        let both = tm.mk_and([f1, f2, neq]);
        let report = enumerate_count(&mut tm, &[both], &[x], 100, &CounterConfig::fast()).unwrap();
        assert_eq!(report.outcome, CountOutcome::Unsatisfiable);
    }
}
