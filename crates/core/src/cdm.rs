//! The CDM baseline: approximate counting via formula self-composition
//! (Chistikov, Dimitrova & Majumdar, Acta Informatica 2017).
//!
//! CDM achieves an `(1+ε)` approximation by counting a *self-composition* of
//! the formula: `q` copies of `F` over disjoint variable copies have
//! `|Sol(F)↓S|^q` projected solutions, so estimating that count to within a
//! factor of 2 estimates the original count to within a factor of `2^(1/q)`.
//! The cell emptiness of the composed formula under `m` random XOR
//! constraints is probed with plain satisfiability queries; the largest `m`
//! that still leaves a solution gives the estimate `2^(m/q)`.
//!
//! This reproduces the scalability hurdle the paper identifies (§I, §IV):
//! every oracle query is over a formula `q` times larger, with hash
//! constraints spanning all `q·|S|` projected bits, encoded as ordinary
//! bit-vector terms (the CDM tool has no native XOR engine).
//!
//! Like Algorithm 1 the engine is generic over the [`Oracle`] backend and
//! observes the shared [`RunControl`] (deadline, cancellation, progress).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pact_hash::{generate, projection_bits, HashFamily};
use pact_ir::{TermId, TermManager};
use pact_solver::{Oracle, SolverResult};

use crate::config::CounterConfig;
use crate::error::{CountError, CountResult};
use crate::parallel::{run_rounds, RoundOutput};
use crate::progress::{ProgressEvent, RunControl};
use crate::result::{
    finish_report as finish, median, merge_cube, merge_policy, merge_portfolio, merge_round_stats,
    CountOutcome, CountReport, CountStats,
};
use crate::session::Session;

/// Number of formula copies needed so that a factor-2 estimate of the
/// composed count gives a `(1+ε)` estimate of the original count.
pub fn copies_for_epsilon(epsilon: f64) -> u32 {
    let per_copy = (1.0 + epsilon).log2();
    (1.0 / per_copy).ceil().max(1.0) as u32
}

/// Counts projected models with the CDM baseline algorithm.
///
/// The configuration's `family` field is ignored — CDM always uses XOR
/// constraints over the copied projection bits, expressed as bit-vector
/// terms.
///
/// This is the compatibility form; [`Session::count_cdm`] counts the same
/// problem repeatedly without re-declaring it.
///
/// # Errors
///
/// Returns [`CountError::Config`] for invalid parameters,
/// [`CountError::EmptyProjection`] for an empty projection set, and
/// [`CountError::Solver`] for unsupported constructs.
pub fn cdm_count(
    tm: &mut TermManager,
    formula: &[TermId],
    projection: &[TermId],
    config: &CounterConfig,
) -> CountResult<CountReport> {
    config.validate()?;
    if projection.is_empty() {
        return Err(CountError::EmptyProjection);
    }
    let mut session = Session::builder(std::mem::take(tm))
        .assert_all(formula)
        .project_all(projection)
        .config(config.clone())
        .build()
        .expect("configuration validated above");
    let result = session.count_cdm();
    *tm = session.into_term_manager();
    result
}

/// The engine behind [`cdm_count`] and [`Session::count_cdm`].
pub(crate) fn count_cdm(
    tm: &mut TermManager,
    formula: &[TermId],
    projection: &[TermId],
    config: &CounterConfig,
    hooks: &RunControl,
) -> CountResult<CountReport> {
    config.validate()?;
    if projection.is_empty() {
        return Err(CountError::EmptyProjection);
    }
    let start = Instant::now();
    let ctrl = RunControl {
        deadline: config.deadline.map(|d| start + d),
        ..hooks.clone()
    };
    let q = copies_for_epsilon(config.epsilon);
    let iterations = config
        .iterations_override
        .unwrap_or_else(|| (17.0 * (3.0 / config.delta).log2()).ceil() as u32)
        .max(1);

    // Self-compose the formula: q copies over fresh variables.
    let conjunction = tm.mk_and(formula.iter().copied());
    let mut copies: Vec<TermId> = Vec::with_capacity(q as usize);
    let mut copied_projections: Vec<TermId> = Vec::new();
    for k in 0..q {
        if k == 0 {
            copies.push(conjunction);
            copied_projections.extend_from_slice(projection);
        } else {
            let (copy, map) = tm.clone_with_fresh_vars(conjunction, &format!("cdm{k}"));
            copies.push(copy);
            for &v in projection {
                copied_projections.push(*map.get(&v).unwrap_or(&v));
            }
        }
    }

    let mut ctx = config.oracle_factory.build(config.solver);
    if let Some(flag) = ctrl.solver_interrupt() {
        ctx.set_interrupt(flag);
    }
    for &v in &copied_projections {
        ctx.track_var(v);
    }
    for &c in &copies {
        ctx.assert_term(c);
    }

    let mut stats = CountStats::default();
    let total_bits = projection_bits(tm, &copied_projections).max(1) as usize;

    // Quick unsatisfiability check.
    let oracle_timer = Instant::now();
    ctx.push();
    let base = ctx.check(tm)?;
    ctx.pop();
    stats.oracle_seconds += oracle_timer.elapsed().as_secs_f64();
    stats.terms_interned = tm.len() as u64;
    match base {
        SolverResult::Unsat => return Ok(finish(CountOutcome::Unsatisfiable, stats, &*ctx, start)),
        SolverResult::Unknown => return Ok(finish(CountOutcome::Timeout, stats, &*ctx, start)),
        SolverResult::Sat => {}
    }

    // The outer rounds are independent, exactly like `pact_count`'s: each
    // draws its own prefix-closed XOR list and probes its own cells, so the
    // same scheduler fans them out with the same determinism guarantee
    // (per-round RNG stream `seed ^ round`, per-round term managers opened
    // over one shared snapshot of the composed formula's interned table, and
    // a per-round oracle from the factory).
    let workers = config.parallel.effective_threads();
    let tm_snapshot = tm.snapshot();
    let copied_projections = &copied_projections;
    let copies = &copies;
    let ctrl_ref = &ctrl;
    let outputs = run_rounds(workers, iterations, |round| {
        if ctrl_ref.interrupted() {
            return RoundOutput {
                value: Ok(CdmRound::interrupted()),
                stop: true,
            };
        }
        let mut round_tm = TermManager::from_snapshot(std::sync::Arc::clone(&tm_snapshot));
        let mut round_ctx = config.oracle_factory.build(config.solver);
        if let Some(flag) = ctrl_ref.solver_interrupt() {
            round_ctx.set_interrupt(flag);
        }
        for &v in copied_projections {
            round_ctx.track_var(v);
        }
        for &c in copies {
            round_ctx.assert_term(c);
        }
        let mut rng = StdRng::seed_from_u64(config.seed ^ u64::from(round));
        let value = cdm_round(
            &mut round_tm,
            &mut *round_ctx,
            copied_projections,
            total_bits,
            q,
            ctrl_ref,
            round,
            &mut rng,
        );
        match value {
            Ok(mut outcome) => {
                let oracle_stats = round_ctx.stats();
                outcome.stats.oracle_calls = oracle_stats.checks;
                outcome.stats.rebuilds = oracle_stats.rebuilds;
                outcome.stats.pool_reuses = oracle_stats.pool_reuses;
                outcome.stats.compactions = oracle_stats.compactions;
                outcome.stats.preprocess_cache_hits = oracle_stats.preprocess_cache_hits;
                merge_portfolio(&mut outcome.stats, round_ctx.portfolio());
                merge_cube(&mut outcome.stats, round_ctx.cube());
                merge_policy(&mut outcome.stats, round_ctx.policy());
                ctrl_ref.emit(ProgressEvent::Round {
                    round,
                    estimate: outcome.estimate,
                });
                let stop = outcome.timed_out;
                RoundOutput {
                    value: Ok(outcome),
                    stop,
                }
            }
            Err(error) => RoundOutput {
                value: Err(error),
                stop: true,
            },
        }
    });

    // Merge in round order; the first timed-out round ends the sequence but
    // still contributes the work it did.
    let mut estimates = Vec::new();
    for slot in outputs {
        let Some(record) = slot else { break };
        let record = record?;
        merge_round_stats(&mut stats, &record.stats);
        if let Some(estimate) = record.estimate {
            estimates.push(estimate);
            stats.iterations += 1;
        }
        if record.timed_out {
            break;
        }
    }

    let outcome = match median(&estimates) {
        Some(log2_per_copy) => {
            let estimate = 2f64.powf(log2_per_copy);
            CountOutcome::Approximate {
                estimate,
                log2_estimate: log2_per_copy,
            }
        }
        None => CountOutcome::Timeout,
    };
    stats.terms_interned = tm.len() as u64;
    Ok(finish(outcome, stats, &*ctx, start))
}

/// One scheduled CDM round: its estimate (if it completed), the work it did,
/// and whether it ran out of budget.
struct CdmRound {
    estimate: Option<f64>,
    stats: CountStats,
    timed_out: bool,
}

impl CdmRound {
    /// A round that observed the deadline (or a cancellation request)
    /// before doing any work.
    fn interrupted() -> Self {
        CdmRound {
            estimate: None,
            stats: CountStats::default(),
            timed_out: true,
        }
    }
}

/// One iteration of the CDM loop: draw a prefix-closed XOR list, then find
/// the largest prefix that still leaves the composed formula satisfiable
/// with a galloping + binary search.
#[allow(clippy::too_many_arguments)]
fn cdm_round(
    tm: &mut TermManager,
    ctx: &mut dyn Oracle,
    copied_projections: &[TermId],
    total_bits: usize,
    q: u32,
    ctrl: &RunControl,
    round: u32,
    rng: &mut StdRng,
) -> CountResult<CdmRound> {
    let mut stats = CountStats::default();
    // Draw one XOR constraint per possible level up front (prefix-closed
    // like pact's H[i]).
    let constraints: Vec<TermId> = (0..total_bits)
        .map(|_| {
            let h = generate(tm, copied_projections, 1, HashFamily::Xor, rng);
            h.to_term(tm)
        })
        .collect();
    let probe = |ctx: &mut dyn Oracle,
                 tm: &mut TermManager,
                 m: usize,
                 stats: &mut CountStats|
     -> CountResult<Option<bool>> {
        if ctrl.interrupted() {
            return Ok(None);
        }
        let oracle_timer = Instant::now();
        ctx.push();
        for &c in &constraints[..m] {
            ctx.assert_term(c);
        }
        let verdict = ctx.check(tm)?;
        ctx.pop();
        stats.oracle_seconds += oracle_timer.elapsed().as_secs_f64();
        stats.cells_explored += 1;
        ctrl.emit(ProgressEvent::Cell {
            round,
            cells_in_round: stats.cells_explored,
        });
        Ok(match verdict {
            SolverResult::Sat => Some(true),
            SolverResult::Unsat => Some(false),
            SolverResult::Unknown => None,
        })
    };
    // Galloping search for the largest m with a non-empty cell.
    let mut lo = 0usize; // known SAT
    let mut hi: Option<usize> = None; // known UNSAT
    let mut m = 1usize;
    loop {
        if m > total_bits {
            break;
        }
        match probe(ctx, tm, m, &mut stats)? {
            Some(true) => {
                lo = lo.max(m);
                if m == total_bits {
                    break;
                }
                m = (m * 2).min(total_bits);
            }
            Some(false) => {
                hi = Some(m);
                break;
            }
            None => {
                return Ok(CdmRound {
                    estimate: None,
                    stats,
                    timed_out: true,
                })
            }
        }
    }
    let mut upper = match hi {
        Some(h) => h,
        None => {
            // Even all constraints leave a solution; use the full width.
            return Ok(CdmRound {
                estimate: Some(lo as f64 / f64::from(q)),
                stats,
                timed_out: false,
            });
        }
    };
    while upper - lo > 1 {
        let mid = lo + (upper - lo) / 2;
        match probe(ctx, tm, mid, &mut stats)? {
            Some(true) => lo = mid,
            Some(false) => upper = mid,
            None => {
                return Ok(CdmRound {
                    estimate: None,
                    stats,
                    timed_out: true,
                })
            }
        }
    }
    Ok(CdmRound {
        estimate: Some(lo as f64 / f64::from(q)),
        stats,
        timed_out: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::relative_error;
    use pact_ir::Sort;

    #[test]
    fn copies_match_epsilon() {
        assert_eq!(copies_for_epsilon(1.0), 1);
        assert_eq!(copies_for_epsilon(0.8), 2);
        assert_eq!(copies_for_epsilon(0.41), 3); // log2(1.41) ≈ 0.496
        assert!(copies_for_epsilon(0.1) >= 8);
    }

    #[test]
    fn cdm_counts_an_unsat_formula_as_zero() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let zero = tm.mk_bv_const(0, 4);
        let f = tm.mk_bv_ult(x, zero).unwrap();
        let report = cdm_count(&mut tm, &[f], &[x], &CounterConfig::fast()).unwrap();
        assert_eq!(report.outcome, CountOutcome::Unsatisfiable);
    }

    #[test]
    fn cdm_estimate_has_the_right_order_of_magnitude() {
        // 2^6 = 64 models of a free 6-bit variable constrained trivially.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        let c = tm.mk_bv_const(63, 6);
        let f = tm.mk_bv_ule(x, c).unwrap(); // always true: 64 models
        let config = CounterConfig {
            iterations_override: Some(9),
            seed: 2,
            ..CounterConfig::default()
        };
        let report = cdm_count(&mut tm, &[f], &[x], &config).unwrap();
        match report.outcome {
            CountOutcome::Approximate { estimate, .. } => {
                // CDM's guarantee is coarser; accept a factor-4 window.
                let err = relative_error(64.0, estimate).unwrap();
                assert!(err <= 3.0, "estimate {estimate} too far from 64");
            }
            other => panic!("expected approximate count, got {other:?}"),
        }
    }

    #[test]
    fn cdm_outcome_is_identical_for_every_thread_count() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        let c = tm.mk_bv_const(63, 6);
        let f = tm.mk_bv_ule(x, c).unwrap(); // 64 models
        let reports: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                let config = CounterConfig {
                    iterations_override: Some(5),
                    seed: 2,
                    ..CounterConfig::default()
                }
                .with_threads(threads);
                cdm_count(&mut tm, &[f], &[x], &config).unwrap()
            })
            .collect();
        for report in &reports[1..] {
            assert_eq!(report.outcome, reports[0].outcome);
            assert_eq!(report.stats.oracle_calls, reports[0].stats.oracle_calls);
            assert_eq!(report.stats.cells_explored, reports[0].stats.cells_explored);
            assert_eq!(report.stats.iterations, reports[0].stats.iterations);
        }
    }

    #[test]
    fn cdm_issues_more_expensive_queries_than_pact() {
        // On the same instance, CDM's composed formula forces at least as
        // many oracle calls with strictly larger encodings; we check the
        // call count as a proxy.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        let c = tm.mk_bv_const(20, 6);
        let f = tm.mk_bv_ule(c, x).unwrap(); // 44 models
        let config = CounterConfig {
            iterations_override: Some(2),
            seed: 1,
            ..CounterConfig::default()
        };
        let cdm = cdm_count(&mut tm, &[f], &[x], &config).unwrap();
        assert!(cdm.stats.oracle_calls > 0);
        assert!(cdm.stats.wall_seconds >= 0.0);
    }
}
