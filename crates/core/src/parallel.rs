//! Deterministic fan-out of independent counting rounds over scoped threads.
//!
//! Both `pact_count` and the CDM baseline run a sequence of *independent*
//! outer rounds and aggregate their estimates (Algorithm 3's
//! median-of-rounds).  This module owns the scheduling so both counters share
//! the same guarantees:
//!
//! * **Determinism.**  A round is a pure function of `(formula snapshot,
//!   configuration, round index)`: every round opens its own term manager
//!   over one shared [`TermSnapshot`](pact_ir::TermSnapshot) of the interned
//!   id table, builds a fresh oracle, and seeds an RNG from `seed ^ round`.
//!   The merged result is therefore bit-identical for every thread count —
//!   workers only change *which thread* computes a round, never *what* it
//!   computes.
//! * **Sequential-equivalent early exit.**  When a round reports a stop
//!   condition (deadline expired, solver gave up, error), rounds after it in
//!   *round order* are discarded even if a worker computed them
//!   speculatively, exactly matching what the single-threaded loop would
//!   have run.
//!
//! Rounds run against *fresh* managers over the shared snapshot rather than
//! per-worker reused state on purpose: reusing a worker's term manager
//! across rounds would let one round's interned terms shift the `TermId`s
//! the next round allocates, so results could depend on which worker ran
//! which round.  Opening a manager over the snapshot is an `Arc` share, not
//! a deep copy — each round's hash constraints land in a private tail whose
//! ids start right after the frozen table, so identical construction
//! sequences allocate identical ids on every thread — and the re-encode is a
//! small, constant slice of a round's solving time.
//!
//! The determinism claim is qualified by deadlines: *which* round first
//! observes an expired [`CounterConfig::deadline`] depends on wall-clock
//! progress, which varies with thread count and machine load.  Deadline-free
//! runs are exactly reproducible; see [`ParallelConfig`].
//!
//! The types here own all their data; `Send` is what lets them cross the
//! scope boundary, and the workspace-wide `#![forbid(unsafe_code)]` means
//! that property is checked by the compiler, not by convention (see the
//! assertions at the bottom).
//!
//! [`CounterConfig::deadline`]: crate::CounterConfig
//! [`ParallelConfig`]: crate::ParallelConfig

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc;
use std::thread;

/// What a round handed back to the scheduler.
pub struct RoundOutput<T> {
    /// The round's result, forwarded verbatim to the merge loop.
    pub value: T,
    /// When `true`, no round with a *higher* index is started (or kept, if
    /// one was already running speculatively on another worker).
    pub stop: bool,
}

/// Runs `rounds` round closures on `workers` threads and returns the results
/// in round order.
///
/// The returned vector has one entry per round; `None` marks rounds that
/// were never run (or were discarded) because an earlier round stopped the
/// schedule.  Callers must merge in index order and treat the first `None`
/// as the end of the sequence — entries *after* a stopping round may be
/// `Some` (speculative work) and must be ignored, which the merge loop gets
/// for free by breaking at the stopper.
pub fn run_rounds<T, F>(workers: usize, rounds: u32, round: F) -> Vec<Option<T>>
where
    T: Send,
    F: Fn(u32) -> RoundOutput<T> + Sync,
{
    let mut out: Vec<Option<T>> = (0..rounds).map(|_| None).collect();
    if workers <= 1 || rounds <= 1 {
        for r in 0..rounds {
            let output = round(r);
            let stop = output.stop;
            out[r as usize] = Some(output.value);
            if stop {
                break;
            }
        }
        return out;
    }

    // Work-stealing by atomic ticket: each worker claims the next unclaimed
    // round index.  `stop_at` is the exclusive upper bound of the schedule;
    // a stopping round at index r lowers it to r + 1.
    let next = AtomicU32::new(0);
    let stop_at = AtomicU32::new(rounds);
    let (sender, receiver) = mpsc::channel::<(u32, T)>();
    thread::scope(|scope| {
        for _ in 0..workers.min(rounds as usize) {
            let sender = sender.clone();
            let next = &next;
            let stop_at = &stop_at;
            let round = &round;
            scope.spawn(move || loop {
                let r = next.fetch_add(1, Ordering::Relaxed);
                if r >= rounds || r >= stop_at.load(Ordering::Relaxed) {
                    break;
                }
                let output = round(r);
                if output.stop {
                    stop_at.fetch_min(r + 1, Ordering::Relaxed);
                }
                let stop = output.stop;
                // The receiver outlives the scope; a send can only fail if
                // the main thread panicked, in which case unwinding is
                // already in progress.
                let _ = sender.send((r, output.value));
                if stop {
                    break;
                }
            });
        }
    });
    drop(sender);
    let final_stop = stop_at.load(Ordering::Relaxed);
    for (r, value) in receiver {
        // Discard speculative rounds scheduled past the final stop point so
        // the merged sequence matches the single-threaded schedule.
        if r < final_stop {
            out[r as usize] = Some(value);
        }
    }
    out
}

// Send audit for the types that cross the scheduler's thread boundary.
// They own all their data (`Vec`s, `String`s, integers) and the workspace
// forbids `unsafe`, so `Send` is derived structurally; these assertions turn
// any future `Rc`/`RefCell`/raw-pointer regression into a compile error at
// the crate that introduced it.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<pact_ir::TermManager>();
    assert_send::<pact_solver::Context>();
    assert_send::<pact_solver::SolverError>();
    assert_send::<crate::result::CountStats>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(workers: usize, rounds: u32, stop_on: Option<u32>) -> Vec<Option<u32>> {
        run_rounds(workers, rounds, |r| RoundOutput {
            value: r * 10,
            stop: stop_on == Some(r),
        })
    }

    #[test]
    fn all_rounds_run_without_a_stop() {
        for workers in [1, 2, 8] {
            let out = collect(workers, 6, None);
            let values: Vec<u32> = out.into_iter().map(|v| v.unwrap()).collect();
            assert_eq!(values, vec![0, 10, 20, 30, 40, 50], "workers = {workers}");
        }
    }

    #[test]
    fn results_are_identical_across_worker_counts() {
        let baseline = collect(1, 9, Some(4));
        for workers in [2, 3, 8] {
            let out = collect(workers, 9, Some(4));
            // Rounds up to and including the stopper must match the
            // sequential schedule; later rounds must be discarded.
            for r in 0..=4 {
                assert_eq!(out[r], baseline[r], "workers = {workers}, round {r}");
            }
            for (r, slot) in out.iter().enumerate().skip(5) {
                assert!(slot.is_none(), "workers = {workers}, round {r} kept");
            }
        }
    }

    #[test]
    fn single_round_short_circuits() {
        let out = collect(8, 1, None);
        assert_eq!(out, vec![Some(0)]);
    }
}
