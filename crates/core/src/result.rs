//! Count results, statistics and accuracy metrics.

use std::fmt;

use pact_solver::{CubeStats, PolicyStats, PortfolioStats, MAX_PORTFOLIO_WORKERS, POLICY_BACKENDS};

/// Statistics collected while counting one instance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CountStats {
    /// Number of SMT oracle (`check`) calls issued.
    pub oracle_calls: u64,
    /// Number of cells whose size was measured with `SaturatingCounter`.
    pub cells_explored: u64,
    /// Number of outer iterations completed (the length of the list `L`).
    pub iterations: u32,
    /// Number of hash constraints in the final cell of the last iteration.
    pub final_hash_count: u32,
    /// Wall-clock time spent, in seconds.
    pub wall_seconds: f64,
    /// Number of encoder rebuilds across every oracle the run built (the
    /// rebuilding backend pays one per `pop` that crosses encoded
    /// assertions; the incremental backend reports 0).  Deterministic for a
    /// fixed seed and backend, like `oracle_calls`.
    pub rebuilds: u64,
    /// Wall-clock seconds spent inside oracle work (cell measurements),
    /// summed over all rounds — with parallel rounds this can exceed
    /// `wall_seconds`, like CPU time.
    pub oracle_seconds: f64,
    /// Number of workers the portfolio backend raced per oracle `check`
    /// (0 for the single-engine backends).
    pub portfolio_workers: u32,
    /// Decisive answers credited per portfolio worker slot, summed over
    /// every oracle the run built; only the first `portfolio_workers`
    /// entries are meaningful.  Two-plus non-zero slots mean the
    /// diversification is live (no single worker dominates).
    pub worker_wins: [u64; MAX_PORTFOLIO_WORKERS],
    /// Portfolio worker solves cut short after losing a race.
    pub cancelled_solves: u64,
    /// Oracle checks the cube backend split into cubes (0 for every other
    /// backend).  Deterministic for a fixed seed, like `oracle_calls`.
    pub cubes_split: u64,
    /// Cubes decisively answered — probe-refuted, probe-satisfied, or
    /// conquered to SAT/UNSAT.  The conquest share is timing-dependent
    /// (siblings cancelled after a SAT short-circuit are not "solved"), so
    /// this varies run to run like `worker_wins`.
    pub cubes_solved: u64,
    /// Cubes the lookahead probe refuted before any conquest work was
    /// spent (a subset of `cubes_solved`; scout-side, deterministic).
    pub cube_refuted_by_lookahead: u64,
    /// Batches the parallel backends' persistent worker pools served — one
    /// per racing/conquering `check` — instead of spawning fresh threads
    /// (0 for the single-engine backends).  Deterministic for a fixed seed,
    /// like `oracle_calls`.
    pub pool_reuses: u64,
    /// Frame-garbage compactions the activation-literal oracles performed:
    /// re-encodes of the live frames into a fresh solver once retired-frame
    /// clauses dominated.  Not a rebuild — `rebuilds` stays 0 for those
    /// backends.
    pub compactions: u64,
    /// Distinct terms interned by the run's term store at finish time.
    /// Stamped from the store (not summed per round): hash consing gives
    /// every structurally equal term one id, so this is the size of the
    /// shared id table the snapshots and caches key on.
    pub terms_interned: u64,
    /// Preprocessing results served from term-id-keyed caches instead of
    /// being recomputed, summed over every oracle the run built (rebuild
    /// replays, compaction journal replays, and the parallel backends'
    /// warm-cache hits on hash-consed re-assertions).
    pub preprocess_cache_hits: u64,
    /// Cube-backend lookahead probes answered from the probe-outcome cache
    /// instead of a scout solve (0 for every other backend); a subset of
    /// `cube_refuted_by_lookahead`.
    pub probe_cache_hits: u64,
    /// Backend re-routes the adaptive policy performed, summed over every
    /// oracle the run built (0 for the fixed-strategy backends).
    /// Deterministic for a fixed seed, like `oracle_calls`: the policy
    /// routes only on the deterministic slice of its observations.
    pub policy_switches: u64,
    /// Oracle checks the adaptive policy served per backend slot, in the
    /// order rebuild, incremental, portfolio, cube (all zero for the
    /// fixed-strategy backends).  Two-plus non-zero slots mean the
    /// adaptivity is live.
    pub policy_backend_checks: [u64; POLICY_BACKENDS],
    /// Deepest cube split the adaptive policy reached across the run (0
    /// when cube splitting was never engaged or the backend is
    /// fixed-strategy).  A max, not a flow.
    pub cube_depth_max: u32,
}

/// Folds one oracle's portfolio accounting (if any) into the run's stats.
///
/// `workers` is clamped to [`MAX_PORTFOLIO_WORKERS`]: a custom backend can
/// report any number, but `worker_wins` is a fixed-size array and downstream
/// consumers slice it by this field.
pub(crate) fn merge_portfolio(stats: &mut CountStats, portfolio: Option<PortfolioStats>) {
    if let Some(p) = portfolio {
        let workers = p.workers.min(MAX_PORTFOLIO_WORKERS as u32);
        stats.portfolio_workers = stats.portfolio_workers.max(workers);
        for (total, wins) in stats.worker_wins.iter_mut().zip(p.wins) {
            *total += wins;
        }
        stats.cancelled_solves += p.cancelled;
    }
}

/// Folds one oracle's cube accounting (if any) into the run's stats.
pub(crate) fn merge_cube(stats: &mut CountStats, cube: Option<CubeStats>) {
    if let Some(c) = cube {
        stats.cubes_split += c.splits;
        stats.cubes_solved += c.cubes_solved;
        stats.cube_refuted_by_lookahead += c.refuted_by_lookahead;
        stats.probe_cache_hits += c.probe_cache_hits;
    }
}

/// Folds one oracle's adaptive-policy accounting (if any) into the run's
/// stats.
pub(crate) fn merge_policy(stats: &mut CountStats, policy: Option<PolicyStats>) {
    if let Some(p) = policy {
        stats.policy_switches += p.switches;
        for (total, checks) in stats.policy_backend_checks.iter_mut().zip(p.backend_checks) {
            *total += checks;
        }
        stats.cube_depth_max = stats.cube_depth_max.max(p.cube_depth_max);
    }
}

/// Folds a finished round's stats into the run totals (the deterministic
/// fields the merge loops accumulate; `final_hash_count` and outcome
/// handling stay with the callers).
pub(crate) fn merge_round_stats(total: &mut CountStats, round: &CountStats) {
    total.cells_explored += round.cells_explored;
    total.oracle_calls += round.oracle_calls;
    total.rebuilds += round.rebuilds;
    total.oracle_seconds += round.oracle_seconds;
    total.portfolio_workers = total.portfolio_workers.max(round.portfolio_workers);
    for (t, w) in total.worker_wins.iter_mut().zip(round.worker_wins) {
        *t += w;
    }
    total.cancelled_solves += round.cancelled_solves;
    total.cubes_split += round.cubes_split;
    total.cubes_solved += round.cubes_solved;
    total.cube_refuted_by_lookahead += round.cube_refuted_by_lookahead;
    total.pool_reuses += round.pool_reuses;
    total.compactions += round.compactions;
    total.preprocess_cache_hits += round.preprocess_cache_hits;
    total.probe_cache_hits += round.probe_cache_hits;
    total.policy_switches += round.policy_switches;
    for (t, c) in total
        .policy_backend_checks
        .iter_mut()
        .zip(round.policy_backend_checks)
    {
        *t += c;
    }
    // Like `portfolio_workers`, `cube_depth_max` is a high-water mark, not
    // a flow: rounds report the depth they reached, the run keeps the max.
    total.cube_depth_max = total.cube_depth_max.max(round.cube_depth_max);
    // `terms_interned` is deliberately NOT summed: it is a size, not a
    // flow, and is stamped once from the finished run's term store.
}

/// The outcome of a counting run.
#[derive(Debug, Clone, PartialEq)]
pub enum CountOutcome {
    /// The projected model count was below `thresh` and is exact.
    Exact(u64),
    /// A hashing-based `(ε, δ)` estimate.
    Approximate {
        /// The estimated projected model count.
        estimate: f64,
        /// Base-2 logarithm of the estimate (stable even for huge counts).
        log2_estimate: f64,
    },
    /// The formula has no models over the projection set.
    Unsatisfiable,
    /// The per-instance budget (deadline or solver limits) was exhausted.
    Timeout,
}

impl CountOutcome {
    /// The numeric estimate, if the run produced one (exact counts are
    /// returned as-is; timeouts yield `None`).
    pub fn value(&self) -> Option<f64> {
        match self {
            CountOutcome::Exact(c) => Some(*c as f64),
            CountOutcome::Approximate { estimate, .. } => Some(*estimate),
            CountOutcome::Unsatisfiable => Some(0.0),
            CountOutcome::Timeout => None,
        }
    }

    /// Returns `true` when the instance finished within its budget.
    pub fn is_solved(&self) -> bool {
        !matches!(self, CountOutcome::Timeout)
    }
}

impl fmt::Display for CountOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CountOutcome::Exact(c) => write!(f, "exact {c}"),
            CountOutcome::Approximate { estimate, .. } => write!(f, "≈ {estimate}"),
            CountOutcome::Unsatisfiable => write!(f, "unsat (0 models)"),
            CountOutcome::Timeout => write!(f, "timeout"),
        }
    }
}

/// A finished counting run: the outcome plus its statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CountReport {
    /// What the counter concluded.
    pub outcome: CountOutcome,
    /// How much work it took.
    pub stats: CountStats,
}

/// Seals a run's statistics into a report: the rounds ran on their own
/// oracles and already merged their call and rebuild counts into `stats`;
/// the base oracle's (the run's initial check) are added on top here, and
/// the wall clock is stamped.  Shared by the `pact` and CDM engines so a
/// stat added to [`CountStats`] is threaded through exactly once.
pub(crate) fn finish_report(
    outcome: CountOutcome,
    mut stats: CountStats,
    base: &dyn pact_solver::Oracle,
    start: std::time::Instant,
) -> CountReport {
    let oracle = base.stats();
    stats.oracle_calls += oracle.checks;
    stats.rebuilds += oracle.rebuilds;
    stats.pool_reuses += oracle.pool_reuses;
    stats.compactions += oracle.compactions;
    stats.preprocess_cache_hits += oracle.preprocess_cache_hits;
    merge_portfolio(&mut stats, base.portfolio());
    merge_cube(&mut stats, base.cube());
    merge_policy(&mut stats, base.policy());
    stats.wall_seconds = start.elapsed().as_secs_f64();
    CountReport { outcome, stats }
}

/// The observed relative error `e = max(b/s, s/b) − 1` between a baseline
/// (exact) count `b` and an estimate `s` (§IV-B of the paper).
///
/// Returns `None` when either count is zero or negative (the metric is not
/// defined there); two zero counts are a perfect match with error 0.
pub fn relative_error(exact: f64, estimate: f64) -> Option<f64> {
    if exact == 0.0 && estimate == 0.0 {
        return Some(0.0);
    }
    if exact <= 0.0 || estimate <= 0.0 {
        return None;
    }
    Some((exact / estimate).max(estimate / exact) - 1.0)
}

/// The median of a list of estimates (Algorithm 1, line 15).
///
/// Uses the lower median for even-length lists, matching ApproxMC-style
/// implementations.  Returns `None` on an empty list.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN estimates"));
    Some(sorted[(sorted.len() - 1) / 2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_is_symmetric() {
        assert_eq!(relative_error(100.0, 100.0), Some(0.0));
        let e1 = relative_error(100.0, 80.0).unwrap();
        let e2 = relative_error(80.0, 100.0).unwrap();
        assert!((e1 - e2).abs() < 1e-12);
        assert!((e1 - 0.25).abs() < 1e-12);
        assert_eq!(relative_error(0.0, 0.0), Some(0.0));
        assert_eq!(relative_error(0.0, 5.0), None);
    }

    #[test]
    fn median_of_odd_and_even_lists() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(median(&[5.0]), Some(5.0));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn outcome_values() {
        assert_eq!(CountOutcome::Exact(7).value(), Some(7.0));
        assert_eq!(CountOutcome::Unsatisfiable.value(), Some(0.0));
        assert_eq!(CountOutcome::Timeout.value(), None);
        assert!(!CountOutcome::Timeout.is_solved());
        let a = CountOutcome::Approximate {
            estimate: 128.0,
            log2_estimate: 7.0,
        };
        assert_eq!(a.value(), Some(128.0));
        assert!(a.is_solved());
    }

    #[test]
    fn outcome_display() {
        assert_eq!(CountOutcome::Exact(3).to_string(), "exact 3");
        assert_eq!(CountOutcome::Timeout.to_string(), "timeout");
    }
}
