//! `pact` — approximate projected model counting for hybrid SMT formulas.
//!
//! This crate is the core contribution of the reproduced paper
//! ("Approximate SMT Counting Beyond Discrete Domains", DAC 2025): given a
//! hybrid SMT formula `F` (mixing bit-vectors, reals, floats, arrays, …) and
//! a projection set `S` of discrete variables, [`pact_count`] estimates
//! `|Sol(F)↓S|` with `(ε, δ)` guarantees using `O(log |S|)` SMT oracle calls
//! per iteration.
//!
//! Also provided, because the paper's evaluation needs them:
//!
//! * [`cdm_count`] — the Chistikov–Dimitrova–Majumdar baseline
//!   (self-composition + hashing), the "CDM" column of Table I;
//! * [`enumerate_count`] — the `enum` exact enumerator used to measure
//!   accuracy in Fig. 2;
//! * [`relative_error`] — the paper's error metric
//!   `e = max(b/s, s/b) − 1`.
//!
//! # Quickstart
//!
//! The primary API is the [`Session`]: declare the problem once (it owns the
//! term manager, the formula and the projection set), then count it as many
//! times — and under as many configurations — as needed.
//!
//! ```
//! use pact_ir::{TermManager, Sort, Rational};
//! use pact::{Session, CountOutcome};
//!
//! // A hybrid formula: 8-bit b, real r, with  b ≥ 32  ∧  0 < r < 1.
//! let mut tm = TermManager::new();
//! let b = tm.mk_var("b", Sort::BitVec(8));
//! let r = tm.mk_var("r", Sort::Real);
//! let c = tm.mk_bv_const(32, 8);
//! let f1 = tm.mk_bv_ule(c, b).unwrap();
//! let zero = tm.mk_real_const(Rational::ZERO);
//! let one = tm.mk_real_const(Rational::ONE);
//! let f2 = tm.mk_real_lt(zero, r).unwrap();
//! let f3 = tm.mk_real_lt(r, one).unwrap();
//!
//! // Count the projected models over {b} (the true count is 224).
//! let mut session = Session::builder(tm)
//!     .assert_all(&[f1, f2, f3])
//!     .project(b)
//!     .seed(1)
//!     .iterations(3)
//!     .build()
//!     .unwrap();
//! let report = session.count().unwrap();
//! assert!(report.outcome.value().unwrap() > 0.0);
//! ```
//!
//! The original free functions remain as thin compatibility wrappers over
//! the session (they borrow a [`TermManager`](pact_ir::TermManager) instead
//! of owning one); sessions additionally offer progress observation
//! ([`Progress`]), cooperative cancellation ([`CancellationToken`]) and
//! pluggable oracle backends ([`OracleFactory`], [`Oracle`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdm;
mod config;
mod constants;
mod counter;
mod enumerate;
mod error;
pub mod parallel;
mod progress;
mod result;
pub mod saturating;
mod session;

pub use cdm::{cdm_count, copies_for_epsilon};
pub use config::{BackendSpec, CounterConfig, OracleFactory, ParallelConfig};
pub use constants::{get_constants, Constants};
pub use counter::pact_count;
pub use enumerate::enumerate_count;
pub use error::{ConfigError, CountError, CountResult};
pub use pact_solver::{
    cubes_partition, CubeStats, InterruptFlag, PortfolioStats, MAX_CUBE_DEPTH, MAX_CUBE_WORKERS,
    MAX_PORTFOLIO_WORKERS,
};
pub use progress::{CancellationToken, Progress, ProgressEvent, RunControl};
pub use result::{median, relative_error, CountOutcome, CountReport, CountStats};
pub use session::{Session, SessionBuilder};

// Re-export the pieces callers need to drive the counter (and to implement
// custom oracle backends).
pub use pact_hash::HashFamily;
pub use pact_solver::{
    Context, CubeContext, IncrementalContext, Oracle, OracleStats, SolverConfig, SolverError,
    SolverResult,
};
