//! `GetConstants` (Algorithm 3): thresholds and iteration counts from
//! `(ε, δ)` and the hash family.

use pact_hash::HashFamily;

/// Constants driving the main loop of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constants {
    /// Maximum cell size considered "small" (`thresh`).
    pub thresh: u64,
    /// Number of outer iterations whose results are medianed (`numIt`).
    pub iterations: u32,
    /// Range exponent handed to `GenerateHash` (`ℓ`): 1 for `H_xor`,
    /// 4 for the word-level families.
    pub ell: u32,
}

/// Computes `thresh`, `numIt` and `ℓ` exactly as Algorithm 3 does.
///
/// `thresh = 1 + 9.84·(1 + ε/(1+ε))·(1 + 1/ε)²`; the iteration count is
/// `⌈17·log₂(3/δ)⌉` for `H_xor` and `⌈23·log₂(3/δ)⌉` for the word-level
/// families (which pay for the coarser `FixLastHash` refinement).
///
/// # Panics
///
/// Panics if `ε ≤ 0` or `δ ∉ (0, 1)`; validate the configuration first.
pub fn get_constants(epsilon: f64, delta: f64, family: HashFamily) -> Constants {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    let thresh = 1.0 + 9.84 * (1.0 + epsilon / (1.0 + epsilon)) * (1.0 + 1.0 / epsilon).powi(2);
    let thresh = thresh.ceil() as u64;
    let log_term = (3.0 / delta).log2();
    let (iterations, ell) = match family {
        HashFamily::Xor => ((17.0 * log_term).ceil() as u32, 1),
        HashFamily::Prime | HashFamily::Shift => ((23.0 * log_term).ceil() as u32, 4),
    };
    Constants {
        thresh,
        iterations: iterations.max(1),
        ell,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration() {
        // ε = 0.8, δ = 0.2 (the evaluation's parameters).
        let c = get_constants(0.8, 0.2, HashFamily::Xor);
        assert_eq!(c.ell, 1);
        // thresh = 1 + 9.84 · (1 + 0.8/1.8) · (1 + 1.25)² ≈ 72.96 → 73
        assert_eq!(c.thresh, 73);
        // 17 · log2(15) ≈ 66.4 → 67
        assert_eq!(c.iterations, 67);

        let c = get_constants(0.8, 0.2, HashFamily::Prime);
        assert_eq!(c.ell, 4);
        assert_eq!(c.thresh, 73);
        // 23 · log2(15) ≈ 89.9 → 90
        assert_eq!(c.iterations, 90);
    }

    #[test]
    fn tighter_tolerance_means_bigger_cells() {
        let loose = get_constants(0.8, 0.2, HashFamily::Xor);
        let tight = get_constants(0.1, 0.2, HashFamily::Xor);
        assert!(tight.thresh > loose.thresh);
    }

    #[test]
    fn smaller_delta_means_more_iterations() {
        let a = get_constants(0.8, 0.2, HashFamily::Xor);
        let b = get_constants(0.8, 0.01, HashFamily::Xor);
        assert!(b.iterations > a.iterations);
    }

    #[test]
    #[should_panic(expected = "delta must be in (0, 1)")]
    fn invalid_delta_panics() {
        get_constants(0.8, 1.5, HashFamily::Xor);
    }
}
