//! Algorithm 1: the `pact` approximate projected model counter.
//!
//! The public entry points are [`Session::count`](crate::Session::count) and
//! the compatibility wrapper [`pact_count`]; both drive the engine in this
//! module, which is generic over the [`Oracle`] backend (built through
//! [`CounterConfig::oracle_factory`], once per scheduled round) and threads a
//! [`RunControl`] — deadline, cancellation token, progress observer — through
//! the round scheduler and the saturating counter.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pact_hash::{generate, projection_bits, HashConstraint, HashFamily};
use pact_ir::{TermId, TermManager};
use pact_solver::Oracle;

use crate::config::CounterConfig;
use crate::constants::get_constants;
use crate::error::{CountError, CountResult};
use crate::parallel::{run_rounds, RoundOutput};
use crate::progress::{ProgressEvent, RunControl};
use crate::result::{
    finish_report as finish, median, merge_cube, merge_policy, merge_portfolio, merge_round_stats,
    CountOutcome, CountReport, CountStats,
};
use crate::saturating::{saturating_count_ctl, CellCount};
use crate::session::Session;

/// Counts the projected models of `formula` over `projection` with
/// `(ε, δ)` guarantees (Algorithm 1 of the paper).
///
/// `formula` is a conjunction of assertions; `projection` is the set `S` of
/// discrete variables onto which solutions are projected.
///
/// This is the compatibility form of the API: it builds a one-shot
/// [`Session`] around the borrowed term manager and counts once.  New code
/// that counts the same problem repeatedly (or needs progress reporting and
/// cancellation) should build the session directly via [`Session::builder`].
///
/// # Errors
///
/// Returns [`CountError::Config`] for invalid `(ε, δ)` parameters,
/// [`CountError::EmptyProjection`] for an empty projection set, and
/// [`CountError::Solver`] when the formula uses constructs outside the
/// oracle's supported fragment.
///
/// # Example
///
/// ```
/// use pact_ir::{TermManager, Sort};
/// use pact::{pact_count, CounterConfig, CountOutcome};
///
/// // x < 12 over a 6-bit x: 12 projected models, counted exactly because the
/// // count is below the threshold.
/// let mut tm = TermManager::new();
/// let x = tm.mk_var("x", Sort::BitVec(6));
/// let c = tm.mk_bv_const(12, 6);
/// let f = tm.mk_bv_ult(x, c).unwrap();
/// let report = pact_count(&mut tm, &[f], &[x], &CounterConfig::fast()).unwrap();
/// assert_eq!(report.outcome, CountOutcome::Exact(12));
/// ```
pub fn pact_count(
    tm: &mut TermManager,
    formula: &[TermId],
    projection: &[TermId],
    config: &CounterConfig,
) -> CountResult<CountReport> {
    // Validate before taking the term manager so an error leaves the
    // caller's `tm` untouched.
    config.validate()?;
    if projection.is_empty() {
        return Err(CountError::EmptyProjection);
    }
    let mut session = Session::builder(std::mem::take(tm))
        .assert_all(formula)
        .project_all(projection)
        .config(config.clone())
        .build()
        .expect("configuration validated above");
    let result = session.count();
    *tm = session.into_term_manager();
    result
}

/// The engine behind [`pact_count`] and [`Session::count`].
///
/// `hooks` carries the cancellation token and progress observer; its
/// deadline field is overwritten with the absolute instant derived from
/// `config.deadline`.
pub(crate) fn count_pact(
    tm: &mut TermManager,
    formula: &[TermId],
    projection: &[TermId],
    config: &CounterConfig,
    hooks: &RunControl,
) -> CountResult<CountReport> {
    config.validate()?;
    if projection.is_empty() {
        return Err(CountError::EmptyProjection);
    }
    let start = Instant::now();
    let ctrl = RunControl {
        deadline: config.deadline.map(|d| start + d),
        ..hooks.clone()
    };
    let constants = get_constants(config.epsilon, config.delta, config.family);
    let iterations = config
        .iterations_override
        .unwrap_or(constants.iterations)
        .max(1);
    let mut ctx = config.oracle_factory.build(config.solver);
    if let Some(flag) = ctrl.solver_interrupt() {
        ctx.set_interrupt(flag);
    }
    for &v in projection {
        ctx.track_var(v);
    }
    for &f in formula {
        ctx.assert_term(f);
    }

    let mut stats = CountStats::default();

    // Line 3-4: if the whole projected space is already small, the count is exact.
    let oracle_timer = Instant::now();
    ctx.push();
    let base = saturating_count_ctl(&mut *ctx, tm, projection, constants.thresh, &ctrl)?;
    ctx.pop();
    stats.oracle_seconds += oracle_timer.elapsed().as_secs_f64();
    stats.cells_explored += 1;
    ctrl.emit(ProgressEvent::Cell {
        round: 0,
        cells_in_round: 1,
    });
    // A size, not a flow: stamped from the store before each report (the
    // hashing rounds below intern their constraints into private tails, so
    // the base store's table is the shared one every snapshot serves).
    stats.terms_interned = tm.len() as u64;
    match base {
        CellCount::Exact(0) => {
            return Ok(finish(CountOutcome::Unsatisfiable, stats, &*ctx, start));
        }
        CellCount::Exact(n) => {
            return Ok(finish(CountOutcome::Exact(n), stats, &*ctx, start));
        }
        CellCount::Unknown => {
            return Ok(finish(CountOutcome::Timeout, stats, &*ctx, start));
        }
        CellCount::Saturated => {}
    }

    // Maximum number of hash constraints ever needed: enough to cut the
    // projected space down to (expected) single solutions.
    let total_bits = projection_bits(tm, projection).max(1);

    // The outer rounds are independent: each opens its own term manager over
    // one shared snapshot of the interned id table (an `Arc` share, not a
    // deep clone — round-local terms land in a private tail), builds its own
    // oracle (through the factory, on the worker's own thread) and derives
    // an RNG stream from `seed ^ round`, so the scheduler can fan them out
    // across threads without changing the result (see `parallel.rs` for the
    // determinism argument).
    let workers = config.parallel.effective_threads();
    let tm_snapshot = tm.snapshot();
    let thresh = constants.thresh;
    let ell = constants.ell;
    let ctrl_ref = &ctrl;
    let outputs = run_rounds(workers, iterations, |round| {
        if ctrl_ref.interrupted() {
            return RoundOutput {
                value: Ok(RoundRecord::interrupted()),
                stop: true,
            };
        }
        let mut round_tm = TermManager::from_snapshot(std::sync::Arc::clone(&tm_snapshot));
        let mut round_ctx = config.oracle_factory.build(config.solver);
        if let Some(flag) = ctrl_ref.solver_interrupt() {
            round_ctx.set_interrupt(flag);
        }
        for &v in projection {
            round_ctx.track_var(v);
        }
        for &f in formula {
            round_ctx.assert_term(f);
        }
        let mut rng = StdRng::seed_from_u64(config.seed ^ u64::from(round));
        let mut round_stats = CountStats::default();
        let result = one_round(
            &mut round_tm,
            &mut *round_ctx,
            projection,
            config,
            thresh,
            ell,
            total_bits,
            ctrl_ref,
            round,
            &mut rng,
            &mut round_stats,
        );
        let oracle_stats = round_ctx.stats();
        round_stats.oracle_calls = oracle_stats.checks;
        round_stats.rebuilds = oracle_stats.rebuilds;
        round_stats.pool_reuses = oracle_stats.pool_reuses;
        round_stats.compactions = oracle_stats.compactions;
        round_stats.preprocess_cache_hits = oracle_stats.preprocess_cache_hits;
        merge_portfolio(&mut round_stats, round_ctx.portfolio());
        merge_cube(&mut round_stats, round_ctx.cube());
        merge_policy(&mut round_stats, round_ctx.policy());
        match result {
            Ok(outcome) => {
                ctrl_ref.emit(ProgressEvent::Round {
                    round,
                    estimate: match &outcome {
                        RoundOutcome::Estimate(value) => Some(*value),
                        _ => None,
                    },
                });
                let stop = matches!(outcome, RoundOutcome::Timeout);
                RoundOutput {
                    value: Ok(RoundRecord {
                        outcome,
                        stats: round_stats,
                    }),
                    stop,
                }
            }
            Err(error) => RoundOutput {
                value: Err(error),
                stop: true,
            },
        }
    });

    // Merge in round order; the first stopping round ends the sequence, and
    // a partially counted (timed-out) round still contributes its stats.
    let mut estimates: Vec<f64> = Vec::new();
    for slot in outputs {
        let Some(record) = slot else { break };
        let record = record?;
        merge_round_stats(&mut stats, &record.stats);
        if record.stats.final_hash_count > 0 {
            stats.final_hash_count = record.stats.final_hash_count;
        }
        match record.outcome {
            RoundOutcome::Estimate(value) => {
                estimates.push(value);
                stats.iterations += 1;
            }
            RoundOutcome::Failed => {}
            RoundOutcome::Timeout => break,
        }
    }

    let outcome = match median(&estimates) {
        Some(estimate) => CountOutcome::Approximate {
            estimate,
            log2_estimate: estimate.log2(),
        },
        None => CountOutcome::Timeout,
    };
    stats.terms_interned = tm.len() as u64;
    Ok(finish(outcome, stats, &*ctx, start))
}

/// One scheduled round's result: what it concluded plus the work it did
/// (merged into the report even when the round timed out mid-cell).
struct RoundRecord {
    outcome: RoundOutcome,
    stats: CountStats,
}

impl RoundRecord {
    /// A round that observed the deadline (or a cancellation request)
    /// before doing any work.
    fn interrupted() -> Self {
        RoundRecord {
            outcome: RoundOutcome::Timeout,
            stats: CountStats::default(),
        }
    }
}

enum RoundOutcome {
    Estimate(f64),
    Failed,
    Timeout,
}

/// One iteration of the main loop (lines 6-14 of Algorithm 1): generate a
/// fresh list of hash functions, find the boundary cell with a galloping
/// search, refine the last hash for word-level families, and turn the cell
/// size into an estimate.
#[allow(clippy::too_many_arguments)]
fn one_round(
    tm: &mut TermManager,
    ctx: &mut dyn Oracle,
    projection: &[TermId],
    config: &CounterConfig,
    thresh: u64,
    ell: u32,
    total_bits: u32,
    ctrl: &RunControl,
    round: u32,
    rng: &mut StdRng,
    stats: &mut CountStats,
) -> CountResult<RoundOutcome> {
    // How many cells a single hash of this family splits into.
    let probe_range = generate(tm, projection, ell, config.family, rng).range();
    let bits_per_hash = (probe_range as f64).log2();
    let max_hashes = ((total_bits as f64 / bits_per_hash).ceil() as usize + 1).max(1);
    let hashes: Vec<HashConstraint> = (0..max_hashes)
        .map(|_| generate(tm, projection, ell, config.family, rng))
        .collect();

    // Measure |Sol(F ∧ H[0..i])↓S| with the saturating counter.
    let measure = |ctx: &mut dyn Oracle,
                   tm: &mut TermManager,
                   constraints: &[HashConstraint],
                   stats: &mut CountStats|
     -> CountResult<CellCount> {
        if ctrl.interrupted() {
            return Ok(CellCount::Unknown);
        }
        let oracle_timer = Instant::now();
        ctx.push();
        for h in constraints {
            h.assert_into(ctx, tm);
        }
        let result = saturating_count_ctl(ctx, tm, projection, thresh, ctrl);
        ctx.pop();
        stats.oracle_seconds += oracle_timer.elapsed().as_secs_f64();
        stats.cells_explored += 1;
        ctrl.emit(ProgressEvent::Cell {
            round,
            cells_in_round: stats.cells_explored,
        });
        Ok(result?)
    };

    // Galloping (exponential + binary) search for the boundary index i such
    // that the cell under i hashes is small while the cell under i-1 hashes
    // is saturated.  C[0] is known to be saturated by the caller.
    let mut known_saturated = 0usize; // largest index known to be saturated
    let mut known_small: Option<(usize, u64)> = None; // smallest index known small
    let mut probe = 1usize;
    loop {
        if probe > max_hashes {
            break;
        }
        match measure(ctx, tm, &hashes[..probe], stats)? {
            CellCount::Saturated => {
                known_saturated = known_saturated.max(probe);
                probe = (probe * 2).min(max_hashes);
                if known_saturated == max_hashes {
                    break;
                }
            }
            CellCount::Exact(n) => {
                known_small = Some((probe, n));
                break;
            }
            CellCount::Unknown => return Ok(RoundOutcome::Timeout),
        }
    }
    let (mut hi, mut hi_count) = match known_small {
        Some(x) => x,
        None => return Ok(RoundOutcome::Failed), // even max_hashes leaves a big cell
    };
    let mut lo = known_saturated;
    // Binary search in (lo, hi) to tighten the boundary: invariant lo is
    // saturated, hi is small.
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        match measure(ctx, tm, &hashes[..mid], stats)? {
            CellCount::Saturated => lo = mid,
            CellCount::Exact(n) => {
                hi = mid;
                hi_count = n;
            }
            CellCount::Unknown => return Ok(RoundOutcome::Timeout),
        }
    }
    let boundary = hi;
    stats.final_hash_count = boundary as u32;

    // Algorithm 2 (FixLastHash): only meaningful for word-level families.
    let mut used: Vec<HashConstraint> = hashes[..boundary].to_vec();
    let mut cell = hi_count;
    if config.family != HashFamily::Xor {
        let mut current_ell = ell;
        while current_ell > 1 {
            current_ell /= 2;
            let refined = generate(tm, projection, current_ell, config.family, rng);
            let mut candidate: Vec<HashConstraint> = hashes[..boundary - 1].to_vec();
            candidate.push(refined.clone());
            match measure(ctx, tm, &candidate, stats)? {
                CellCount::Exact(n) => {
                    used = candidate;
                    cell = n;
                }
                CellCount::Saturated => break,
                CellCount::Unknown => return Ok(RoundOutcome::Timeout),
            }
        }
    }

    if cell == 0 {
        // An empty boundary cell carries no information; the round fails.
        return Ok(RoundOutcome::Failed);
    }
    // GetCount: cell size times the number of cells the used hashes create.
    let mut partitions = 1.0f64;
    for h in &used {
        partitions *= h.range() as f64;
    }
    Ok(RoundOutcome::Estimate(cell as f64 * partitions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::relative_error;
    use pact_ir::Sort;

    /// Builds `x < bound` over `width`-bit `x` (projected count = `bound`).
    fn interval_instance(tm: &mut TermManager, width: u32, bound: u128) -> (TermId, TermId) {
        let x = tm.mk_fresh_var("x", Sort::BitVec(width));
        let c = tm.mk_bv_const(bound, width);
        let f = tm.mk_bv_ult(x, c).unwrap();
        (x, f)
    }

    #[test]
    fn small_counts_are_exact() {
        let mut tm = TermManager::new();
        let (x, f) = interval_instance(&mut tm, 8, 50);
        let report = pact_count(&mut tm, &[f], &[x], &CounterConfig::fast()).unwrap();
        assert_eq!(report.outcome, CountOutcome::Exact(50));
        assert!(report.stats.oracle_calls > 0);
    }

    #[test]
    fn unsatisfiable_formulas_count_zero() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        let zero = tm.mk_bv_const(0, 6);
        let f = tm.mk_bv_ult(x, zero).unwrap();
        let report = pact_count(&mut tm, &[f], &[x], &CounterConfig::fast()).unwrap();
        assert_eq!(report.outcome, CountOutcome::Unsatisfiable);
    }

    #[test]
    fn xor_estimate_is_within_tolerance_on_a_known_count() {
        // 8-bit x with x >= 32: exactly 224 models, which saturates thresh=73
        // and exercises the hashing path.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let c = tm.mk_bv_const(32, 8);
        let f = tm.mk_bv_ule(c, x).unwrap();
        let config = CounterConfig {
            iterations_override: Some(9),
            seed: 5,
            ..CounterConfig::default()
        };
        let report = pact_count(&mut tm, &[f], &[x], &config).unwrap();
        match report.outcome {
            CountOutcome::Approximate { estimate, .. } => {
                let err = relative_error(224.0, estimate).unwrap();
                assert!(err <= 0.8, "estimate {estimate} has error {err}");
            }
            other => panic!("expected an approximate count, got {other:?}"),
        }
        assert!(report.stats.iterations >= 1);
    }

    #[test]
    fn word_level_families_also_count() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(7));
        let c = tm.mk_bv_const(100, 7);
        let f = tm.mk_bv_ult(x, c).unwrap(); // 100 models
        for family in [HashFamily::Prime, HashFamily::Shift] {
            let config = CounterConfig {
                iterations_override: Some(5),
                family,
                seed: 11,
                ..CounterConfig::default()
            };
            let report = pact_count(&mut tm, &[f], &[x], &config).unwrap();
            match report.outcome {
                CountOutcome::Approximate { estimate, .. } => {
                    let err = relative_error(100.0, estimate).unwrap();
                    assert!(
                        err <= 1.5,
                        "family {family}: estimate {estimate} has error {err}"
                    );
                }
                CountOutcome::Exact(n) => {
                    // FixLastHash can land on an exact count when the cell
                    // is small; accept it when correct.
                    assert_eq!(n, 100);
                }
                other => panic!("family {family}: unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn hybrid_instance_counts_only_extensible_projections() {
        // b (8-bit) arbitrary, r real with b-dependent constraint:
        //   r > 0 ∧ r < 1 ∧ (b < 200)   — continuous part always extensible,
        // so the projected count is 200 (saturates, hashing path).
        let mut tm = TermManager::new();
        let b = tm.mk_var("b", Sort::BitVec(8));
        let r = tm.mk_var("r", Sort::Real);
        let c = tm.mk_bv_const(200, 8);
        let f1 = tm.mk_bv_ult(b, c).unwrap();
        let zero = tm.mk_real_const(pact_ir::Rational::ZERO);
        let one = tm.mk_real_const(pact_ir::Rational::ONE);
        let f2 = tm.mk_real_lt(zero, r).unwrap();
        let f3 = tm.mk_real_lt(r, one).unwrap();
        let config = CounterConfig {
            iterations_override: Some(7),
            seed: 3,
            ..CounterConfig::default()
        };
        let report = pact_count(&mut tm, &[f1, f2, f3], &[b], &config).unwrap();
        match report.outcome {
            CountOutcome::Approximate { estimate, .. } => {
                let err = relative_error(200.0, estimate).unwrap();
                assert!(err <= 0.8, "estimate {estimate} has error {err}");
            }
            other => panic!("expected approximate count, got {other:?}"),
        }
    }

    #[test]
    fn empty_projection_is_rejected() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let c = tm.mk_bv_const(3, 4);
        let f = tm.mk_bv_ult(x, c).unwrap();
        assert_eq!(
            pact_count(&mut tm, &[f], &[], &CounterConfig::fast()),
            Err(CountError::EmptyProjection)
        );
        // The error path must leave the caller's term manager usable.
        let report = pact_count(&mut tm, &[f], &[x], &CounterConfig::fast()).unwrap();
        assert_eq!(report.outcome, CountOutcome::Exact(3));
    }

    #[test]
    fn zero_deadline_times_out_with_partial_stats() {
        let mut tm = TermManager::new();
        let (x, f) = interval_instance(&mut tm, 8, 200);
        let config = CounterConfig {
            deadline: Some(std::time::Duration::from_secs(0)),
            ..CounterConfig::fast()
        };
        let report = pact_count(&mut tm, &[f], &[x], &config).unwrap();
        assert_eq!(report.outcome, CountOutcome::Timeout);
        // The work done before the deadline is reported, not discarded: the
        // base cell was opened (and immediately abandoned), and the clock
        // was read.
        assert!(report.stats.cells_explored >= 1);
        assert!(report.stats.wall_seconds >= 0.0);
    }

    #[test]
    fn mid_run_deadline_keeps_partial_stats() {
        // A saturating instance with far more iterations than a short budget
        // allows: whether the deadline lands mid-cell or between rounds, the
        // partial work must show up in the stats.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(12));
        let c = tm.mk_bv_const(2048, 12);
        let f = tm.mk_bv_ule(c, x).unwrap(); // 2048 models: saturates
        let config = CounterConfig {
            deadline: Some(std::time::Duration::from_millis(40)),
            iterations_override: Some(500),
            seed: 1,
            ..CounterConfig::default()
        };
        let report = pact_count(&mut tm, &[f], &[x], &config).unwrap();
        assert!(report.stats.cells_explored >= 1);
        assert!(report.stats.oracle_calls >= 1);
        assert!(report.stats.wall_seconds > 0.0);
    }

    #[test]
    fn estimates_are_deterministic_for_a_seed() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let c = tm.mk_bv_const(16, 8);
        let f = tm.mk_bv_ule(c, x).unwrap(); // 240 models
        let config = CounterConfig {
            iterations_override: Some(3),
            seed: 42,
            ..CounterConfig::default()
        };
        let a = pact_count(&mut tm, &[f], &[x], &config).unwrap();
        let b = pact_count(&mut tm, &[f], &[x], &config).unwrap();
        assert_eq!(a.outcome, b.outcome);
    }

    #[test]
    fn thread_count_is_invisible_in_the_outcome() {
        // The scheduler's contract: same seed ⇒ identical outcome and
        // identical deterministic stats for every thread count.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let c = tm.mk_bv_const(16, 8);
        let f = tm.mk_bv_ule(c, x).unwrap(); // 240 models: saturates
        let reports: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                let config = CounterConfig {
                    iterations_override: Some(9),
                    seed: 42,
                    ..CounterConfig::default()
                }
                .with_threads(threads);
                pact_count(&mut tm, &[f], &[x], &config).unwrap()
            })
            .collect();
        for report in &reports[1..] {
            assert_eq!(report.outcome, reports[0].outcome);
            assert_eq!(report.stats.oracle_calls, reports[0].stats.oracle_calls);
            assert_eq!(report.stats.cells_explored, reports[0].stats.cells_explored);
            assert_eq!(report.stats.iterations, reports[0].stats.iterations);
            assert_eq!(
                report.stats.final_hash_count,
                reports[0].stats.final_hash_count
            );
        }
    }
}
