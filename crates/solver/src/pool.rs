//! A persistent, channel-fed worker-thread pool for the parallel oracles.
//!
//! The portfolio and cube backends used to spawn fresh scoped threads inside
//! *every* `Oracle::check`; on the microsecond-scale checks that dominate
//! the counting loop the spawn/join overhead can exceed the solve itself.
//! This module replaces that with a pool of OS threads created **once** at
//! oracle construction and fed `check`-scoped work items over channels.
//!
//! # The quiesce-before-return invariant
//!
//! `Oracle::check` hands the backend `&mut TermManager`, but the pool
//! threads are `'static` and cannot borrow it (the crate forbids `unsafe`).
//! The backends therefore *transfer ownership* for the duration of one
//! dispatch: the term manager (and the shared preprocess cache) is moved
//! into an [`Arc`], clones ride into the jobs, and
//! [`WorkerPool::dispatch`] blocks until **every** job of the batch has
//! reported back — at which point all clones are dead, `Arc::try_unwrap`
//! returns the manager to the caller, and no pool thread holds any
//! check-scoped state.  That rendezvous is the *logical quiesce*: the OS
//! threads stay parked on their channels between checks, but they own
//! nothing and touch nothing, which is why the pre-existing zero-leak
//! contracts (a [`LiveGuard`](crate::context::LiveGuard) probe reading 0
//! between checks) continue to hold verbatim.
//!
//! A panicking job never wedges the rendezvous: panics are caught on the
//! pool thread, counted as that job's report, and re-raised on the caller's
//! thread only after the whole batch has quiesced.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One unit of `check`-scoped work: owns everything it touches (worker
/// context, `Arc`ed term manager and cache, interrupt flags) and returns it
/// through the result.
pub(crate) type Job<R> = Box<dyn FnOnce() -> R + Send + 'static>;

/// What a pool thread reports back for one job.
enum JobReport<R> {
    Done(R),
    Panicked(Box<dyn std::any::Any + Send + 'static>),
}

/// Observable lifecycle counters of a `WorkerPool` (a crate-private type),
/// cheaply cloneable and valid after the pool (and its owning oracle) is
/// dropped.
///
/// This is the portable "zero per-check thread spawns" probe: the spawn
/// count must stay constant across any number of checks, and the live count
/// must drop to 0 once the owning oracle is dropped (the pool joins its
/// threads on drop).
#[derive(Debug, Clone, Default)]
pub struct PoolHandle {
    spawned: Arc<AtomicUsize>,
    live: Arc<AtomicUsize>,
}

impl PoolHandle {
    /// Total OS threads the pool has ever created.  Constant after
    /// construction: the pool never replaces or adds threads.
    pub fn threads_spawned(&self) -> usize {
        self.spawned.load(Ordering::SeqCst)
    }

    /// Pool threads currently running (parked on their channel or working a
    /// job).  Equals [`PoolHandle::threads_spawned`] while the pool is
    /// alive and 0 after it is dropped.
    pub fn live_threads(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }
}

/// Decrements the live-thread counter when a pool thread exits, however it
/// exits.
struct ThreadGuard(Arc<AtomicUsize>);

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A fixed-size pool of long-lived worker threads.
///
/// Created once per parallel oracle; each thread owns the receiving end of
/// its private job channel (std's mpsc has no multi-consumer receiver, so
/// work is addressed per thread — the backends do their own balancing, the
/// portfolio by one job per worker and the cube conquest by an atomic cube
/// queue inside the jobs).  Dropping the pool closes every job channel and
/// joins every thread, so no pool thread outlives its oracle.
pub(crate) struct WorkerPool<R: Send + 'static> {
    senders: Vec<Sender<Job<R>>>,
    report_rx: Receiver<JobReport<R>>,
    threads: Vec<JoinHandle<()>>,
    handle: PoolHandle,
    /// Batches served since construction (the `pool_reuses` feed): every
    /// call to [`WorkerPool::dispatch`] is one batch answered by the
    /// long-lived threads instead of a fresh spawn/join cycle.
    batches: u64,
}

impl<R: Send + 'static> WorkerPool<R> {
    /// Spawns `size` worker threads (named `{name}-{i}`) that park on their
    /// job channels until [`WorkerPool::dispatch`] feeds them.
    pub(crate) fn new(size: usize, name: &str) -> Self {
        let (report_tx, report_rx) = channel::<JobReport<R>>();
        let handle = PoolHandle::default();
        let mut senders = Vec::with_capacity(size);
        let mut threads = Vec::with_capacity(size);
        for i in 0..size {
            let (job_tx, job_rx) = channel::<Job<R>>();
            let report_tx = report_tx.clone();
            let live = Arc::clone(&handle.live);
            handle.spawned.fetch_add(1, Ordering::SeqCst);
            live.fetch_add(1, Ordering::SeqCst);
            let thread = std::thread::Builder::new()
                .name(format!("{name}-{i}"))
                .spawn(move || {
                    let _guard = ThreadGuard(live);
                    while let Ok(job) = job_rx.recv() {
                        let report = match catch_unwind(AssertUnwindSafe(job)) {
                            Ok(result) => JobReport::Done(result),
                            Err(panic) => JobReport::Panicked(panic),
                        };
                        if report_tx.send(report).is_err() {
                            // The pool is mid-drop; nobody is listening.
                            break;
                        }
                    }
                })
                .expect("spawning a pool worker thread");
            senders.push(job_tx);
            threads.push(thread);
        }
        // The senders cloned into the threads keep the report channel open
        // for the pool's whole lifetime; the construction-time original is
        // dropped here.
        drop(report_tx);
        WorkerPool {
            senders,
            report_rx,
            threads,
            handle,
            batches: 0,
        }
    }

    /// Lifecycle counters (see [`PoolHandle`]).
    pub(crate) fn handle(&self) -> PoolHandle {
        self.handle.clone()
    }

    /// Batches served by the pool since construction.
    pub(crate) fn batches(&self) -> u64 {
        self.batches
    }

    /// Runs one batch: job `i` goes to pool thread `i`, and the call blocks
    /// until **all** jobs have reported (the quiesce rendezvous — see the
    /// module docs).  If any job panicked, the first panic is re-raised
    /// here, after the whole batch has quiesced.  Results are returned in
    /// arrival order; jobs carry their own identity.
    ///
    /// # Panics
    ///
    /// Panics if `jobs.len()` exceeds the pool size, and re-raises job
    /// panics as described.
    pub(crate) fn dispatch(&mut self, jobs: Vec<Job<R>>) -> Vec<R> {
        assert!(
            jobs.len() <= self.senders.len(),
            "batch of {} jobs exceeds pool size {}",
            jobs.len(),
            self.senders.len()
        );
        self.batches += 1;
        let expected = jobs.len();
        for (sender, job) in self.senders.iter().zip(jobs) {
            sender
                .send(job)
                .expect("pool thread alive while pool exists");
        }
        let mut results = Vec::with_capacity(expected);
        let mut panic: Option<Box<dyn std::any::Any + Send + 'static>> = None;
        for _ in 0..expected {
            match self.report_rx.recv().expect("pool threads hold a sender") {
                JobReport::Done(result) => results.push(result),
                JobReport::Panicked(p) => {
                    if panic.is_none() {
                        panic = Some(p);
                    }
                }
            }
        }
        // The batch has fully quiesced: every job's captures (term-manager
        // and cache clones) are dropped.  Only now is re-raising safe.
        if let Some(panic) = panic {
            resume_unwind(panic);
        }
        results
    }
}

impl<R: Send + 'static> std::fmt::Debug for WorkerPool<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.senders.len())
            .field("batches", &self.batches)
            .finish()
    }
}

impl<R: Send + 'static> Drop for WorkerPool<R> {
    fn drop(&mut self) {
        // Closing the job channels makes every thread's `recv` fail, ending
        // its loop; joining guarantees no pool thread outlives the oracle.
        self.senders.clear();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_returns_every_result_and_counts_batches() {
        let mut pool: WorkerPool<usize> = WorkerPool::new(3, "test-pool");
        assert_eq!(pool.handle().threads_spawned(), 3);
        for round in 0..5u64 {
            let jobs: Vec<Job<usize>> = (0..3usize)
                .map(|i| Box::new(move || i * 10) as Job<usize>)
                .collect();
            let mut results = pool.dispatch(jobs);
            results.sort_unstable();
            assert_eq!(results, vec![0, 10, 20]);
            assert_eq!(pool.batches(), round + 1);
        }
        assert_eq!(pool.handle().threads_spawned(), 3);
    }

    #[test]
    fn thread_count_is_constant_and_drains_on_drop() {
        let pool: WorkerPool<()> = WorkerPool::new(2, "test-pool");
        let handle = pool.handle();
        assert_eq!(handle.threads_spawned(), 2);
        assert_eq!(handle.live_threads(), 2);
        drop(pool);
        assert_eq!(handle.threads_spawned(), 2);
        assert_eq!(handle.live_threads(), 0, "pool thread leaked past drop");
    }

    #[test]
    fn partial_batches_leave_idle_threads_parked() {
        let mut pool: WorkerPool<u32> = WorkerPool::new(4, "test-pool");
        let jobs: Vec<Job<u32>> = vec![Box::new(|| 7)];
        assert_eq!(pool.dispatch(jobs), vec![7]);
        assert_eq!(pool.handle().live_threads(), 4);
    }

    #[test]
    fn a_panicking_job_quiesces_the_batch_before_reraising() {
        let mut pool: WorkerPool<u32> = WorkerPool::new(2, "test-pool");
        let jobs: Vec<Job<u32>> = vec![Box::new(|| panic!("job panic")), Box::new(|| 1)];
        let caught = catch_unwind(AssertUnwindSafe(|| pool.dispatch(jobs)));
        assert!(caught.is_err());
        // The pool survived the panic and stays usable.
        let jobs: Vec<Job<u32>> = vec![Box::new(|| 2), Box::new(|| 3)];
        let mut results = pool.dispatch(jobs);
        results.sort_unstable();
        assert_eq!(results, vec![2, 3]);
        assert_eq!(pool.handle().threads_spawned(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds pool size")]
    fn oversized_batches_are_rejected() {
        let mut pool: WorkerPool<()> = WorkerPool::new(1, "test-pool");
        let jobs: Vec<Job<()>> = vec![Box::new(|| ()), Box::new(|| ())];
        pool.dispatch(jobs);
    }
}
