//! Model extraction shared by the oracle backends.
//!
//! [`Context`](crate::Context) and
//! [`IncrementalContext`](crate::IncrementalContext) both read models the
//! same way — discrete values from the SAT model, continuous values from the
//! simplex witness — so the logic lives here once and each backend supplies
//! its encoder and witness storage.

use pact_ir::{BvValue, Rational, Sort, TermId, TermManager, Value};

use crate::bitblast::Encoder;

/// Value of a variable in the most recent satisfying assignment.
///
/// Discrete variables come from the SAT model; real and float variables from
/// the simplex witness (floats are reported as their relaxed real value).
/// Returns `None` for unsupported sorts, for variables that were never
/// encoded, or if the last check was not satisfiable.
pub(crate) fn model_value(
    encoder: &Encoder,
    real_model_values: &[Rational],
    tm: &TermManager,
    var: TermId,
) -> Option<Value> {
    match tm.sort(var) {
        Sort::Bool => encoder
            .model_bits(tm, var)
            .map(|v| Value::Bool(v.as_u128() == 1)),
        Sort::BitVec(_) => encoder.model_bits(tm, var).map(Value::Bv),
        Sort::BoundedInt { .. } => encoder
            .model_bits(tm, var)
            .map(|v| Value::Int(v.as_u128() as i64)),
        Sort::Real | Sort::Float { .. } => {
            let lra = encoder.lra_var(var)?;
            let value = real_model_values
                .get(lra.index())
                .copied()
                .unwrap_or(Rational::ZERO);
            Some(Value::Real(value))
        }
        Sort::Array { .. } => None,
    }
}

/// The projected model: the value of each projection variable in the most
/// recent satisfying assignment, in the order given.
pub(crate) fn projected_model(
    encoder: &Encoder,
    tm: &TermManager,
    projection: &[TermId],
) -> Option<Vec<BvValue>> {
    projection
        .iter()
        .map(|&v| encoder.model_bits(tm, v))
        .collect()
}
