//! The lazy DPLL(T) loop shared by the oracle backends.
//!
//! Both [`Context`](crate::Context) and
//! [`IncrementalContext`](crate::IncrementalContext) decide satisfiability
//! the same way: solve the bit-blasted boolean abstraction, extract the
//! theory atoms the model commits to, check their conjunction against the
//! simplex core, and refine with a lemma until the verdicts agree.  The only
//! backend-specific input is the assumption set (empty for the rebuilding
//! context, the live activation literals for the incremental one).

use pact_ir::Rational;
use pact_lra::{LraResult, Simplex};
use pact_sat::{Lit, SatResult};

use crate::bitblast::{atom_value_in_model, Encoder};
use crate::context::{OracleStats, SolverResult};

/// Runs the DPLL(T) loop over an already-encoded formula.
///
/// The conflict budget is *cumulative across theory iterations*: one call
/// spends at most `max_conflicts` conflicts in total, however many SAT calls
/// the refinement loop needs.  (A budget of zero permits propagation-only
/// solving but no search.)  On a satisfiable verdict the simplex witness is
/// left in `real_model_values`.
pub(crate) fn solve_with_theory(
    encoder: &mut Encoder,
    assumptions: &[Lit],
    max_conflicts: Option<u64>,
    max_theory_iterations: usize,
    stats: &mut OracleStats,
    real_model_values: &mut Vec<Rational>,
) -> SolverResult {
    let start_conflicts = encoder.sat_stats().conflicts;
    if max_conflicts.is_none() {
        // Clear any budget a previous configuration left behind.
        encoder.sat().set_conflict_budget(None);
    }
    for iteration in 0..max_theory_iterations {
        if let Some(limit) = max_conflicts {
            let spent = encoder.sat_stats().conflicts - start_conflicts;
            let remaining = limit.saturating_sub(spent);
            if iteration > 0 && remaining == 0 {
                // The budget was consumed by earlier refinement iterations;
                // re-arming it per SAT call would multiply the limit by the
                // iteration count.
                return SolverResult::Unknown;
            }
            encoder.sat().set_conflict_budget(Some(remaining));
        }
        stats.sat_calls += 1;
        match encoder.sat().solve(assumptions) {
            SatResult::Unsat => return SolverResult::Unsat,
            SatResult::Unknown => return SolverResult::Unknown,
            SatResult::Sat => {}
        }
        // Collect the theory constraints implied by the boolean model.
        let model: Vec<bool> = encoder.sat().model().to_vec();
        let mut simplex = Simplex::new(encoder.num_lra_vars());
        let mut participating: Vec<Lit> = Vec::new();
        for atom in encoder.atoms() {
            match atom_value_in_model(&model, atom.lit) {
                Some(true) => {
                    simplex.add_constraint(atom.when_true.clone());
                    participating.push(atom.lit);
                }
                Some(false) => {
                    if let Some(neg) = &atom.when_false {
                        simplex.add_constraint(neg.clone());
                        participating.push(!atom.lit);
                    }
                }
                None => {}
            }
        }
        if participating.is_empty() {
            real_model_values.clear();
            return SolverResult::Sat;
        }
        stats.theory_checks += 1;
        match simplex.check() {
            LraResult::Sat => {
                *real_model_values = simplex.model();
                return SolverResult::Sat;
            }
            LraResult::Unsat => {
                // Refinement lemma: at least one participating atom flips.
                // The lemma is theory-valid, so it is added permanently even
                // under assumptions.
                stats.theory_lemmas += 1;
                let lemma: Vec<Lit> = participating.iter().map(|&l| !l).collect();
                if !encoder.sat().add_clause(&lemma) {
                    return SolverResult::Unsat;
                }
            }
        }
    }
    SolverResult::Unknown
}
