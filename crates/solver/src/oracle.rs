//! The [`Oracle`] trait: the abstract SMT backend of the counting engine.
//!
//! The paper treats the SMT solver as a black-box oracle answering projected
//! satisfiability queries; this trait is that black box as a Rust interface.
//! [`Context`] is the workspace's own DPLL(T) implementation of it, and the
//! counting crate (`pact`) is generic over the trait, so alternative backends
//! — portfolio oracles, incremental encoders that survive `pop`, an external
//! solver behind a pipe, instrumented test doubles — plug in without touching
//! the counting algorithms.
//!
//! The trait mirrors the SMT-LIB command subset the counters actually use:
//! an assertion stack (`push`/`pop`/`assert_term`), the native XOR fast path
//! for the `H_xor` hash family, projected model extraction, and cumulative
//! statistics.  Implementations must be [`Send`]: the round scheduler builds
//! one oracle per round and moves it into a worker thread.

use pact_ir::{BvValue, TermId, TermManager, Value};
use pact_sat::InterruptFlag;

use crate::context::{Context, OracleStats, SolverResult};
use crate::cube::CubeStats;
use crate::error::Result;
use crate::incremental::IncrementalContext;
use crate::policy::PolicyStats;
use crate::portfolio::PortfolioStats;

/// An incremental SMT oracle, as the counting algorithms see it.
///
/// Semantics follow the SMT-LIB assertion-stack model: assertions accumulate
/// in the current frame, `push` opens a frame, `pop` discards the most recent
/// frame, and `check` decides the conjunction of everything asserted.  After
/// a [`SolverResult::Sat`] verdict the model-extraction methods must report a
/// satisfying assignment until the next `check`, `pop`, or assertion.
///
/// # Implementing the trait
///
/// [`Context`] is the reference implementation.  Custom oracles typically
/// wrap it (delegating every method) to instrument, cache, or fan out
/// queries; a from-scratch implementation only needs to honour the stack
/// discipline above and the blocking-based enumeration pattern used by the
/// saturating counter (repeated `check` + `assert_term` of a blocking
/// clause within one frame).
pub trait Oracle: Send {
    /// Pushes a new assertion-stack frame.
    fn push(&mut self);

    /// Pops the most recent frame, discarding its assertions.
    ///
    /// # Panics
    ///
    /// An unbalanced `pop` — one without a matching `push` — is a caller
    /// bug, and the contract is that implementations **panic** on it rather
    /// than silently ignoring the call or corrupting their stack.  The
    /// panic message should mention the missing `push`.  This behaviour is
    /// uniform across backends ([`Context`], [`IncrementalContext`], and
    /// any wrapper that delegates to them) and is pinned by the parity test
    /// in `tests/session.rs`.
    fn pop(&mut self);

    /// Asserts a boolean term in the current frame.
    fn assert_term(&mut self, t: TermId);

    /// Asserts a native XOR constraint over individual bits of discrete
    /// variables: `⊕ bit ⊕ ... = rhs` (the `H_xor` fast path).
    ///
    /// Implementations without a native XOR engine may encode the constraint
    /// as an ordinary term.
    fn assert_xor_bits(&mut self, bits: Vec<(TermId, u32)>, rhs: bool);

    /// Declares a variable whose bits must exist in every encoding even if
    /// it never occurs in an assertion (projection variables).
    fn track_var(&mut self, var: TermId);

    /// Checks satisfiability of the current assertion stack.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SolverError`] when the formula falls outside the
    /// backend's supported fragment.
    fn check(&mut self, tm: &mut TermManager) -> Result<SolverResult>;

    /// Value of a variable in the most recent satisfying assignment, or
    /// `None` if the last check was not satisfiable (or the sort is
    /// unsupported).
    fn model_value(&self, tm: &TermManager, var: TermId) -> Option<Value>;

    /// The projected model: the value of each projection variable in the
    /// most recent satisfying assignment, in the order given.
    fn projected_model(&self, tm: &TermManager, projection: &[TermId]) -> Option<Vec<BvValue>>;

    /// Cumulative statistics over the oracle's lifetime.
    fn stats(&self) -> OracleStats;

    /// Installs a cooperative interrupt: raising the flag asks any in-flight
    /// (and every future) `check` to give up and answer
    /// [`SolverResult::Unknown`] at the next safe point.  This is how a
    /// cancellation token reaches *inside* a long solver call — including
    /// the racing workers of a portfolio oracle — instead of waiting at the
    /// next cell boundary.
    ///
    /// The default implementation ignores the flag (a conforming backend may
    /// be uninterruptible; cancellation then falls back to the engine's
    /// check-boundary polling).
    fn set_interrupt(&mut self, flag: InterruptFlag) {
        let _ = flag;
    }

    /// Winner/cancelled accounting, for backends that race several workers
    /// per `check`.  `None` (the default) for single-engine backends.
    fn portfolio(&self) -> Option<PortfolioStats> {
        None
    }

    /// Split/solved/refuted accounting, for backends that decompose a
    /// `check` into cubes.  `None` (the default) for every other backend.
    fn cube(&self) -> Option<CubeStats> {
        None
    }

    /// Routing accounting, for backends that adaptively re-route checks
    /// across several engines ([`crate::PolicyOracle`]).  `None` (the
    /// default) for every fixed-strategy backend.
    fn policy(&self) -> Option<PolicyStats> {
        None
    }
}

impl Oracle for Context {
    fn push(&mut self) {
        Context::push(self);
    }

    fn pop(&mut self) {
        Context::pop(self);
    }

    fn assert_term(&mut self, t: TermId) {
        Context::assert_term(self, t);
    }

    fn assert_xor_bits(&mut self, bits: Vec<(TermId, u32)>, rhs: bool) {
        Context::assert_xor_bits(self, bits, rhs);
    }

    fn track_var(&mut self, var: TermId) {
        Context::track_var(self, var);
    }

    fn check(&mut self, tm: &mut TermManager) -> Result<SolverResult> {
        Context::check(self, tm)
    }

    fn model_value(&self, tm: &TermManager, var: TermId) -> Option<Value> {
        Context::model_value(self, tm, var)
    }

    fn projected_model(&self, tm: &TermManager, projection: &[TermId]) -> Option<Vec<BvValue>> {
        Context::projected_model(self, tm, projection)
    }

    fn stats(&self) -> OracleStats {
        Context::stats(self)
    }

    fn set_interrupt(&mut self, flag: InterruptFlag) {
        Context::set_interrupt_flags(self, vec![flag]);
    }
}

impl Oracle for IncrementalContext {
    fn push(&mut self) {
        IncrementalContext::push(self);
    }

    fn pop(&mut self) {
        IncrementalContext::pop(self);
    }

    fn assert_term(&mut self, t: TermId) {
        IncrementalContext::assert_term(self, t);
    }

    fn assert_xor_bits(&mut self, bits: Vec<(TermId, u32)>, rhs: bool) {
        IncrementalContext::assert_xor_bits(self, bits, rhs);
    }

    fn track_var(&mut self, var: TermId) {
        IncrementalContext::track_var(self, var);
    }

    fn check(&mut self, tm: &mut TermManager) -> Result<SolverResult> {
        IncrementalContext::check(self, tm)
    }

    fn model_value(&self, tm: &TermManager, var: TermId) -> Option<Value> {
        IncrementalContext::model_value(self, tm, var)
    }

    fn projected_model(&self, tm: &TermManager, projection: &[TermId]) -> Option<Vec<BvValue>> {
        IncrementalContext::projected_model(self, tm, projection)
    }

    fn stats(&self) -> OracleStats {
        IncrementalContext::stats(self)
    }

    fn set_interrupt(&mut self, flag: InterruptFlag) {
        IncrementalContext::set_interrupt_flags(self, vec![flag]);
    }
}

impl<O: Oracle + ?Sized> Oracle for Box<O> {
    fn push(&mut self) {
        (**self).push();
    }

    fn pop(&mut self) {
        (**self).pop();
    }

    fn assert_term(&mut self, t: TermId) {
        (**self).assert_term(t);
    }

    fn assert_xor_bits(&mut self, bits: Vec<(TermId, u32)>, rhs: bool) {
        (**self).assert_xor_bits(bits, rhs);
    }

    fn track_var(&mut self, var: TermId) {
        (**self).track_var(var);
    }

    fn check(&mut self, tm: &mut TermManager) -> Result<SolverResult> {
        (**self).check(tm)
    }

    fn model_value(&self, tm: &TermManager, var: TermId) -> Option<Value> {
        (**self).model_value(tm, var)
    }

    fn projected_model(&self, tm: &TermManager, projection: &[TermId]) -> Option<Vec<BvValue>> {
        (**self).projected_model(tm, projection)
    }

    fn stats(&self) -> OracleStats {
        (**self).stats()
    }

    fn set_interrupt(&mut self, flag: InterruptFlag) {
        (**self).set_interrupt(flag);
    }

    fn portfolio(&self) -> Option<PortfolioStats> {
        (**self).portfolio()
    }

    fn cube(&self) -> Option<CubeStats> {
        (**self).cube()
    }

    fn policy(&self) -> Option<PolicyStats> {
        (**self).policy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_ir::Sort;

    /// Drives the reference implementation purely through the trait object
    /// surface, proving object safety and the stack discipline.
    #[test]
    fn context_works_behind_a_trait_object() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let three = tm.mk_bv_const(3, 4);
        let f = tm.mk_bv_ult(x, three).unwrap();
        let mut oracle: Box<dyn Oracle> = Box::new(Context::new());
        oracle.track_var(x);
        oracle.assert_term(f);
        assert_eq!(oracle.check(&mut tm).unwrap(), SolverResult::Sat);
        let model = oracle.projected_model(&tm, &[x]).unwrap();
        assert!(model[0].as_u128() < 3);

        oracle.push();
        let zero = tm.mk_bv_const(0, 4);
        let g = tm.mk_bv_ult(x, zero).unwrap();
        oracle.assert_term(g);
        assert_eq!(oracle.check(&mut tm).unwrap(), SolverResult::Unsat);
        oracle.pop();
        assert_eq!(oracle.check(&mut tm).unwrap(), SolverResult::Sat);
        assert!(oracle.stats().checks >= 3);
    }

    #[test]
    fn xor_assertions_work_through_the_trait() {
        // Both backends must behave identically through the trait surface.
        let backends: Vec<Box<dyn Oracle>> = vec![
            Box::new(Context::new()),
            Box::new(IncrementalContext::new()),
        ];
        for mut oracle in backends {
            let mut tm = TermManager::new();
            let x = tm.mk_var("x", Sort::BitVec(2));
            oracle.track_var(x);
            oracle.assert_xor_bits(vec![(x, 0), (x, 1)], true);
            // Odd parity over 2 bits: {01, 10}.
            let mut found = 0;
            while oracle.check(&mut tm).unwrap() == SolverResult::Sat {
                let v = oracle.model_value(&tm, x).unwrap().as_bv().unwrap();
                assert_eq!(v.as_u128().count_ones(), 1);
                found += 1;
                assert!(found <= 2);
                let c = tm.mk_bv_value(v);
                let eq = tm.mk_eq(x, c);
                let block = tm.mk_not(eq);
                oracle.assert_term(block);
            }
            assert_eq!(found, 2);
        }
    }

    #[test]
    fn incremental_context_works_behind_a_trait_object() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let three = tm.mk_bv_const(3, 4);
        let f = tm.mk_bv_ult(x, three).unwrap();
        let mut oracle: Box<dyn Oracle> = Box::new(IncrementalContext::new());
        oracle.track_var(x);
        oracle.assert_term(f);
        assert_eq!(oracle.check(&mut tm).unwrap(), SolverResult::Sat);
        oracle.push();
        let zero = tm.mk_bv_const(0, 4);
        let g = tm.mk_bv_ult(x, zero).unwrap();
        oracle.assert_term(g);
        assert_eq!(oracle.check(&mut tm).unwrap(), SolverResult::Unsat);
        oracle.pop();
        assert_eq!(oracle.check(&mut tm).unwrap(), SolverResult::Sat);
        assert_eq!(oracle.stats().rebuilds, 0);
    }
}
