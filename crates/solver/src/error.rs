//! Error type of the SMT oracle.

use std::fmt;

/// Errors reported by the SMT oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// The formula uses a construct outside the supported fragment
    /// (e.g. non-linear real multiplication or equality between arrays).
    Unsupported(String),
    /// An internal invariant was violated; indicates a bug.
    Internal(String),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
            SolverError::Internal(what) => write!(f, "internal solver error: {what}"),
        }
    }
}

impl std::error::Error for SolverError {}

/// Result alias for oracle operations.
pub type Result<T> = std::result::Result<T, SolverError>;
