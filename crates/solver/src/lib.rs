//! The SMT oracle for the `pact` approximate model counter.
//!
//! This crate stands in for the CVC5 solver the paper builds on: it answers
//! incremental satisfiability queries over hybrid SMT formulas (bit-vectors,
//! booleans, bounded integers, linear real arithmetic, relaxed floating
//! point, arrays and uninterpreted functions) and produces models projected
//! onto discrete variables.
//!
//! Architecture (see `DESIGN.md` for the paper-to-repo mapping):
//!
//! * [`preprocess`] removes arrays and uninterpreted functions by
//!   read-over-write rewriting and Ackermannization.
//! * [`Encoder`](bitblast::Encoder) bit-blasts the discrete structure into
//!   the `pact-sat` CDCL solver (with native XOR rows for hash constraints)
//!   and abstracts real/float atoms into boolean literals.
//! * [`Context`] runs the lazy DPLL(T) loop against the `pact-lra` simplex
//!   core and exposes an SMT-LIB-style assert / push / pop / check / model
//!   interface.
//! * [`IncrementalContext`] is the activation-literal backend: the same
//!   interface, but `pop` retires frames under assumption literals instead
//!   of rebuilding the encoder, so learnt clauses and branching activities
//!   survive the counting loop's push/pop cycles (`rebuilds` stays 0).
//! * [`PortfolioContext`] races N diversified workers (rebuild- and
//!   incremental-style engines with distinct polarity, restart and
//!   branching-noise settings) inside every `check`, keeps the first
//!   SAT/UNSAT answer and cancels the losers via [`InterruptFlag`].
//! * [`CubeContext`] is the cube-and-conquer backend: instead of racing
//!   whole solves it *partitions* one hard `check` — a lookahead pass picks
//!   split bits, up to `2^d` cubes are generated (with probe-based
//!   pruning), and the survivors are conquered in parallel; a SAT cube
//!   short-circuits, all-UNSAT over the validated partition means UNSAT.
//! * [`PolicyOracle`] is the adaptive meta-backend: it journals the
//!   assertion stack, wraps the four concrete backends, and re-routes each
//!   `check` from a sliding window of deterministic observations (conflict
//!   trends, split/refutation rates) — escalating to cube or portfolio on
//!   hard streaks and decaying back when checks turn easy again.
//! * [`Oracle`] abstracts that interface into a trait, so the counting
//!   engine (and its tests) can swap in alternative or instrumented
//!   backends; `Context` is the reference implementation.
//!
//! # Example
//!
//! ```
//! use pact_ir::{TermManager, Sort, Rational};
//! use pact_solver::{Context, SolverResult};
//!
//! // A hybrid constraint: b < 8 (bit-vector) and 0 < r < 1 (real).
//! let mut tm = TermManager::new();
//! let b = tm.mk_var("b", Sort::BitVec(4));
//! let r = tm.mk_var("r", Sort::Real);
//! let eight = tm.mk_bv_const(8, 4);
//! let zero = tm.mk_real_const(Rational::ZERO);
//! let one = tm.mk_real_const(Rational::ONE);
//! let f1 = tm.mk_bv_ult(b, eight).unwrap();
//! let f2 = tm.mk_real_lt(zero, r).unwrap();
//! let f3 = tm.mk_real_lt(r, one).unwrap();
//!
//! let mut ctx = Context::new();
//! ctx.assert_term(f1);
//! ctx.assert_term(f2);
//! ctx.assert_term(f3);
//! assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitblast;
mod context;
mod cube;
mod dpllt;
mod error;
mod incremental;
mod model;
mod oracle;
mod policy;
mod pool;
mod portfolio;
pub mod preprocess;

pub use context::{Context, OracleStats, SolverConfig, SolverResult};
pub use cube::{
    cubes_partition, resolve_cube_verdicts, CubeBit, CubeContext, CubeStats, MAX_CUBE_DEPTH,
    MAX_CUBE_WORKERS, PROBE_CONFLICTS,
};
pub use error::{Result, SolverError};
pub use incremental::IncrementalContext;
pub use oracle::Oracle;
pub use pact_sat::{InterruptFlag, SatOptions};
pub use policy::{
    PolicyOracle, PolicyStats, POLICY_BACKENDS, POLICY_WINDOW, SLOT_CUBE, SLOT_INCREMENTAL,
    SLOT_PORTFOLIO, SLOT_REBUILD,
};
pub use pool::PoolHandle;
pub use portfolio::{
    PortfolioContext, PortfolioStats, WorkerProfile, WorkerReport, MAX_PORTFOLIO_WORKERS,
    WORKER_PROFILES,
};

// Send audit: the counting engine builds one `Context` per scheduled round
// and moves it into a worker thread.  The context owns its assertion stack,
// encoder and witness storage outright (no shared-ownership types; `unsafe`
// is forbidden crate-wide), so `Send` holds structurally; this assertion
// pins that property at the crate boundary.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Context>();
    assert_send::<IncrementalContext>();
    assert_send::<PortfolioContext>();
    assert_send::<CubeContext>();
    assert_send::<PolicyOracle>();
    assert_send::<bitblast::Encoder>();
    assert_send::<SolverError>();
    // `Oracle: Send` is a supertrait bound, so boxed trait objects cross the
    // scheduler's thread boundary too.
    assert_send::<Box<dyn Oracle>>();
};
