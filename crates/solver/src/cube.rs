//! `CubeContext`: a cube-and-conquer oracle that splits one hard `check`
//! into many small independent sub-solves.
//!
//! The portfolio backend attacks a hard cell by racing N complete solves of
//! the *same* instance — N× the work for the per-check minimum over its
//! members.  This backend instead *partitions* the work, the classic
//! cube-and-conquer structure: a lookahead pass scores candidate split bits
//! ([`pact_sat::Solver::lookahead_candidates`] over the scout encoder's
//! current activities and occurrences), the check space is divided into up
//! to `2^d` *cubes* — conjunctions of single-bit constraints over projection
//! variables — and the cubes are conquered independently.  A satisfiable
//! cube short-circuits the whole check (siblings are cancelled through an
//! [`InterruptFlag`]); all cubes unsatisfiable means the check is
//! unsatisfiable, which is only sound because the cube set provably
//! partitions the assignment space — [`cubes_partition`] validates exactly
//! that, per check, and the property is pinned by a proptest contract suite
//! (`tests/cube.rs`) rather than assumed.
//!
//! # Lookahead and the dynamic cutoff
//!
//! Splitting is driven by a *scout*: an in-process incremental oracle that
//! mirrors the assertion stack.  Before conquering, every candidate cube is
//! probed on the scout under a small conflict budget ([`PROBE_CONFLICTS`]).
//! A probe that answers UNSAT refutes the cube outright (no conquest needed
//! — counted in [`CubeStats::refuted_by_lookahead`]); a probe that answers
//! SAT ends the whole check immediately (the scout holds the model); only
//! cubes the probe cannot resolve are split further, up to the configured
//! depth.  This is the dynamic cutoff: easy regions of the space never
//! reach the full `2^d` fan-out.
//!
//! # Conquest over a shared term manager
//!
//! Surviving cubes are conquered by long-lived incremental workers on a
//! persistent worker pool, exactly the sharing discipline the portfolio
//! introduced: preprocessing is warmed up front on the caller's
//! `&mut TermManager` (the only mutation of a check), the manager then
//! moves behind an `Arc` for the duration of one dispatch, and the workers
//! run [`check_shared`](crate::IncrementalContext) against a plain
//! `&TermManager` plus the shared [`PreprocessCache`].  Workers pull cubes
//! from a shared queue; each conquest is `push` / assert cube bits /
//! `check` / `pop` on an activation-literal backend, so learnt clauses
//! survive across cubes and checks.  The first SAT finisher raises the
//! check's interrupt flag; the session's [`CancellationToken`] flag (wired
//! through [`Oracle::set_interrupt`]) is watched by the scout and by every
//! worker, so cancellation aborts in-flight cube solves, and the dispatch
//! rendezvous (every job reports back before `check` returns) guarantees no
//! worker holds check-scoped state past its `check`.
//!
//! # Determinism
//!
//! The *verdict* is deterministic: cubes partition the space, every solve
//! is complete under the default (unbudgeted) configuration, so the check
//! is SAT iff some cube is SAT and UNSAT iff every cube is UNSAT — the same
//! answer the single-engine backends give.  *Which* cube witnesses a SAT
//! verdict (and therefore the reported model) depends on OS timing, as does
//! the share of cubes conquered before cancellation — so
//! [`CubeStats::cubes_solved`] varies run to run while
//! [`CubeStats::splits`] and [`CubeStats::refuted_by_lookahead`] (scout
//! work, single-threaded) are reproducible.  The deterministic
//! `CountReport` slice is model-order-independent; `tests/differential.rs`
//! pins it bit-identical across all four backends.
//!
//! [`CancellationToken`]: crate::InterruptFlag

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use pact_ir::{BvValue, TermId, TermManager, Value};
use pact_sat::InterruptFlag;

use crate::context::{
    warm_preprocess_cache, LiveGuard, OracleStats, PreprocessCache, SolverConfig, SolverResult,
};
use crate::error::Result;
use crate::incremental::IncrementalContext;
use crate::oracle::Oracle;
use crate::pool::{Job, PoolHandle, WorkerPool};

/// What one conquest job returns through the pool: the worker's slot, the
/// worker context itself (ownership round-trips through the pool thread) and
/// the outcomes of every cube it pulled from the shared queue.
type ConquerReturn = (usize, IncrementalContext, Vec<CubeOutcome>);

/// Hard cap on the split depth (`2^6 = 64` cubes per check).
pub const MAX_CUBE_DEPTH: usize = 6;

/// Hard cap on the number of conquering worker oracles.
pub const MAX_CUBE_WORKERS: usize = 8;

/// Conflict budget of one scout probe (the lookahead's "does this cube
/// solve cheaply?" question).  Deliberately small: a probe is a filter, not
/// a solve.
pub const PROBE_CONFLICTS: u64 = 100;

/// One literal of a cube: bit `bit` of discrete variable `var` is forced to
/// `value`.  A cube is a conjunction of these; the engine asserts each as a
/// single-bit native XOR row (`bit ⊕ ∅ = value`).
pub type CubeBit = (TermId, u32, bool);

/// Cube accounting of a [`CubeContext`], merged into `CountStats` by the
/// counting engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CubeStats {
    /// Checks that generated a cube split (at least one candidate bit was
    /// available; the remainder fell back to a plain solve).
    pub splits: u64,
    /// Cubes decisively answered anywhere — refuted or satisfied by a scout
    /// probe, or conquered to SAT/UNSAT by a worker.  Conquest finishes are
    /// timing-dependent (a sibling cancelled after a SAT short-circuit is
    /// not "solved"), so this field varies run to run like the portfolio's
    /// win counts.
    pub cubes_solved: u64,
    /// Cubes the lookahead probe refuted under [`PROBE_CONFLICTS`]
    /// conflicts, sparing the conquest phase entirely.  Scout-side and
    /// single-threaded, hence deterministic for a fixed seed.
    pub refuted_by_lookahead: u64,
    /// Probes answered from the probe-outcome cache instead of re-running
    /// the scout solve: within a frame the galloping search's repeated
    /// checks (enumerate, block, re-check) regenerate previously refuted
    /// cubes, and UNSAT is monotone under the added blocking assertions, so
    /// the cached refutation stands.  The cache is dropped wholesale on
    /// `pop` (retracting assertions can revive a cube).  Scout-side and
    /// deterministic; cached refutations still count toward
    /// [`CubeStats::refuted_by_lookahead`], so verdicts are unchanged.
    pub probe_cache_hits: u64,
}

/// Validates that a cube set partitions the assignment space over its split
/// bits: pairwise disjoint and exhaustive.
///
/// Two cubes are disjoint iff they disagree on some shared `(var, bit)`
/// key.  Exhaustiveness is measure-based: over the universe of all distinct
/// keys `D` appearing in the set, a cube of `k` (non-contradictory,
/// non-duplicate) literals covers `2^(|D|−k)` assignments, and the set is
/// exhaustive iff the covered measures sum to `2^|D|` — together with
/// pairwise disjointness that makes the set a partition.  An empty set
/// partitions nothing and returns `false`; a single empty cube is the
/// trivial partition and returns `true`.
///
/// The conquering oracle asserts this for every generated split (the
/// all-UNSAT ⇒ UNSAT step is only sound on a partition); the proptest
/// contract suite in `tests/cube.rs` exercises it adversarially.
pub fn cubes_partition(cubes: &[Vec<CubeBit>]) -> bool {
    if cubes.is_empty() {
        return false;
    }
    // Collect the key universe and reject internally inconsistent cubes
    // (duplicate or contradictory literals break the measure argument).
    let mut keys: Vec<(TermId, u32)> = Vec::new();
    for cube in cubes {
        let mut seen: Vec<(TermId, u32)> = Vec::new();
        for &(var, bit, _) in cube {
            if seen.contains(&(var, bit)) {
                return false;
            }
            seen.push((var, bit));
            if !keys.contains(&(var, bit)) {
                keys.push((var, bit));
            }
        }
    }
    if keys.len() > 63 {
        return false; // measure would overflow; far beyond MAX_CUBE_DEPTH
    }
    // Pairwise disjoint: some shared key carries opposite values.
    for (i, a) in cubes.iter().enumerate() {
        for b in cubes.iter().skip(i + 1) {
            let disjoint = a
                .iter()
                .any(|&(var, bit, value)| b.contains(&(var, bit, !value)));
            if !disjoint {
                return false;
            }
        }
    }
    // Exhaustive: covered measures sum to the whole space.
    let space = 1u64 << keys.len();
    let covered: u64 = cubes
        .iter()
        .map(|cube| 1u64 << (keys.len() - cube.len()))
        .sum();
    covered == space
}

/// Resolves per-cube decisive verdicts into the check's verdict: SAT if any
/// cube is SAT, UNSAT only if *every* cube of a full partition is UNSAT,
/// Unknown otherwise (a budget ran out or a solve was cancelled).  `total`
/// is the number of cubes in the partition; verdict order is irrelevant by
/// construction, which the contract suite pins by permutation.
pub fn resolve_cube_verdicts(verdicts: &[SolverResult], total: usize) -> SolverResult {
    if verdicts.contains(&SolverResult::Sat) {
        return SolverResult::Sat;
    }
    let refuted = verdicts
        .iter()
        .filter(|&&v| v == SolverResult::Unsat)
        .count();
    if refuted == total {
        SolverResult::Unsat
    } else {
        SolverResult::Unknown
    }
}

/// Where the model of the last SAT verdict lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Winner {
    /// A scout probe answered SAT during cube generation.
    Scout,
    /// This conquering worker answered SAT (its cube frame is still pushed
    /// so the model survives until the next mutating call).
    Worker(usize),
}

/// What one conquest recorded for one cube.
#[derive(Debug)]
struct CubeOutcome {
    cube: usize,
    worker: usize,
    result: Result<SolverResult>,
}

/// The cube-and-conquer oracle (see the module docs for the architecture).
///
/// All assertion-stack operations fan out to the scout and every worker;
/// `check` runs the lookahead on the scout, probes candidate cubes, and
/// conquers the survivors on the persistent pool (the dispatch rendezvous
/// completes before `check` returns, so cancellation can cut a conquest
/// short but never leak check-scoped state).
#[derive(Debug)]
pub struct CubeContext {
    /// Split depth: up to `2^depth` cubes per check.
    depth: usize,
    /// Resource limits for full solves (probes use a tightened copy).
    config: SolverConfig,
    /// The lookahead oracle; also the fallback engine when no split bit is
    /// available and the model source for probe-SAT short circuits.
    scout: IncrementalContext,
    /// The conquering oracles, each mirroring the assertion stack.
    workers: Vec<IncrementalContext>,
    /// The persistent conquest threads, created once per oracle.
    pool: WorkerPool<ConquerReturn>,
    /// Cube-level `check` count (one per trait-level query).
    checks: u64,
    /// Live frames (the assertion-stack depth).
    stack_depth: usize,
    /// Projection/tracked variables — the split-bit candidates.
    tracked: Vec<TermId>,
    /// Raw assertions awaiting preprocessing for the workers' shared cache,
    /// tagged with the frame depth they were asserted at.
    to_warm: Vec<(usize, TermId)>,
    /// Shared with in-flight jobs during a dispatch; uniquely held (and
    /// therefore warmable) between checks thanks to the quiesce rendezvous.
    cache: Arc<PreprocessCache>,
    /// Warm-cache hits observed while preprocessing `to_warm` (hash-consed
    /// re-assertions resolve to already-cached term ids); surfaced through
    /// [`OracleStats::preprocess_cache_hits`].
    warm_hits: u64,
    /// Cubes refuted by a probe since the last `pop`: the probe-outcome
    /// cache.  Only UNSAT outcomes are cached (sound because assertions
    /// within a frame only accumulate); cleared wholesale on `pop`.
    probe_unsat: HashSet<Vec<CubeBit>>,
    /// Raised by the first SAT conquest of a check; lowered per check.
    race: InterruptFlag,
    /// External cancellation (the session's token), watched by the scout
    /// and every worker's SAT solver.
    external: Option<InterruptFlag>,
    stats: CubeStats,
    winner: Option<Winner>,
    /// Workers still holding a pushed cube frame (the SAT finishers of the
    /// last check); settled before the next mutating call.
    dangling: Vec<usize>,
    /// Optional live-worker-thread probe for leak tests and service metrics.
    probe: Option<Arc<AtomicUsize>>,
}

impl CubeContext {
    /// A cube-and-conquer oracle splitting to `depth` (clamped to
    /// `1..=`[`MAX_CUBE_DEPTH`]) and conquering on `workers` oracles
    /// (clamped to `1..=`[`MAX_CUBE_WORKERS`]), with default resource
    /// limits.
    pub fn new(depth: usize, workers: usize) -> Self {
        CubeContext::with_config(depth, workers, SolverConfig::default())
    }

    /// As [`CubeContext::new`] with explicit resource limits (probes use a
    /// copy tightened to [`PROBE_CONFLICTS`]).
    pub fn with_config(depth: usize, workers: usize, config: SolverConfig) -> Self {
        let depth = depth.clamp(1, MAX_CUBE_DEPTH);
        let workers = workers.clamp(1, MAX_CUBE_WORKERS);
        let mut ctx = CubeContext {
            depth,
            config,
            scout: IncrementalContext::with_config(config),
            workers: (0..workers)
                .map(|_| IncrementalContext::with_config(config))
                .collect(),
            pool: WorkerPool::new(workers, "pact-cube"),
            checks: 0,
            stack_depth: 0,
            tracked: Vec::new(),
            to_warm: Vec::new(),
            cache: Arc::new(PreprocessCache::new()),
            warm_hits: 0,
            probe_unsat: HashSet::new(),
            race: InterruptFlag::new(),
            external: None,
            stats: CubeStats::default(),
            winner: None,
            dangling: Vec::new(),
            probe: None,
        };
        // The race flag must reach the workers' SAT solvers from the start:
        // first-SAT sibling cancellation may not depend on the caller ever
        // wiring an external interrupt through `set_interrupt`.
        ctx.install_flags();
        ctx
    }

    /// The configured split depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of conquering workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Re-aims the splitter at a new depth (clamped to
    /// `1..=`[`MAX_CUBE_DEPTH`]), taking effect at the next `check`.  The
    /// adaptive policy uses this to deepen splits on hard streaks without
    /// rebuilding the context.
    pub fn set_depth(&mut self, depth: usize) {
        self.depth = depth.clamp(1, MAX_CUBE_DEPTH);
    }

    /// Cube accounting (the `CountStats` feed).
    pub fn cube_stats(&self) -> CubeStats {
        self.stats
    }

    /// Installs a shared counter tracking how many conquest *jobs* are in
    /// flight at any instant (incremented on entry, decremented on exit —
    /// panic included).  Every conquest's dispatch rendezvous completes
    /// before `check` returns, so the probe reads 0 whenever no check is in
    /// flight; the cancellation leak test in `tests/cube.rs` pins exactly
    /// that.  The pool's OS threads persist between checks — their
    /// lifecycle is observable through [`CubeContext::pool_handle`].
    pub fn set_worker_probe(&mut self, probe: Arc<AtomicUsize>) {
        self.probe = Some(probe);
    }

    /// Lifecycle counters of the persistent worker pool: total OS threads
    /// ever spawned (constant after construction — the zero-per-check-spawn
    /// contract) and threads currently live (0 after the oracle is
    /// dropped).
    pub fn pool_handle(&self) -> PoolHandle {
        self.pool.handle()
    }

    /// Pops any cube frame a SAT finisher left pushed (the model's keeper)
    /// and forgets the winner; every mutating trait call starts here.
    fn settle(&mut self) {
        self.winner = None;
        for slot in std::mem::take(&mut self.dangling) {
            self.workers[slot].pop();
        }
    }

    fn install_flags(&mut self) {
        let mut worker_flags = vec![self.race.clone()];
        let mut scout_flags = Vec::new();
        if let Some(external) = &self.external {
            worker_flags.push(external.clone());
            scout_flags.push(external.clone());
        }
        self.scout.set_interrupt_flags(scout_flags);
        for worker in &mut self.workers {
            worker.set_interrupt_flags(worker_flags.clone());
        }
    }

    /// The lookahead pass: brings the scout's encoding up to date, ranks
    /// its SAT variables, and keeps the top `depth` that are bits of
    /// tracked (projection) variables — those are meaningful in every
    /// worker's encoding and partition the projected space.
    fn split_bits(&mut self, tm: &TermManager) -> Result<Vec<(TermId, u32)>> {
        self.scout.prepare_shared(tm, &self.cache)?;
        let mut bit_of_var: HashMap<pact_sat::Var, (TermId, u32)> = HashMap::new();
        for &v in &self.tracked {
            if let Some(bits) = self.scout.encoder().var_bits(tm, v) {
                for (i, lit) in bits.iter().enumerate() {
                    bit_of_var.insert(lit.var(), (v, i as u32));
                }
            }
        }
        let candidates: Vec<pact_sat::Var> = bit_of_var.keys().copied().collect();
        let ranked = self
            .scout
            .encoder_mut()
            .sat()
            .lookahead_candidates_among(&candidates, self.depth);
        Ok(ranked.into_iter().map(|v| bit_of_var[&v]).collect())
    }

    /// Probes one cube on the scout under a small conflict budget.
    ///
    /// Refutations are memoised in the probe-outcome cache: the galloping
    /// search re-derives the same cube prefixes on every repeated check
    /// within a frame, and a cube refuted under the current assertion set
    /// stays refuted once more assertions pile on, so the cached UNSAT can
    /// be replayed without touching the scout.
    fn probe_cube(&mut self, tm: &mut TermManager, cube: &[CubeBit]) -> Result<SolverResult> {
        if self.probe_unsat.contains(cube) {
            self.stats.probe_cache_hits += 1;
            return Ok(SolverResult::Unsat);
        }
        let budget = self
            .config
            .max_conflicts
            .map_or(PROBE_CONFLICTS, |limit| limit.min(PROBE_CONFLICTS));
        self.scout.set_config(SolverConfig {
            max_conflicts: Some(budget),
            ..self.config
        });
        self.scout.push();
        for &(var, bit, value) in cube {
            self.scout.assert_xor_bits(vec![(var, bit)], value);
        }
        let result = self.scout.check(tm);
        self.scout.pop();
        self.scout.set_config(self.config);
        if matches!(result, Ok(SolverResult::Unsat)) {
            self.probe_unsat.insert(cube.to_vec());
        }
        result
    }

    /// Generates the cube tree over `bits` with probe-based pruning.
    /// Returns `Ok(Err(Sat))`-style short circuits as `Generated::Sat`.
    fn generate_cubes(
        &mut self,
        tm: &mut TermManager,
        bits: &[(TermId, u32)],
    ) -> Result<Generated> {
        let mut frontier: Vec<Vec<CubeBit>> = vec![Vec::new()];
        let mut refuted: Vec<Vec<CubeBit>> = Vec::new();
        for &(var, bit) in bits {
            let mut next = Vec::new();
            for cube in std::mem::take(&mut frontier) {
                for value in [false, true] {
                    let mut candidate = cube.clone();
                    candidate.push((var, bit, value));
                    match self.probe_cube(tm, &candidate)? {
                        SolverResult::Sat => {
                            // Dynamic cutoff, the happy side: the probe
                            // found a model; the whole check is answered
                            // and the scout holds the witness.
                            self.stats.cubes_solved += 1;
                            return Ok(Generated::Sat);
                        }
                        SolverResult::Unsat => {
                            self.stats.cubes_solved += 1;
                            self.stats.refuted_by_lookahead += 1;
                            refuted.push(candidate);
                        }
                        SolverResult::Unknown => next.push(candidate),
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        // The all-UNSAT ⇒ UNSAT step below (and in the conquest) is only
        // sound over a partition; validate rather than assume it.
        let mut all = refuted;
        all.extend(frontier.iter().cloned());
        assert!(
            cubes_partition(&all),
            "generated cube set does not partition the split space"
        );
        Ok(Generated::Frontier(frontier))
    }

    /// Conquers the surviving cubes on the persistent worker pool and
    /// resolves the check's verdict (and winner).
    fn conquer(
        &mut self,
        tm: &mut TermManager,
        frontier: Vec<Vec<CubeBit>>,
    ) -> Result<SolverResult> {
        let threads = self.workers.len().min(frontier.len());
        let total = frontier.len();
        // Ownership transfer into the pool: the term manager and the cube
        // queue move behind `Arc`s for the duration of the dispatch, and
        // the first `threads` workers ride into the jobs and back out
        // through the results.
        let shared_tm = Arc::new(std::mem::replace(tm, TermManager::new()));
        let cubes = Arc::new(frontier);
        let next = Arc::new(AtomicUsize::new(0));
        let tail = self.workers.split_off(threads);
        let moved = std::mem::take(&mut self.workers);
        let jobs: Vec<Job<ConquerReturn>> = moved
            .into_iter()
            .enumerate()
            .map(|(slot, mut worker)| {
                let tm = Arc::clone(&shared_tm);
                let cache = Arc::clone(&self.cache);
                let cubes = Arc::clone(&cubes);
                let next = Arc::clone(&next);
                let race = self.race.clone();
                let probe = self.probe.clone();
                Box::new(move || {
                    let _guard = probe.map(LiveGuard::enter);
                    let mut outcomes = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= cubes.len() || race.is_set() {
                            break;
                        }
                        worker.push();
                        for &(var, bit, value) in &cubes[i] {
                            worker.assert_xor_bits(vec![(var, bit)], value);
                        }
                        let result = worker.check_shared(&tm, &cache);
                        let sat = matches!(result, Ok(SolverResult::Sat));
                        if sat {
                            // Keep the frame pushed: the model must
                            // survive until the next mutating call.
                            race.set();
                        } else {
                            worker.pop();
                        }
                        outcomes.push(CubeOutcome {
                            cube: i,
                            worker: slot,
                            result,
                        });
                        if sat {
                            break;
                        }
                    }
                    (slot, worker, outcomes)
                }) as Job<ConquerReturn>
            })
            .collect();
        let conquered = self.pool.dispatch(jobs);
        let mut returned: Vec<Option<IncrementalContext>> = (0..threads).map(|_| None).collect();
        let mut outcomes: Vec<CubeOutcome> = Vec::new();
        for (slot, worker, mut collected) in conquered {
            returned[slot] = Some(worker);
            outcomes.append(&mut collected);
        }
        self.workers = returned
            .into_iter()
            .map(|w| w.expect("every dispatched worker returns through the rendezvous"))
            .collect();
        self.workers.extend(tail);
        // The rendezvous guarantees every job's `Arc` clone is dead.
        *tm = match Arc::try_unwrap(shared_tm) {
            Ok(owned) => owned,
            Err(_) => unreachable!("pool quiesced before check returns"),
        };

        // Every SAT finisher still holds its cube frame; the lowest cube
        // index is the canonical winner, the rest are settled right away.
        let mut sat_finishers: Vec<(usize, usize)> = outcomes
            .iter()
            .filter(|o| matches!(o.result, Ok(SolverResult::Sat)))
            .map(|o| (o.cube, o.worker))
            .collect();
        sat_finishers.sort_unstable();
        if let Some(&(_, canonical)) = sat_finishers.first() {
            for &(_, worker) in &sat_finishers[1..] {
                self.workers[worker].pop();
            }
            self.stats.cubes_solved += sat_finishers.len() as u64;
            self.stats.cubes_solved += outcomes
                .iter()
                .filter(|o| matches!(o.result, Ok(SolverResult::Unsat)))
                .count() as u64;
            self.winner = Some(Winner::Worker(canonical));
            self.dangling.push(canonical);
            return Ok(SolverResult::Sat);
        }

        // No SAT: surface the lowest-cube-index error, else resolve the
        // decisive verdicts against the full frontier.
        let mut errors: Vec<&CubeOutcome> = outcomes.iter().filter(|o| o.result.is_err()).collect();
        errors.sort_unstable_by_key(|o| o.cube);
        if let Some(o) = errors.first() {
            return Err(o.result.as_ref().expect_err("filtered on errors").clone());
        }
        let verdicts: Vec<SolverResult> = outcomes
            .iter()
            .map(|o| *o.result.as_ref().expect("errors handled above"))
            .collect();
        self.stats.cubes_solved += verdicts
            .iter()
            .filter(|&&v| v == SolverResult::Unsat)
            .count() as u64;
        Ok(resolve_cube_verdicts(&verdicts, total))
    }
}

/// Outcome of the cube-generation pass.
enum Generated {
    /// A probe answered SAT; the scout holds the model.
    Sat,
    /// The unresolved cubes to conquer (possibly empty: every cube was
    /// refuted by the lookahead, so the check is UNSAT).
    Frontier(Vec<Vec<CubeBit>>),
}

impl Oracle for CubeContext {
    fn push(&mut self) {
        self.settle();
        self.stack_depth += 1;
        self.scout.push();
        for worker in &mut self.workers {
            worker.push();
        }
    }

    fn pop(&mut self) {
        assert!(self.stack_depth > 0, "pop without matching push");
        self.settle();
        self.to_warm.retain(|&(depth, _)| depth < self.stack_depth);
        // Retracting assertions can revive a refuted cube, so the
        // probe-outcome cache (sound only while assertions accumulate)
        // is dropped wholesale.
        self.probe_unsat.clear();
        self.stack_depth -= 1;
        self.scout.pop();
        for worker in &mut self.workers {
            worker.pop();
        }
    }

    fn assert_term(&mut self, t: TermId) {
        self.settle();
        self.to_warm.push((self.stack_depth, t));
        self.scout.assert_term(t);
        for worker in &mut self.workers {
            worker.assert_term(t);
        }
    }

    fn assert_xor_bits(&mut self, bits: Vec<(TermId, u32)>, rhs: bool) {
        self.settle();
        self.scout.assert_xor_bits(bits.clone(), rhs);
        for worker in &mut self.workers {
            worker.assert_xor_bits(bits.clone(), rhs);
        }
    }

    fn track_var(&mut self, var: TermId) {
        self.settle();
        if !self.tracked.contains(&var) {
            self.tracked.push(var);
        }
        self.scout.track_var(var);
        for worker in &mut self.workers {
            worker.track_var(var);
        }
    }

    fn check(&mut self, tm: &mut TermManager) -> Result<SolverResult> {
        self.settle();
        self.checks += 1;
        self.race.clear();
        if self.external.as_ref().is_some_and(InterruptFlag::is_set) {
            // Cancelled before any work: answer like an interrupted solve.
            return Ok(SolverResult::Unknown);
        }
        let cache = Arc::get_mut(&mut self.cache)
            .expect("cache uniquely held between checks (pool quiesced)");
        warm_preprocess_cache(&mut self.to_warm, cache, tm, &mut self.warm_hits)?;
        let bits = self.split_bits(tm)?;
        if bits.is_empty() {
            // Nothing to split on (no free projection bit): plain solve.
            // The scout's pendings were all encoded by the lookahead's
            // `prepare_shared`, so the shared view never misses the cache.
            let verdict = self.scout.check_shared(tm, &self.cache)?;
            if verdict == SolverResult::Sat {
                self.winner = Some(Winner::Scout);
            }
            return Ok(verdict);
        }
        self.stats.splits += 1;
        match self.generate_cubes(tm, &bits)? {
            Generated::Sat => {
                self.winner = Some(Winner::Scout);
                Ok(SolverResult::Sat)
            }
            Generated::Frontier(frontier) => {
                if frontier.is_empty() {
                    // Every cube of the validated partition was refuted.
                    return Ok(SolverResult::Unsat);
                }
                self.conquer(tm, frontier)
            }
        }
    }

    fn model_value(&self, tm: &TermManager, var: TermId) -> Option<Value> {
        match self.winner? {
            Winner::Scout => self.scout.model_value(tm, var),
            Winner::Worker(slot) => self.workers[slot].model_value(tm, var),
        }
    }

    fn projected_model(&self, tm: &TermManager, projection: &[TermId]) -> Option<Vec<BvValue>> {
        match self.winner? {
            Winner::Scout => self.scout.projected_model(tm, projection),
            Winner::Worker(slot) => self.workers[slot].projected_model(tm, projection),
        }
    }

    fn stats(&self) -> OracleStats {
        // `checks` counts cube-level queries (comparable across backends);
        // the work fields sum the scout's probes and every worker's
        // conquests, so nothing a cancelled sibling spent is dropped.
        let mut stats = OracleStats {
            checks: self.checks,
            ..OracleStats::default()
        };
        for ctx in std::iter::once(&self.scout).chain(&self.workers) {
            let ws = ctx.stats();
            stats.sat_calls += ws.sat_calls;
            stats.theory_checks += ws.theory_checks;
            stats.theory_lemmas += ws.theory_lemmas;
            stats.rebuilds += ws.rebuilds;
            stats.conflicts += ws.conflicts;
            stats.compactions += ws.compactions;
            stats.dead_clauses_reclaimed += ws.dead_clauses_reclaimed;
            stats.preprocess_cache_hits += ws.preprocess_cache_hits;
        }
        stats.pool_reuses = self.pool.batches();
        stats.preprocess_cache_hits += self.warm_hits;
        stats
    }

    fn set_interrupt(&mut self, flag: InterruptFlag) {
        self.external = Some(flag);
        self.install_flags();
    }

    fn cube(&self) -> Option<CubeStats> {
        Some(self.cube_stats())
    }
}

// The conquest shares `&TermManager` and `&PreprocessCache` across scoped
// worker threads; pin the auto traits where they are relied on.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_sync::<TermManager>();
    assert_sync::<PreprocessCache>();
    assert_send::<CubeContext>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use pact_ir::Sort;

    fn lt(tm: &mut TermManager, x: TermId, bound: u128, width: u32) -> TermId {
        let c = tm.mk_bv_const(bound, width);
        tm.mk_bv_ult(x, c).unwrap()
    }

    #[test]
    fn cube_oracle_answers_like_a_single_backend() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        let f = lt(&mut tm, x, 40, 6);
        let mut ctx = CubeContext::new(3, 2);
        ctx.track_var(x);
        ctx.assert_term(f);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
        assert!(v.as_u128() < 40);
        ctx.push();
        let g = lt(&mut tm, x, 0, 6); // impossible
        ctx.assert_term(g);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unsat);
        ctx.pop();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        assert_eq!(ctx.stats().checks, 3);
        assert!(ctx.cube_stats().splits >= 1);
    }

    #[test]
    fn enumeration_with_blocking_matches_the_reference() {
        // x < 5 over 4 bits enumerated to exhaustion: whatever cube
        // witnesses each SAT, exactly the 5 models must surface.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let f = lt(&mut tm, x, 5, 4);
        let mut ctx = CubeContext::new(2, 2);
        ctx.track_var(x);
        ctx.assert_term(f);
        let mut seen = Vec::new();
        while ctx.check(&mut tm).unwrap() == SolverResult::Sat {
            let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
            assert!(v.as_u128() < 5);
            assert!(!seen.contains(&v.as_u128()), "model repeated");
            seen.push(v.as_u128());
            let c = tm.mk_bv_value(v);
            let eq = tm.mk_eq(x, c);
            let block = tm.mk_not(eq);
            ctx.assert_term(block);
        }
        assert_eq!(seen.len(), 5);
        // The backend never rebuilds: scout and workers are all
        // activation-literal oracles.
        assert_eq!(ctx.stats().rebuilds, 0);
    }

    #[test]
    fn xor_rows_reach_scout_and_workers() {
        // Odd parity over 3 bits inside a frame: 4 of 8 values; popping the
        // frame must restore all 8 in every engine.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(3));
        let mut ctx = CubeContext::new(2, 2);
        ctx.track_var(x);
        ctx.push();
        ctx.assert_xor_bits(vec![(x, 0), (x, 1), (x, 2)], true);
        let mut count = 0;
        while ctx.check(&mut tm).unwrap() == SolverResult::Sat {
            let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
            assert_eq!(v.as_u128().count_ones() % 2, 1);
            count += 1;
            assert!(count <= 4);
            let c = tm.mk_bv_value(v);
            let eq = tm.mk_eq(x, c);
            let block = tm.mk_not(eq);
            ctx.assert_term(block);
        }
        assert_eq!(count, 4);
        ctx.pop();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
    }

    #[test]
    fn lookahead_refutes_cubes_on_an_unsat_side() {
        // x < 4 over 6 bits: the top bits are forced to zero, so cubes that
        // set a split bit the wrong way die in the probe.  Run enough
        // blocked checks that some cube is refuted by lookahead.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        let f = lt(&mut tm, x, 4, 6);
        let mut ctx = CubeContext::new(3, 2);
        ctx.track_var(x);
        ctx.assert_term(f);
        let mut models = 0;
        while ctx.check(&mut tm).unwrap() == SolverResult::Sat {
            let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
            models += 1;
            assert!(models <= 4);
            let c = tm.mk_bv_value(v);
            let eq = tm.mk_eq(x, c);
            let block = tm.mk_not(eq);
            ctx.assert_term(block);
        }
        assert_eq!(models, 4);
        let stats = ctx.cube_stats();
        assert!(stats.splits >= 1);
        assert!(stats.cubes_solved >= stats.refuted_by_lookahead);
    }

    #[test]
    fn probe_outcome_cache_replays_refutations_on_repeated_checks() {
        // x < 4 and x > 10 is unsatisfiable, so every probed cube is
        // refuted.  Re-checking the unchanged frame regenerates the same
        // cubes; within a handful of checks the galloping search must start
        // answering probes from the cache — with every verdict still Unsat.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        let lo = lt(&mut tm, x, 4, 6);
        let c = tm.mk_bv_const(10, 6);
        let hi = tm.mk_bv_ult(c, x).unwrap();
        let mut ctx = CubeContext::new(3, 2);
        ctx.track_var(x);
        ctx.assert_term(lo);
        ctx.assert_term(hi);
        for _ in 0..8 {
            assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unsat);
            if ctx.cube_stats().probe_cache_hits > 0 {
                break;
            }
        }
        let stats = ctx.cube_stats();
        assert!(
            stats.probe_cache_hits > 0,
            "repeated checks never hit the probe cache"
        );
        // Cached refutations still count toward the lookahead totals, so
        // downstream accounting is unchanged.
        assert!(stats.refuted_by_lookahead >= stats.probe_cache_hits);
    }

    #[test]
    fn pop_clears_the_probe_cache_so_cubes_can_revive() {
        // Cubes refuted inside a frame may become satisfiable once the
        // frame's assertions are retracted; a stale cache entry would turn
        // the post-pop check falsely Unsat.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        let lo = lt(&mut tm, x, 4, 6);
        let mut ctx = CubeContext::new(3, 2);
        ctx.track_var(x);
        ctx.assert_term(lo);
        ctx.push();
        let c = tm.mk_bv_const(10, 6);
        let hi = tm.mk_bv_ult(c, x).unwrap();
        ctx.assert_term(hi);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unsat);
        ctx.pop();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
    }

    #[test]
    fn external_interrupt_turns_checks_unknown() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        let f = lt(&mut tm, x, 40, 6);
        let mut ctx = CubeContext::new(2, 2);
        ctx.track_var(x);
        ctx.assert_term(f);
        let flag = InterruptFlag::new();
        Oracle::set_interrupt(&mut ctx, flag.clone());
        flag.set();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unknown);
        assert!(ctx.model_value(&tm, x).is_none());
        flag.clear();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
    }

    #[test]
    fn worker_probe_reads_zero_between_checks() {
        let probe = Arc::new(AtomicUsize::new(0));
        let mut tm = TermManager::new();
        // Conflict-heavy enough that probes stay Unknown and the conquest
        // threads actually spawn.
        let x = tm.mk_var("x", Sort::BitVec(10));
        let y = tm.mk_var("y", Sort::BitVec(10));
        let prod = tm.mk_bv_mul(x, y).unwrap();
        let c = tm.mk_bv_const(851, 10);
        let f = tm.mk_eq(prod, c);
        let mut ctx = CubeContext::new(2, 2);
        ctx.set_worker_probe(Arc::clone(&probe));
        ctx.track_var(x);
        ctx.assert_term(f);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        assert_eq!(probe.load(Ordering::SeqCst), 0, "worker thread leaked");
    }

    #[test]
    fn pool_threads_are_constant_across_checks_and_drain_on_drop() {
        // The persistent-runtime contract for the conquest pool: threads
        // are created once at construction, conquests are batches served by
        // the same pool, and dropping the oracle joins them.  A conflict
        // budget of 1 makes every lookahead probe exhaust its budget
        // (Unknown), so every check deterministically reaches the conquest
        // dispatch instead of depending on how hard the instance happens to
        // be for the probes.  Pigeonhole (6 values in [0, 5), pairwise
        // distinct) is UNSAT but needs real search to refute, so with budget
        // 1 neither a probe nor a conquest sub-solve can reach a verdict.
        let mut tm = TermManager::new();
        let holes: Vec<TermId> = (0..6)
            .map(|i| tm.mk_var(&format!("p{i}"), Sort::BitVec(3)))
            .collect();
        let five = tm.mk_bv_const(5, 3);
        let config = SolverConfig {
            max_conflicts: Some(1),
            ..SolverConfig::default()
        };
        let mut ctx = CubeContext::with_config(2, 2, config);
        for (i, &p) in holes.iter().enumerate() {
            let bound = tm.mk_bv_ult(p, five).unwrap();
            ctx.assert_term(bound);
            for &q in &holes[i + 1..] {
                let eq = tm.mk_eq(p, q);
                let distinct = tm.mk_not(eq);
                ctx.assert_term(distinct);
            }
        }
        ctx.track_var(holes[0]);
        let handle = ctx.pool_handle();
        assert_eq!(handle.threads_spawned(), 2);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unknown);
        let first = ctx.stats().pool_reuses;
        assert!(first >= 1, "conquest bypassed the pool");
        for _ in 0..10 {
            ctx.push();
            assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unknown);
            ctx.pop();
        }
        assert!(
            ctx.stats().pool_reuses > first,
            "later conquests bypassed the pool"
        );
        assert_eq!(handle.threads_spawned(), 2, "a check spawned a thread");
        assert_eq!(handle.live_threads(), 2);
        drop(ctx);
        assert_eq!(handle.live_threads(), 0, "pool thread outlived its oracle");
    }

    #[test]
    fn cancellation_mid_check_leaves_the_pool_reusable() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        let f = lt(&mut tm, x, 40, 6);
        let mut ctx = CubeContext::new(2, 2);
        ctx.track_var(x);
        ctx.assert_term(f);
        let handle = ctx.pool_handle();
        let flag = InterruptFlag::new();
        Oracle::set_interrupt(&mut ctx, flag.clone());
        flag.set();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unknown);
        flag.clear();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        assert_eq!(handle.threads_spawned(), 2);
        assert_eq!(handle.live_threads(), 2);
    }

    #[test]
    fn popping_an_unchecked_failing_frame_recovers() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let f = lt(&mut tm, x, 5, 4);
        let r = tm.mk_var("r", Sort::Real);
        let rr = tm.mk_real_mul(r, r).unwrap(); // non-linear: unsupported
        let one = tm.mk_real_const(pact_ir::Rational::ONE);
        let bad = tm.mk_real_lt(rr, one).unwrap();
        let mut ctx = CubeContext::new(2, 2);
        ctx.track_var(x);
        ctx.assert_term(f);
        ctx.push();
        ctx.assert_term(bad);
        assert!(ctx.check(&mut tm).is_err());
        assert!(ctx.check(&mut tm).is_err());
        ctx.pop();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
    }

    #[test]
    fn partition_validator_accepts_trees_and_rejects_holes() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let y = tm.mk_var("y", Sort::BitVec(4));
        // A full depth-2 split partitions.
        let full: Vec<Vec<CubeBit>> = vec![
            vec![(x, 0, false), (y, 1, false)],
            vec![(x, 0, false), (y, 1, true)],
            vec![(x, 0, true), (y, 1, false)],
            vec![(x, 0, true), (y, 1, true)],
        ];
        assert!(cubes_partition(&full));
        // An uneven tree (one branch split deeper) still partitions.
        let tree: Vec<Vec<CubeBit>> = vec![
            vec![(x, 0, false)],
            vec![(x, 0, true), (y, 1, false)],
            vec![(x, 0, true), (y, 1, true)],
        ];
        assert!(cubes_partition(&tree));
        // Dropping a leaf leaves a hole.
        assert!(!cubes_partition(&tree[..2]));
        // Overlapping cubes are rejected.
        let overlap: Vec<Vec<CubeBit>> =
            vec![vec![(x, 0, false)], vec![(x, 0, false)], vec![(x, 0, true)]];
        assert!(!cubes_partition(&overlap));
        // A contradictory cube is rejected.
        let contradictory: Vec<Vec<CubeBit>> = vec![vec![(x, 0, false), (x, 0, true)]];
        assert!(!cubes_partition(&contradictory));
        // The trivial partition (one empty cube) is accepted; the empty set
        // is not.
        assert!(cubes_partition(&[Vec::new()]));
        assert!(!cubes_partition(&[]));
    }

    #[test]
    fn verdict_resolution_is_order_independent() {
        use SolverResult::{Sat, Unknown, Unsat};
        assert_eq!(resolve_cube_verdicts(&[Unsat, Sat, Unknown], 3), Sat);
        assert_eq!(resolve_cube_verdicts(&[Unknown, Sat, Unsat], 3), Sat);
        assert_eq!(resolve_cube_verdicts(&[Unsat, Unsat, Unsat], 3), Unsat);
        // A missing verdict (cancelled cube) blocks the UNSAT conclusion.
        assert_eq!(resolve_cube_verdicts(&[Unsat, Unsat], 3), Unknown);
        assert_eq!(resolve_cube_verdicts(&[Unknown, Unsat], 2), Unknown);
        assert_eq!(resolve_cube_verdicts(&[], 1), Unknown);
    }

    #[test]
    #[should_panic(expected = "pop without matching push")]
    fn unbalanced_pop_panics() {
        let mut ctx = CubeContext::new(2, 2);
        ctx.pop();
    }
}
