//! `PortfolioContext`: an oracle that races diversified solver workers.
//!
//! The round scheduler parallelizes *across* rounds, but each oracle `check`
//! is sequential, so one hard cell stalls a whole round.  This backend
//! attacks exactly that tail: every `check` fans out to N workers — each a
//! complete oracle of its own, diversified in backend style (rebuild vs.
//! activation-literal incremental), branching polarity, restart schedule and
//! initial-activity noise — and the first SAT/UNSAT answer wins while the
//! losers are cancelled through an [`InterruptFlag`] their SAT solvers poll
//! at conflict and restart boundaries.  The structure mirrors DALC's
//! "combine complementary decoders and keep whichever wins": no single
//! configuration dominates every cell, but the portfolio's per-check time is
//! the per-check *minimum* over its members (plus cancellation latency).
//!
//! # Sharing the term manager
//!
//! `Oracle::check` hands over `&mut TermManager`, but N workers must encode
//! concurrently.  The only mutation the check pipeline performs on the term
//! manager is *preprocessing* (array reduction and Ackermannization intern
//! rewritten terms), so the portfolio warms a [`PreprocessCache`] up front —
//! once per raw assertion, on the caller's manager.  The race itself runs on
//! a persistent worker pool: its threads are `'static` and cannot borrow the
//! caller's manager, so each check *transfers ownership* — the manager moves
//! into an `Arc`, clones ride into the jobs together with the worker
//! contexts, and the dispatch rendezvous (every job reports back before
//! `check` returns) guarantees all clones are dead so `Arc::try_unwrap`
//! restores the manager to the caller.  Worker encoders cache literals by
//! `TermId`, which stays sound across checks precisely because every term
//! they ever see lives in the caller's manager.
//!
//! # Determinism
//!
//! All workers are complete over the supported fragment, so every decisive
//! answer agrees; racing only changes *which model* witnesses a SAT verdict.
//! The race stops at the first decisive finisher (it raises the shared
//! interrupt flag), the dispatch rendezvous collects every worker — losers
//! abort at their next conflict, but any worker already past its last flag
//! poll still returns decisively; that rendezvous latency is the race's
//! de-facto grace window — and the lowest-*ranked* decisive finisher
//! supplies the model
//! and is credited the win.  Ranks (and the dispatch head start) rotate as
//! a pure function of the check index, so easy checks — effectively ties —
//! spread their wins across the portfolio instead of crediting whichever
//! thread the OS woke first.  *Which* workers finish decisively is still
//! OS-timing-dependent, so `worker_wins`/`cancelled` tallies and the
//! witnessing model vary run to run; what is reproducible is the verdict
//! (decisive iff any worker decides, and all deciders agree) and therefore
//! the whole deterministic `CountReport` slice, which is
//! model-order-independent — `tests/differential.rs` pins it across
//! backends, seeds and thread counts.

use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

use pact_ir::{BvValue, TermId, TermManager, Value};
use pact_sat::{InterruptFlag, SatOptions};

use crate::context::{
    warm_preprocess_cache, Context, LiveGuard, OracleStats, PreprocessCache, SolverConfig,
    SolverResult,
};
use crate::error::Result;
use crate::incremental::IncrementalContext;
use crate::oracle::Oracle;
use crate::pool::{Job, PoolHandle, WorkerPool};

/// What one racing job returns through the pool: the worker's slot, the
/// worker context itself (ownership round-trips through the pool thread) and
/// its verdict.
type RaceReturn = (usize, WorkerCtx, Result<SolverResult>);

/// Hard cap on the number of racing workers (and the length of the
/// fixed-size win-count arrays carried through `CountStats`).
pub const MAX_PORTFOLIO_WORKERS: usize = 8;

/// One worker's diversification recipe: which backend style it runs and how
/// its SAT search is steered away from its siblings'.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Short name used in reports and benchmark artifacts.
    pub label: &'static str,
    /// `true` builds the activation-literal [`IncrementalContext`], `false`
    /// the rebuilding [`Context`].
    pub incremental: bool,
    /// SAT-level steering (polarity, restart schedule, branching noise).
    pub sat: SatOptions,
}

/// The portfolio's fixed worker table; [`PortfolioContext::with_config`]
/// takes the first `n` entries.  Slots 0 and 1 are the two backend styles at
/// reference settings, so even a two-worker portfolio races a rebuild-style
/// against an incremental-style search; later slots add polarity flips,
/// sprint/marathon restart schedules and branching noise.
pub const WORKER_PROFILES: [WorkerProfile; MAX_PORTFOLIO_WORKERS] = [
    WorkerProfile {
        label: "inc-base",
        incremental: true,
        sat: SatOptions {
            default_phase: false,
            restart_base: 100,
            activity_seed: 0,
        },
    },
    WorkerProfile {
        label: "reb-base",
        incremental: false,
        sat: SatOptions {
            default_phase: false,
            restart_base: 100,
            activity_seed: 0,
        },
    },
    WorkerProfile {
        label: "inc-hot",
        incremental: true,
        sat: SatOptions {
            default_phase: true,
            restart_base: 50,
            activity_seed: 0x9e37_79b9_7f4a_7c15,
        },
    },
    WorkerProfile {
        label: "reb-steady",
        incremental: false,
        sat: SatOptions {
            default_phase: true,
            restart_base: 250,
            activity_seed: 0xd1b5_4a32_d192_ed03,
        },
    },
    WorkerProfile {
        label: "inc-sprint",
        incremental: true,
        sat: SatOptions {
            default_phase: false,
            restart_base: 40,
            activity_seed: 0x2545_f491_4f6c_dd1d,
        },
    },
    WorkerProfile {
        label: "inc-flip",
        incremental: true,
        sat: SatOptions {
            default_phase: true,
            restart_base: 100,
            activity_seed: 0x94d0_49bb_1331_11eb,
        },
    },
    WorkerProfile {
        label: "reb-noisy",
        incremental: false,
        sat: SatOptions {
            default_phase: false,
            restart_base: 150,
            activity_seed: 0xbf58_476d_1ce4_e5b9,
        },
    },
    WorkerProfile {
        label: "inc-marathon",
        incremental: true,
        sat: SatOptions {
            default_phase: true,
            restart_base: 400,
            activity_seed: 0x369d_ea0f_31a5_3f85,
        },
    },
];

/// Winner/cancelled accounting of a portfolio oracle, merged into
/// `CountStats` by the counting engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortfolioStats {
    /// Number of workers the portfolio races per check.
    pub workers: u32,
    /// Decisive answers credited per worker slot (only the first `workers`
    /// entries are meaningful).
    pub wins: [u64; MAX_PORTFOLIO_WORKERS],
    /// Worker solves cut short after losing a race (they answered `Unknown`
    /// while a sibling's decisive answer already stood).
    pub cancelled: u64,
}

/// One worker's lifetime summary (see
/// [`PortfolioContext::worker_reports`]).
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// The worker's profile label.
    pub label: &'static str,
    /// Decisive answers this worker was credited with.
    pub wins: u64,
    /// The worker oracle's own cumulative statistics — counted in the
    /// portfolio's totals even for races the worker lost.
    pub stats: OracleStats,
}

/// One racing worker: either backend style behind a common dispatch.
#[derive(Debug)]
enum WorkerCtx {
    Rebuild(Context),
    Incremental(IncrementalContext),
}

impl WorkerCtx {
    fn build(profile: &WorkerProfile, config: SolverConfig) -> Self {
        if profile.incremental {
            WorkerCtx::Incremental(IncrementalContext::with_config_and_options(
                config,
                profile.sat,
            ))
        } else {
            WorkerCtx::Rebuild(Context::with_config_and_options(config, profile.sat))
        }
    }

    fn push(&mut self) {
        match self {
            WorkerCtx::Rebuild(c) => c.push(),
            WorkerCtx::Incremental(c) => c.push(),
        }
    }

    fn pop(&mut self) {
        match self {
            WorkerCtx::Rebuild(c) => c.pop(),
            WorkerCtx::Incremental(c) => c.pop(),
        }
    }

    fn assert_term(&mut self, t: TermId) {
        match self {
            WorkerCtx::Rebuild(c) => c.assert_term(t),
            WorkerCtx::Incremental(c) => c.assert_term(t),
        }
    }

    fn assert_xor_bits(&mut self, bits: Vec<(TermId, u32)>, rhs: bool) {
        match self {
            WorkerCtx::Rebuild(c) => c.assert_xor_bits(bits, rhs),
            WorkerCtx::Incremental(c) => c.assert_xor_bits(bits, rhs),
        }
    }

    fn track_var(&mut self, var: TermId) {
        match self {
            WorkerCtx::Rebuild(c) => c.track_var(var),
            WorkerCtx::Incremental(c) => c.track_var(var),
        }
    }

    fn check_shared(&mut self, tm: &TermManager, cache: &PreprocessCache) -> Result<SolverResult> {
        match self {
            WorkerCtx::Rebuild(c) => c.check_shared(tm, cache),
            WorkerCtx::Incremental(c) => c.check_shared(tm, cache),
        }
    }

    fn model_value(&self, tm: &TermManager, var: TermId) -> Option<Value> {
        match self {
            WorkerCtx::Rebuild(c) => c.model_value(tm, var),
            WorkerCtx::Incremental(c) => c.model_value(tm, var),
        }
    }

    fn projected_model(&self, tm: &TermManager, projection: &[TermId]) -> Option<Vec<BvValue>> {
        match self {
            WorkerCtx::Rebuild(c) => c.projected_model(tm, projection),
            WorkerCtx::Incremental(c) => c.projected_model(tm, projection),
        }
    }

    fn stats(&self) -> OracleStats {
        match self {
            WorkerCtx::Rebuild(c) => c.stats(),
            WorkerCtx::Incremental(c) => c.stats(),
        }
    }

    fn set_interrupt_flags(&mut self, flags: Vec<InterruptFlag>) {
        match self {
            WorkerCtx::Rebuild(c) => c.set_interrupt_flags(flags),
            WorkerCtx::Incremental(c) => c.set_interrupt_flags(flags),
        }
    }
}

/// The racing-portfolio oracle (see the module docs for the architecture).
///
/// All assertion-stack operations fan out to every worker immediately;
/// `check` warms the preprocess cache against the caller's term manager and
/// then races the workers on the persistent pool (the dispatch rendezvous
/// completes before `check` returns, so no worker ever holds check-scoped
/// state past its call — cancellation can cut a race short, never leak it).
#[derive(Debug)]
pub struct PortfolioContext {
    profiles: Vec<WorkerProfile>,
    workers: Vec<WorkerCtx>,
    /// The persistent racing threads, created once per oracle.
    pool: WorkerPool<RaceReturn>,
    /// Portfolio-level `check` count (each check is N worker solves).
    checks: u64,
    /// Live frames (the assertion-stack depth).
    depth: usize,
    /// Raw assertions awaiting preprocessing, tagged with the depth they
    /// were asserted at so popped frames retire their pending entries.
    to_warm: Vec<(usize, TermId)>,
    /// Shared with in-flight jobs during a dispatch; uniquely held (and
    /// therefore warmable) between checks thanks to the quiesce rendezvous.
    cache: Arc<PreprocessCache>,
    /// Warm-cache hits observed while preprocessing `to_warm` (hash-consed
    /// re-assertions resolve to already-cached term ids); surfaced through
    /// [`OracleStats::preprocess_cache_hits`].
    warm_hits: u64,
    /// Raised by the first decisive finisher of a race; lowered per check.
    race: InterruptFlag,
    /// External cancellation (the session's token), also watched by every
    /// worker's SAT solver.
    external: Option<InterruptFlag>,
    wins: [u64; MAX_PORTFOLIO_WORKERS],
    cancelled: u64,
    last_winner: Option<usize>,
    /// Optional live-worker-thread probe for leak tests and service metrics.
    probe: Option<Arc<AtomicUsize>>,
}

impl PortfolioContext {
    /// A portfolio of `workers` diversified workers with default resource
    /// limits.  `workers` is clamped to `1..=MAX_PORTFOLIO_WORKERS`.
    pub fn new(workers: usize) -> Self {
        PortfolioContext::with_config(workers, SolverConfig::default())
    }

    /// A portfolio of `workers` diversified workers, every worker sharing
    /// the given resource limits.  `workers` is clamped to
    /// `1..=MAX_PORTFOLIO_WORKERS`.
    pub fn with_config(workers: usize, config: SolverConfig) -> Self {
        let n = workers.clamp(1, MAX_PORTFOLIO_WORKERS);
        let profiles: Vec<WorkerProfile> = WORKER_PROFILES[..n].to_vec();
        let race = InterruptFlag::new();
        let mut ctxs = Vec::with_capacity(n);
        for profile in &profiles {
            let mut worker = WorkerCtx::build(profile, config);
            worker.set_interrupt_flags(vec![race.clone()]);
            ctxs.push(worker);
        }
        PortfolioContext {
            profiles,
            workers: ctxs,
            pool: WorkerPool::new(n, "pact-portfolio"),
            checks: 0,
            depth: 0,
            to_warm: Vec::new(),
            cache: Arc::new(PreprocessCache::new()),
            warm_hits: 0,
            race,
            external: None,
            wins: [0; MAX_PORTFOLIO_WORKERS],
            cancelled: 0,
            last_winner: None,
            probe: None,
        }
    }

    /// Number of racing workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Installs a shared counter that tracks how many worker *jobs* are in
    /// flight at any instant (incremented on job entry, decremented on exit
    /// — panic included).  Because every race's dispatch rendezvous
    /// completes before `check` returns, the probe reads 0 whenever no
    /// check is in flight; the cancellation leak test pins exactly that.
    /// The pool's OS threads persist between checks — their lifecycle is
    /// observable through [`PortfolioContext::pool_handle`].
    pub fn set_worker_probe(&mut self, probe: Arc<AtomicUsize>) {
        self.probe = Some(probe);
    }

    /// Lifecycle counters of the persistent worker pool: total OS threads
    /// ever spawned (constant after construction — the zero-per-check-spawn
    /// contract) and threads currently live (0 after the oracle is
    /// dropped).
    pub fn pool_handle(&self) -> PoolHandle {
        self.pool.handle()
    }

    /// Per-worker lifetime summaries: profile label, win count, and the
    /// worker oracle's own statistics.
    pub fn worker_reports(&self) -> Vec<WorkerReport> {
        self.profiles
            .iter()
            .zip(&self.workers)
            .enumerate()
            .map(|(i, (profile, worker))| WorkerReport {
                label: profile.label,
                wins: self.wins[i],
                stats: worker.stats(),
            })
            .collect()
    }

    /// Winner/cancelled accounting (the `CountStats` feed).
    pub fn portfolio_stats(&self) -> PortfolioStats {
        PortfolioStats {
            workers: self.workers.len() as u32,
            wins: self.wins,
            cancelled: self.cancelled,
        }
    }

    fn install_flags(&mut self) {
        let mut flags = vec![self.race.clone()];
        if let Some(external) = &self.external {
            flags.push(external.clone());
        }
        for worker in &mut self.workers {
            worker.set_interrupt_flags(flags.clone());
        }
    }

    /// Races every worker over the current assertion stack and returns the
    /// canonical decisive answer (see the module docs).
    fn race_check(&mut self, tm: &mut TermManager) -> Result<SolverResult> {
        let n = self.workers.len();
        self.race.clear();
        // Both the dispatch order and the ranking rotate with the check
        // index: on easy checks (effectively ties — whoever starts first
        // finishes first, especially on few cores) the head start itself
        // must rotate, or one slot would collect every win.  The rotation
        // is a pure function of `checks`; the set of decisive finishers it
        // ranks is still timing-dependent (see the module docs), so only
        // the verdict — not the win tally — is reproducible.
        let rotation = ((self.checks - 1) % n as u64) as usize;
        let mut results: Vec<Option<Result<SolverResult>>> = (0..n).map(|_| None).collect();
        // Ownership transfer into the pool: the term manager moves behind an
        // `Arc` for the duration of the dispatch, and the workers themselves
        // ride into the jobs and back out through the results.
        let shared_tm = Arc::new(std::mem::replace(tm, TermManager::new()));
        let mut slots: Vec<(usize, WorkerCtx)> = self.workers.drain(..).enumerate().collect();
        slots.rotate_left(rotation);
        let jobs: Vec<Job<RaceReturn>> = slots
            .into_iter()
            .map(|(slot, mut worker)| {
                let tm = Arc::clone(&shared_tm);
                let cache = Arc::clone(&self.cache);
                let race = self.race.clone();
                let probe = self.probe.clone();
                Box::new(move || {
                    let _guard = probe.map(LiveGuard::enter);
                    let result = worker.check_shared(&tm, &cache);
                    if matches!(result, Ok(SolverResult::Sat | SolverResult::Unsat)) {
                        race.set();
                    }
                    (slot, worker, result)
                }) as Job<RaceReturn>
            })
            .collect();
        let raced = self.pool.dispatch(jobs);
        let mut returned: Vec<Option<WorkerCtx>> = (0..n).map(|_| None).collect();
        for (slot, worker, result) in raced {
            returned[slot] = Some(worker);
            results[slot] = Some(result);
        }
        self.workers = returned
            .into_iter()
            .map(|w| w.expect("every dispatched worker returns through the rendezvous"))
            .collect();
        // The rendezvous guarantees every job's `Arc` clone is dead.
        *tm = match Arc::try_unwrap(shared_tm) {
            Ok(owned) => owned,
            Err(_) => unreachable!("pool quiesced before check returns"),
        };
        // Canonical winner: the lowest-ranked decisive finisher.
        for offset in 0..n {
            let i = (rotation + offset) % n;
            if matches!(
                results[i],
                Some(Ok(SolverResult::Sat | SolverResult::Unsat))
            ) {
                self.wins[i] += 1;
                self.last_winner = Some(i);
                // Losers that answered `Unknown` were cut short by the race
                // flag (or exhausted their budget mid-race); either way
                // their solve was discarded.
                self.cancelled += results
                    .iter()
                    .filter(|r| matches!(r, Some(Ok(SolverResult::Unknown))))
                    .count() as u64;
                return results[i].take().expect("winner result present");
            }
        }
        // No decisive answer: surface the lowest-ranked error, else Unknown
        // (every worker gave up — budget exhaustion or cancellation).
        for offset in 0..n {
            let i = (rotation + offset) % n;
            if matches!(results[i], Some(Err(_))) {
                return results[i].take().expect("error result present");
            }
        }
        Ok(SolverResult::Unknown)
    }
}

impl Oracle for PortfolioContext {
    fn push(&mut self) {
        self.depth += 1;
        for worker in &mut self.workers {
            worker.push();
        }
    }

    fn pop(&mut self) {
        assert!(self.depth > 0, "pop without matching push");
        // Pending raw assertions of the dying frame will never be needed —
        // and must not poison later checks if they fail to preprocess.
        self.to_warm.retain(|&(depth, _)| depth < self.depth);
        self.depth -= 1;
        for worker in &mut self.workers {
            worker.pop();
        }
    }

    fn assert_term(&mut self, t: TermId) {
        self.to_warm.push((self.depth, t));
        for worker in &mut self.workers {
            worker.assert_term(t);
        }
    }

    fn assert_xor_bits(&mut self, bits: Vec<(TermId, u32)>, rhs: bool) {
        for worker in &mut self.workers {
            worker.assert_xor_bits(bits.clone(), rhs);
        }
    }

    fn track_var(&mut self, var: TermId) {
        for worker in &mut self.workers {
            worker.track_var(var);
        }
    }

    fn check(&mut self, tm: &mut TermManager) -> Result<SolverResult> {
        self.checks += 1;
        // A failed or indecisive check must not leave the previous check's
        // model claimable (the single-engine backends never do).
        self.last_winner = None;
        let cache = Arc::get_mut(&mut self.cache)
            .expect("cache uniquely held between checks (pool quiesced)");
        warm_preprocess_cache(&mut self.to_warm, cache, tm, &mut self.warm_hits)?;
        self.race_check(tm)
    }

    fn model_value(&self, tm: &TermManager, var: TermId) -> Option<Value> {
        let winner = self.last_winner?;
        self.workers[winner].model_value(tm, var)
    }

    fn projected_model(&self, tm: &TermManager, projection: &[TermId]) -> Option<Vec<BvValue>> {
        let winner = self.last_winner?;
        self.workers[winner].projected_model(tm, projection)
    }

    fn stats(&self) -> OracleStats {
        // `checks` counts portfolio-level queries (comparable across
        // backends); the work fields sum over every worker, so conflicts and
        // rebuilds spent by cancelled losers stay in the lifetime totals.
        let mut stats = OracleStats {
            checks: self.checks,
            ..OracleStats::default()
        };
        for worker in &self.workers {
            let ws = worker.stats();
            stats.sat_calls += ws.sat_calls;
            stats.theory_checks += ws.theory_checks;
            stats.theory_lemmas += ws.theory_lemmas;
            stats.rebuilds += ws.rebuilds;
            stats.conflicts += ws.conflicts;
            stats.compactions += ws.compactions;
            stats.dead_clauses_reclaimed += ws.dead_clauses_reclaimed;
            stats.preprocess_cache_hits += ws.preprocess_cache_hits;
        }
        stats.pool_reuses = self.pool.batches();
        stats.preprocess_cache_hits += self.warm_hits;
        stats
    }

    fn set_interrupt(&mut self, flag: InterruptFlag) {
        self.external = Some(flag);
        self.install_flags();
    }

    fn portfolio(&self) -> Option<PortfolioStats> {
        Some(self.portfolio_stats())
    }
}

// The race shares `&TermManager` and `&PreprocessCache` across scoped worker
// threads; these assertions pin the required auto traits at the crate that
// relies on them.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_sync::<TermManager>();
    assert_sync::<PreprocessCache>();
    assert_sync::<InterruptFlag>();
    assert_send::<PortfolioContext>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use pact_ir::Sort;
    use std::sync::atomic::Ordering;

    fn lt(tm: &mut TermManager, x: TermId, bound: u128, width: u32) -> TermId {
        let c = tm.mk_bv_const(bound, width);
        tm.mk_bv_ult(x, c).unwrap()
    }

    #[test]
    fn portfolio_answers_like_a_single_backend() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        let f = lt(&mut tm, x, 40, 6);
        let mut ctx = PortfolioContext::new(3);
        ctx.track_var(x);
        ctx.assert_term(f);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
        assert!(v.as_u128() < 40);
        ctx.push();
        let g = lt(&mut tm, x, 0, 6); // impossible
        ctx.assert_term(g);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unsat);
        ctx.pop();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        assert_eq!(ctx.stats().checks, 3);
    }

    #[test]
    fn enumeration_with_blocking_matches_the_reference() {
        // x < 5 over 4 bits enumerated to exhaustion: the portfolio must
        // find exactly the 5 models whatever worker wins each race.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let f = lt(&mut tm, x, 5, 4);
        let mut ctx = PortfolioContext::new(4);
        ctx.track_var(x);
        ctx.assert_term(f);
        let mut seen = Vec::new();
        while ctx.check(&mut tm).unwrap() == SolverResult::Sat {
            let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
            assert!(v.as_u128() < 5);
            assert!(!seen.contains(&v.as_u128()), "model repeated");
            seen.push(v.as_u128());
            let c = tm.mk_bv_value(v);
            let eq = tm.mk_eq(x, c);
            let block = tm.mk_not(eq);
            ctx.assert_term(block);
        }
        assert_eq!(seen.len(), 5);
        // Every check was credited to exactly one worker.
        let total_wins: u64 = ctx.portfolio_stats().wins.iter().sum();
        assert_eq!(total_wins, ctx.stats().checks);
    }

    #[test]
    fn xor_rows_reach_every_worker() {
        // Odd parity over 3 bits: 4 of 8 values, as for the single backends.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(3));
        let mut ctx = PortfolioContext::new(2);
        ctx.track_var(x);
        ctx.push();
        ctx.assert_xor_bits(vec![(x, 0), (x, 1), (x, 2)], true);
        let mut count = 0;
        while ctx.check(&mut tm).unwrap() == SolverResult::Sat {
            let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
            assert_eq!(v.as_u128().count_ones() % 2, 1);
            count += 1;
            assert!(count <= 4);
            let c = tm.mk_bv_value(v);
            let eq = tm.mk_eq(x, c);
            let block = tm.mk_not(eq);
            ctx.assert_term(block);
        }
        assert_eq!(count, 4);
        // The frame retires the row in every worker.
        ctx.pop();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
    }

    #[test]
    fn worker_profiles_are_distinct_and_reach_the_solvers() {
        // The win-spread probes (CI, tests/portfolio.rs) validate the rank
        // rotation, which would also pass for identical workers; this is
        // the direct check that the diversification itself is live.  The
        // profile table must be pairwise distinct, and each profile's
        // `default_phase` must be observable in its worker's search: a free
        // tracked variable is decided with the saved phase, so its model
        // bits equal the configured polarity.
        for (i, a) in WORKER_PROFILES.iter().enumerate() {
            for (j, b) in WORKER_PROFILES.iter().enumerate().skip(i + 1) {
                // Distinct as whole recipes: slots 0/1 share reference SAT
                // options on purpose (they differ in backend style).
                assert_ne!(a, b, "profiles {i} and {j} are identical");
                assert_ne!(a.label, b.label);
            }
        }
        for profile in &WORKER_PROFILES {
            let mut tm = TermManager::new();
            let x = tm.mk_var("x", Sort::BitVec(4));
            let mut worker = WorkerCtx::build(profile, SolverConfig::default());
            worker.track_var(x);
            let verdict = worker
                .check_shared(&tm, &PreprocessCache::new())
                .unwrap_or_else(|e| panic!("{}: {e}", profile.label));
            assert_eq!(verdict, SolverResult::Sat, "{}", profile.label);
            let v = worker.model_value(&tm, x).unwrap().as_bv().unwrap();
            let expected = if profile.sat.default_phase { 0b1111 } else { 0 };
            assert_eq!(
                v.as_u128(),
                expected,
                "{}: default_phase did not reach the worker's SAT solver",
                profile.label
            );
        }
    }

    #[test]
    fn rank_rotation_spreads_wins_across_workers() {
        // Easy checks are effectively ties, so the deterministic rotation
        // must credit ≥ 2 distinct workers over a run of checks — the "is
        // diversification live" probe the smoke bench asserts at scale.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(5));
        let f = lt(&mut tm, x, 20, 5);
        let mut ctx = PortfolioContext::new(3);
        ctx.track_var(x);
        ctx.assert_term(f);
        for _ in 0..6 {
            ctx.push();
            assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
            ctx.pop();
        }
        let winners = ctx
            .portfolio_stats()
            .wins
            .iter()
            .filter(|&&w| w > 0)
            .count();
        assert!(winners >= 2, "wins = {:?}", ctx.portfolio_stats().wins);
    }

    #[test]
    fn loser_work_stays_in_the_lifetime_totals() {
        // The portfolio's conflicts/rebuilds are the *sum* over workers —
        // including everything cancelled losers spent — so the merged totals
        // never under-report work (the PR 3 accounting contract).
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(10));
        let y = tm.mk_var("y", Sort::BitVec(10));
        let prod = tm.mk_bv_mul(x, y).unwrap();
        let c = tm.mk_bv_const(851, 10);
        let f = tm.mk_eq(prod, c);
        let mut ctx = PortfolioContext::new(3);
        ctx.assert_term(f);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        ctx.push();
        let zero = tm.mk_bv_const(0, 10);
        let g = tm.mk_bv_ult(x, zero).unwrap(); // impossible
        ctx.assert_term(g);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unsat);
        ctx.pop();
        let reports = ctx.worker_reports();
        let summed: u64 = reports.iter().map(|r| r.stats.conflicts).sum();
        assert_eq!(ctx.stats().conflicts, summed);
        let rebuilds: u64 = reports.iter().map(|r| r.stats.rebuilds).sum();
        assert_eq!(ctx.stats().rebuilds, rebuilds);
        // The pop crossed encoded assertions, so every rebuild-style worker
        // paid a rebuild — and it must show in the portfolio totals even if
        // that worker never won a race.
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        let rebuild_workers = ctx.profiles.iter().filter(|p| !p.incremental).count() as u64;
        assert!(ctx.stats().rebuilds >= rebuild_workers);
    }

    #[test]
    fn external_interrupt_turns_checks_unknown() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        let f = lt(&mut tm, x, 40, 6);
        let mut ctx = PortfolioContext::new(2);
        ctx.assert_term(f);
        let flag = InterruptFlag::new();
        Oracle::set_interrupt(&mut ctx, flag.clone());
        flag.set();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unknown);
        assert!(ctx.model_value(&tm, x).is_none());
        flag.clear();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
    }

    #[test]
    fn worker_probe_reads_zero_between_checks() {
        let probe = Arc::new(AtomicUsize::new(0));
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        let f = lt(&mut tm, x, 40, 6);
        let mut ctx = PortfolioContext::new(3);
        ctx.set_worker_probe(Arc::clone(&probe));
        ctx.assert_term(f);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        assert_eq!(probe.load(Ordering::SeqCst), 0, "worker thread leaked");
    }

    #[test]
    fn pool_threads_are_constant_across_checks_and_drain_on_drop() {
        // The persistent-runtime contract: the OS threads are created once
        // at construction, every check is a batch served by the same pool
        // (pool_reuses counts them), and dropping the oracle joins them.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(5));
        let f = lt(&mut tm, x, 20, 5);
        let mut ctx = PortfolioContext::new(3);
        ctx.track_var(x);
        ctx.assert_term(f);
        let handle = ctx.pool_handle();
        assert_eq!(handle.threads_spawned(), 3);
        for _ in 0..100 {
            ctx.push();
            assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
            ctx.pop();
        }
        assert_eq!(handle.threads_spawned(), 3, "a check spawned a thread");
        assert_eq!(handle.live_threads(), 3);
        assert_eq!(ctx.stats().pool_reuses, 100);
        drop(ctx);
        assert_eq!(handle.live_threads(), 0, "pool thread outlived its oracle");
    }

    #[test]
    fn cancellation_mid_check_leaves_the_pool_reusable() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        let f = lt(&mut tm, x, 40, 6);
        let mut ctx = PortfolioContext::new(2);
        ctx.assert_term(f);
        let handle = ctx.pool_handle();
        let flag = InterruptFlag::new();
        Oracle::set_interrupt(&mut ctx, flag.clone());
        flag.set();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unknown);
        // The cancelled batch quiesced; the same threads answer the retry.
        flag.clear();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        assert_eq!(handle.threads_spawned(), 2);
        assert_eq!(ctx.stats().pool_reuses, 2);
    }

    #[test]
    fn popping_an_unchecked_failing_frame_recovers() {
        // An unsupported assertion inside a frame errors the check; popping
        // the frame retires it (in the cache queue too) and the next check
        // answers for the surviving formula.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let f = lt(&mut tm, x, 5, 4);
        let r = tm.mk_var("r", Sort::Real);
        let rr = tm.mk_real_mul(r, r).unwrap(); // non-linear: unsupported
        let one = tm.mk_real_const(pact_ir::Rational::ONE);
        let bad = tm.mk_real_lt(rr, one).unwrap();
        let mut ctx = PortfolioContext::new(2);
        ctx.assert_term(f);
        ctx.push();
        ctx.assert_term(bad);
        assert!(ctx.check(&mut tm).is_err());
        assert!(ctx.check(&mut tm).is_err());
        ctx.pop();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
    }

    #[test]
    #[should_panic(expected = "pop without matching push")]
    fn unbalanced_pop_panics() {
        let mut ctx = PortfolioContext::new(2);
        ctx.pop();
    }
}
