//! The incremental SMT oracle used by the counting algorithms.

use std::collections::HashMap;

use pact_ir::{BvValue, Rational, TermId, TermManager, Value};
use pact_sat::{InterruptFlag, SatOptions};

use crate::bitblast::Encoder;
use crate::dpllt::solve_with_theory;
use crate::error::{Result, SolverError};
use crate::model;
use crate::preprocess::{preprocess, Preprocessed};

/// Preprocessing results keyed by the raw asserted term, computed once by
/// the portfolio and cube front-ends so their workers can encode against a
/// shared `&TermManager` without mutating it.
pub(crate) type PreprocessCache = HashMap<TermId, Preprocessed>;

/// Warms `cache` for every pending raw assertion in `to_warm` (entries are
/// `(frame depth, term)`; the depth tag is the caller's, used to retire
/// entries on `pop`).  This is the only `&mut TermManager` work of a
/// parallel backend's check.  On failure the offending entry (and
/// everything after it) stays pending, so a retried check reports the same
/// error, while popping the frame that asserted it retires the entry.
///
/// With hash-consed terms, a structurally identical assertion re-asserted
/// after a `pop` (the galloping search re-blocks the same models across
/// overlapping cells) resolves to the same `TermId` and is served straight
/// from the cache — counted in `hits`.
pub(crate) fn warm_preprocess_cache(
    to_warm: &mut Vec<(usize, TermId)>,
    cache: &mut PreprocessCache,
    tm: &mut TermManager,
    hits: &mut u64,
) -> Result<()> {
    let mut warmed = 0;
    let result = loop {
        let Some(&(_, t)) = to_warm.get(warmed) else {
            break Ok(());
        };
        if cache.contains_key(&t) {
            *hits += 1;
            warmed += 1;
            continue;
        }
        match preprocess(tm, &[t]) {
            Ok(pre) => {
                cache.insert(t, pre);
                warmed += 1;
            }
            Err(error) => break Err(error),
        }
    };
    to_warm.drain(..warmed);
    result
}

/// Decrements a live-worker probe even if the worker panics; the parallel
/// backends' scoped threads enter one so leak tests (and service metrics)
/// can observe that no worker outlives its `check`.
pub(crate) struct LiveGuard(std::sync::Arc<std::sync::atomic::AtomicUsize>);

impl LiveGuard {
    pub(crate) fn enter(probe: std::sync::Arc<std::sync::atomic::AtomicUsize>) -> Self {
        probe.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        LiveGuard(probe)
    }
}

impl Drop for LiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
    }
}

/// How a `check` may touch the term manager.
///
/// The normal path owns it exclusively: preprocessing interns rewritten
/// terms directly.  The portfolio race path shares it read-only across
/// worker threads and supplies every assertion's preprocessing from a cache
/// warmed up front (interning is the *only* mutation the check pipeline
/// performs, so everything downstream of preprocessing works on `&TermManager`).
pub(crate) enum TmView<'a> {
    /// Exclusive access; preprocessing happens inline.
    Exclusive(&'a mut TermManager),
    /// Shared read-only access with pre-computed preprocessing.
    Shared(&'a TermManager, &'a PreprocessCache),
}

impl TmView<'_> {
    pub(crate) fn tm(&self) -> &TermManager {
        match self {
            TmView::Exclusive(tm) => tm,
            TmView::Shared(tm, _) => tm,
        }
    }

    /// Preprocessing of `t`, served from the caller's term-id-keyed `local`
    /// cache when the identical term was preprocessed before (hash consing
    /// makes structural identity id identity).  Cache hits are counted in
    /// `hits`; misses are computed (Exclusive) or fetched from the shared
    /// warm cache (Shared) and memoized.
    pub(crate) fn preprocess(
        &mut self,
        t: TermId,
        local: &mut PreprocessCache,
        hits: &mut u64,
    ) -> Result<Preprocessed> {
        if let Some(pre) = local.get(&t) {
            *hits += 1;
            return Ok(pre.clone());
        }
        let pre = match self {
            TmView::Exclusive(tm) => preprocess(tm, &[t])?,
            TmView::Shared(_, cache) => cache.get(&t).cloned().ok_or_else(|| {
                SolverError::Internal(
                    "assertion missing from the shared preprocess cache".to_string(),
                )
            })?,
        };
        local.insert(t, pre.clone());
        Ok(pre)
    }
}

/// Verdict of a [`Context::check`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverResult {
    /// Satisfiable; a model is available.
    Sat,
    /// Unsatisfiable.
    Unsat,
    /// The per-check resource budget was exhausted.
    Unknown,
}

/// Tunable resource limits of the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Maximum CDCL conflicts per `check` call (`None` = unlimited).
    ///
    /// The budget is cumulative across the lazy theory-refinement
    /// iterations of one `check`: however many SAT calls the refinement loop
    /// needs, they share this many conflicts in total.
    pub max_conflicts: Option<u64>,
    /// Maximum lazy theory-refinement iterations per `check` call.
    pub max_theory_iterations: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_conflicts: None,
            max_theory_iterations: 10_000,
        }
    }
}

/// Cumulative statistics over the lifetime of a context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Number of `check` calls answered.
    pub checks: u64,
    /// Number of SAT-solver invocations (≥ `checks` because of the lazy
    /// theory loop).
    pub sat_calls: u64,
    /// Number of simplex feasibility checks.
    pub theory_checks: u64,
    /// Number of theory-refinement lemmas learnt.
    pub theory_lemmas: u64,
    /// Number of encoder rebuilds — from `pop` discarding encoded frames or
    /// from `track_var` after a first encode.  A rebuild throws away the
    /// learnt clauses and branching activities of the previous encoder, so
    /// this is the headline cost the incremental backend eliminates.
    pub rebuilds: u64,
    /// Number of CDCL conflicts spent across the oracle's lifetime
    /// (including solvers discarded by rebuilds).
    pub conflicts: u64,
    /// Number of work batches served by a persistent worker pool (portfolio
    /// races and cube conquests answered by long-lived threads instead of a
    /// fresh spawn/join cycle).  0 for the single-engine backends.
    pub pool_reuses: u64,
    /// Number of frame-garbage compactions: an incremental engine re-encoded
    /// its live frames into a fresh solver because retired activation-literal
    /// frames had accumulated past the dead-fraction threshold.  Unlike
    /// `rebuilds` this is *elective* maintenance — the engine still never
    /// rebuilds on `pop`.
    pub compactions: u64,
    /// Guarded assertions (clauses and XOR rows) of retired frames reclaimed
    /// by compactions.
    pub dead_clauses_reclaimed: u64,
    /// Preprocessing results served from a term-id-keyed cache instead of
    /// being recomputed: per-context memoization on re-encodes (rebuild
    /// replays, compaction journal replays) plus, for the parallel
    /// backends, warm-cache hits when a hash-consed assertion recurs across
    /// checks.
    pub preprocess_cache_hits: u64,
}

/// One assertion on the stack: either a term or a native XOR constraint over
/// specific bits of discrete variables.
#[derive(Debug, Clone)]
enum Assertion {
    Term(TermId),
    /// XOR of the chosen bits (`(variable, bit index)`) equals `rhs`.
    XorBits(Vec<(TermId, u32)>, bool),
}

/// The incremental SMT oracle: an assertion stack with push/pop, `check`,
/// and model extraction, in the style of the SMT-LIB command set.
///
/// Internally the discrete part is bit-blasted eagerly into a CDCL solver
/// with native XOR support, and real/float atoms are refined lazily against
/// a simplex core (DPLL(T)).  Within one stack frame the encoding is
/// incremental: new assertions only append clauses, so the repeated
/// model-blocking queries issued by `SaturatingCounter` reuse all previously
/// learnt clauses, mirroring the paper's use of CVC5's incremental mode.
///
/// ```
/// use pact_ir::{TermManager, Sort};
/// use pact_solver::{Context, SolverResult};
///
/// let mut tm = TermManager::new();
/// let x = tm.mk_var("x", Sort::BitVec(8));
/// let c = tm.mk_bv_const(10, 8);
/// let f = tm.mk_bv_ult(x, c).unwrap();
/// let mut ctx = Context::new();
/// ctx.assert_term(f);
/// assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
/// let v = ctx.model_value(&tm, x).unwrap();
/// assert!(v.as_bv().unwrap().as_u128() < 10);
/// ```
#[derive(Debug, Default)]
pub struct Context {
    assertions: Vec<Assertion>,
    frames: Vec<usize>,
    config: SolverConfig,
    stats: OracleStats,
    /// Variables whose bits must always exist (projection variables).
    tracked_vars: Vec<TermId>,
    encoder: Option<Encoder>,
    /// Number of assertions already encoded into `encoder`.
    encoded_up_to: usize,
    /// Simplex witness (indexed by LRA variable) from the last SAT check.
    real_model_values: Vec<Rational>,
    /// Conflicts spent by encoders that were discarded in rebuilds (added to
    /// the live solver's count when reporting [`OracleStats::conflicts`]).
    retired_conflicts: u64,
    /// SAT-level diversification options every (re)built encoder uses.
    sat_options: SatOptions,
    /// Interrupt flags re-installed into every (re)built encoder's solver.
    interrupts: Vec<InterruptFlag>,
    /// Term-id-keyed preprocessing memo.  Never invalidated: a term id is
    /// immutable for the life of its manager lineage, so a rebuild replay
    /// re-encodes from this cache instead of re-running preprocessing.
    preprocess_cache: PreprocessCache,
}

impl Context {
    /// Creates an oracle with default limits.
    pub fn new() -> Self {
        Context::default()
    }

    /// Creates an oracle with the given resource limits.
    pub fn with_config(config: SolverConfig) -> Self {
        Context {
            config,
            ..Context::default()
        }
    }

    /// Creates an oracle with the given resource limits and SAT-level
    /// diversification options (a portfolio worker's constructor).
    pub(crate) fn with_config_and_options(config: SolverConfig, sat_options: SatOptions) -> Self {
        Context {
            config,
            sat_options,
            ..Context::default()
        }
    }

    /// Replaces the interrupt flags watched by the underlying SAT solver
    /// (re-installed across rebuilds); an empty list removes them.
    pub(crate) fn set_interrupt_flags(&mut self, flags: Vec<InterruptFlag>) {
        self.interrupts = flags;
        if let Some(encoder) = self.encoder.as_mut() {
            encoder.sat().set_interrupts(self.interrupts.clone());
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> OracleStats {
        let mut stats = self.stats;
        stats.conflicts = self.retired_conflicts
            + self
                .encoder
                .as_ref()
                .map(|e| e.sat_stats().conflicts)
                .unwrap_or(0);
        stats
    }

    /// Discards the current encoder (counting the rebuild and banking its
    /// conflict count) so the next `check` re-encodes from scratch.
    fn discard_encoder(&mut self) {
        if let Some(encoder) = self.encoder.take() {
            self.retired_conflicts += encoder.sat_stats().conflicts;
            self.stats.rebuilds += 1;
            self.encoded_up_to = 0;
        }
    }

    /// Changes the resource limits for subsequent checks.
    pub fn set_config(&mut self, config: SolverConfig) {
        self.config = config;
    }

    /// Pushes a new assertion-stack frame.
    pub fn push(&mut self) {
        self.frames.push(self.assertions.len());
    }

    /// Pops the most recent frame, discarding its assertions.
    ///
    /// # Panics
    ///
    /// Panics if there is no frame to pop.
    pub fn pop(&mut self) {
        let mark = self.frames.pop().expect("pop without matching push");
        if mark < self.encoded_up_to {
            // Anything already encoded beyond the mark forces a rebuild.
            self.discard_encoder();
        }
        self.assertions.truncate(mark);
    }

    /// Asserts a boolean term.
    pub fn assert_term(&mut self, t: TermId) {
        self.assertions.push(Assertion::Term(t));
    }

    /// Asserts a native XOR constraint over individual bits of discrete
    /// variables: `⊕ bit ⊕ ... = rhs`.
    ///
    /// This is the fast path used by the `H_xor` hash family.
    pub fn assert_xor_bits(&mut self, bits: Vec<(TermId, u32)>, rhs: bool) {
        self.assertions.push(Assertion::XorBits(bits, rhs));
    }

    /// Declares a variable whose bits must exist in every encoding, even if
    /// it never occurs in an assertion (used for projection variables so the
    /// model and the hash constraints range over their full domain).
    pub fn track_var(&mut self, var: TermId) {
        if !self.tracked_vars.contains(&var) {
            self.tracked_vars.push(var);
            // Force re-encoding so the tracked variable's bits exist.  This
            // is a full rebuild like `pop`'s and is accounted identically.
            self.discard_encoder();
        }
    }

    /// Checks satisfiability of the current assertion stack.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Unsupported`] when the formula falls outside
    /// the supported fragment (e.g. non-linear real arithmetic or array
    /// equality).
    pub fn check(&mut self, tm: &mut TermManager) -> Result<SolverResult> {
        self.check_view(TmView::Exclusive(tm))
    }

    /// [`Context::check`] against a shared term manager: every raw assertion
    /// must have its preprocessing supplied through `cache` (the portfolio
    /// warms it before dispatching its racing workers).
    pub(crate) fn check_shared(
        &mut self,
        tm: &TermManager,
        cache: &PreprocessCache,
    ) -> Result<SolverResult> {
        self.check_view(TmView::Shared(tm, cache))
    }

    fn check_view(&mut self, mut view: TmView<'_>) -> Result<SolverResult> {
        self.stats.checks += 1;
        self.ensure_encoded(&mut view)?;
        let encoder = self.encoder.as_mut().expect("encoder exists");
        Ok(solve_with_theory(
            encoder,
            &[],
            self.config.max_conflicts,
            self.config.max_theory_iterations,
            &mut self.stats,
            &mut self.real_model_values,
        ))
    }

    fn ensure_encoded(&mut self, view: &mut TmView<'_>) -> Result<()> {
        if self.encoder.is_none() {
            let mut encoder = Encoder::with_options(self.sat_options);
            encoder.sat().set_interrupts(self.interrupts.clone());
            self.encoder = Some(encoder);
            self.encoded_up_to = 0;
        }
        // Encode tracked variables first so their bits always exist.
        {
            let encoder = self.encoder.as_mut().expect("encoder exists");
            for &v in &self.tracked_vars {
                encoder.ensure_var_bits(view.tm(), v)?;
            }
        }
        if self.encoded_up_to >= self.assertions.len() {
            return Ok(());
        }
        let pending: Vec<Assertion> = self.assertions[self.encoded_up_to..].to_vec();
        for assertion in pending {
            match assertion {
                Assertion::Term(t) => {
                    let pre = view.preprocess(
                        t,
                        &mut self.preprocess_cache,
                        &mut self.stats.preprocess_cache_hits,
                    )?;
                    let tm = view.tm();
                    let encoder = self.encoder.as_mut().expect("encoder exists");
                    for a in pre.assertions.iter().chain(pre.axioms.iter()) {
                        if encoder.try_assert_blocking(tm, *a, None)? {
                            continue;
                        }
                        encoder.assert_term(tm, *a)?;
                    }
                }
                Assertion::XorBits(bits, rhs) => {
                    let tm = view.tm();
                    let encoder = self.encoder.as_mut().expect("encoder exists");
                    let mut lits = Vec::with_capacity(bits.len());
                    for (var, bit) in bits {
                        encoder.ensure_var_bits(tm, var)?;
                        let var_bits = encoder.var_bits(tm, var).ok_or_else(|| {
                            SolverError::Internal("tracked variable has no bits".to_string())
                        })?;
                        let lit = *var_bits.get(bit as usize).ok_or_else(|| {
                            SolverError::Internal(format!(
                                "bit index {bit} out of range for hash constraint"
                            ))
                        })?;
                        lits.push(lit);
                    }
                    encoder.add_xor_over_lits(&lits, rhs);
                }
            }
        }
        self.encoded_up_to = self.assertions.len();
        Ok(())
    }

    /// Value of a variable in the most recent satisfying assignment.
    ///
    /// Discrete variables come from the SAT model; real and float variables
    /// from the simplex witness (floats are reported as their relaxed real
    /// value).  Returns `None` for unsupported sorts, for variables that were
    /// never encoded, or if the last check was not satisfiable.
    pub fn model_value(&self, tm: &TermManager, var: TermId) -> Option<Value> {
        let encoder = self.encoder.as_ref()?;
        model::model_value(encoder, &self.real_model_values, tm, var)
    }

    /// The projected model: the value of each projection variable in the
    /// most recent satisfying assignment, in the order given.
    pub fn projected_model(&self, tm: &TermManager, projection: &[TermId]) -> Option<Vec<BvValue>> {
        let encoder = self.encoder.as_ref()?;
        model::projected_model(encoder, tm, projection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_ir::Sort;

    #[test]
    fn pure_bv_sat_and_model() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let c = tm.mk_bv_const(200, 8);
        let f = tm.mk_bv_ult(c, x).unwrap();
        let mut ctx = Context::new();
        ctx.assert_term(f);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
        assert!(v.as_u128() > 200);
    }

    #[test]
    fn hybrid_bv_lra_interaction() {
        // b < 4 (bit-vector) and r > 0.5 and r < 1.0 (real): satisfiable.
        let mut tm = TermManager::new();
        let b = tm.mk_var("b", Sort::BitVec(4));
        let r = tm.mk_var("r", Sort::Real);
        let four = tm.mk_bv_const(4, 4);
        let f1 = tm.mk_bv_ult(b, four).unwrap();
        let half = tm.mk_real_const(Rational::new(1, 2));
        let one = tm.mk_real_const(Rational::ONE);
        let f2 = tm.mk_real_lt(half, r).unwrap();
        let f3 = tm.mk_real_lt(r, one).unwrap();
        let mut ctx = Context::new();
        ctx.assert_term(f1);
        ctx.assert_term(f2);
        ctx.assert_term(f3);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        let rv = match ctx.model_value(&tm, r).unwrap() {
            Value::Real(v) => v,
            other => panic!("expected real value, got {other:?}"),
        };
        assert!(rv > Rational::new(1, 2) && rv < Rational::ONE);
    }

    #[test]
    fn theory_conflict_makes_formula_unsat() {
        // p selects between r < 0 and r > 1, but also r = 1/2 is asserted,
        // and p is forced both ways through bv constraints -> unsat overall.
        let mut tm = TermManager::new();
        let r = tm.mk_var("r", Sort::Real);
        let zero = tm.mk_real_const(Rational::ZERO);
        let one = tm.mk_real_const(Rational::ONE);
        let f1 = tm.mk_real_lt(r, zero).unwrap();
        let f2 = tm.mk_real_lt(one, r).unwrap();
        let both = tm.mk_and([f1, f2]);
        let mut ctx = Context::new();
        ctx.assert_term(both);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unsat);
    }

    #[test]
    fn disjunction_over_real_atoms_needs_refinement() {
        // (r < 0 ∨ r > 1) ∧ 0 <= r ∧ r <= 2  is satisfiable with r in (1, 2].
        let mut tm = TermManager::new();
        let r = tm.mk_var("r", Sort::Real);
        let zero = tm.mk_real_const(Rational::ZERO);
        let one = tm.mk_real_const(Rational::ONE);
        let two = tm.mk_real_const(Rational::from_int(2));
        let lt0 = tm.mk_real_lt(r, zero).unwrap();
        let gt1 = tm.mk_real_lt(one, r).unwrap();
        let disj = tm.mk_or([lt0, gt1]);
        let ge0 = tm.mk_real_le(zero, r).unwrap();
        let le2 = tm.mk_real_le(r, two).unwrap();
        let mut ctx = Context::new();
        ctx.assert_term(disj);
        ctx.assert_term(ge0);
        ctx.assert_term(le2);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        let rv = match ctx.model_value(&tm, r).unwrap() {
            Value::Real(v) => v,
            other => panic!("expected real value, got {other:?}"),
        };
        assert!(
            rv > Rational::ONE && rv <= Rational::from_int(2),
            "r = {rv}"
        );
    }

    #[test]
    fn push_pop_restores_satisfiability() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let three = tm.mk_bv_const(3, 4);
        let f = tm.mk_bv_ult(x, three).unwrap();
        let mut ctx = Context::new();
        ctx.assert_term(f);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        ctx.push();
        let zero = tm.mk_bv_const(0, 4);
        let g = tm.mk_bv_ult(x, zero).unwrap(); // impossible
        ctx.assert_term(g);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unsat);
        ctx.pop();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        assert!(ctx.stats().rebuilds >= 1);
    }

    #[test]
    fn enumeration_with_blocking_within_a_frame() {
        // x < 3 on 4 bits has exactly 3 projected models.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let three = tm.mk_bv_const(3, 4);
        let f = tm.mk_bv_ult(x, three).unwrap();
        let mut ctx = Context::new();
        ctx.track_var(x);
        ctx.assert_term(f);
        let mut seen = Vec::new();
        loop {
            match ctx.check(&mut tm).unwrap() {
                SolverResult::Sat => {
                    let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
                    assert!(v.as_u128() < 3);
                    assert!(!seen.contains(&v.as_u128()), "model repeated");
                    seen.push(v.as_u128());
                    let c = tm.mk_bv_value(v);
                    let eq = tm.mk_eq(x, c);
                    let block = tm.mk_not(eq);
                    ctx.assert_term(block);
                }
                SolverResult::Unsat => break,
                SolverResult::Unknown => panic!("unexpected unknown"),
            }
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn xor_bits_assertion_halves_the_space() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(3));
        let mut ctx = Context::new();
        ctx.track_var(x);
        ctx.assert_xor_bits(vec![(x, 0), (x, 1), (x, 2)], true);
        let mut count = 0;
        loop {
            match ctx.check(&mut tm).unwrap() {
                SolverResult::Sat => {
                    count += 1;
                    assert!(count <= 4);
                    let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
                    assert_eq!(v.as_u128().count_ones() % 2, 1);
                    let c = tm.mk_bv_value(v);
                    let eq = tm.mk_eq(x, c);
                    let block = tm.mk_not(eq);
                    ctx.assert_term(block);
                }
                SolverResult::Unsat => break,
                SolverResult::Unknown => panic!("unexpected unknown"),
            }
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn arrays_and_uf_are_solved_via_preprocessing() {
        let mut tm = TermManager::new();
        let a = tm.mk_var("a", Sort::array(Sort::BitVec(2), Sort::BitVec(4)));
        let i = tm.mk_var("i", Sort::BitVec(2));
        let j = tm.mk_var("j", Sort::BitVec(2));
        let si = tm.mk_select(a, i).unwrap();
        let sj = tm.mk_select(a, j).unwrap();
        let idx_eq = tm.mk_eq(i, j);
        let val_neq = {
            let eq = tm.mk_eq(si, sj);
            tm.mk_not(eq)
        };
        // i = j but a[i] != a[j] violates congruence: unsat.
        let mut ctx = Context::new();
        ctx.assert_term(idx_eq);
        ctx.assert_term(val_neq);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unsat);

        let f = tm.declare_fun("f", vec![Sort::BitVec(4)], Sort::BitVec(4));
        let x = tm.mk_var("x", Sort::BitVec(4));
        let y = tm.mk_var("y", Sort::BitVec(4));
        let fx = tm.mk_apply(f, vec![x]).unwrap();
        let fy = tm.mk_apply(f, vec![y]).unwrap();
        let xeqy = tm.mk_eq(x, y);
        let fneq = {
            let eq = tm.mk_eq(fx, fy);
            tm.mk_not(eq)
        };
        let mut ctx2 = Context::new();
        ctx2.assert_term(xeqy);
        ctx2.assert_term(fneq);
        assert_eq!(ctx2.check(&mut tm).unwrap(), SolverResult::Unsat);
    }

    #[test]
    fn unknown_on_tiny_budget() {
        // A multiplication constraint with a 1-conflict budget.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(10));
        let y = tm.mk_var("y", Sort::BitVec(10));
        let prod = tm.mk_bv_mul(x, y).unwrap();
        let c = tm.mk_bv_const(851, 10);
        let f = tm.mk_eq(prod, c);
        let two = tm.mk_bv_const(2, 10);
        let g1 = tm.mk_bv_ult(two, x).unwrap();
        let g2 = tm.mk_bv_ult(two, y).unwrap();
        let mut ctx = Context::with_config(SolverConfig {
            max_conflicts: Some(1),
            max_theory_iterations: 10,
        });
        ctx.assert_term(f);
        ctx.assert_term(g1);
        ctx.assert_term(g2);
        let verdict = ctx.check(&mut tm).unwrap();
        assert!(matches!(verdict, SolverResult::Unknown | SolverResult::Sat));
    }

    #[test]
    fn track_var_after_encoding_counts_as_a_rebuild() {
        // Regression: `track_var` on an already-encoded context forces a
        // full re-encode exactly like `pop` does, and must show up in
        // `OracleStats::rebuilds` so before/after measurements can be
        // trusted.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let three = tm.mk_bv_const(3, 4);
        let f = tm.mk_bv_ult(x, three).unwrap();
        let mut ctx = Context::new();
        ctx.track_var(x); // before any encoding: no rebuild
        ctx.assert_term(f);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        assert_eq!(ctx.stats().rebuilds, 0);

        let y = tm.mk_var("y", Sort::BitVec(4));
        ctx.track_var(y); // silent re-encode: must be counted
        assert_eq!(ctx.stats().rebuilds, 1);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        assert!(ctx.projected_model(&tm, &[x, y]).is_some());

        ctx.track_var(y); // already tracked: no-op, no rebuild
        assert_eq!(ctx.stats().rebuilds, 1);
    }

    #[test]
    fn rebuilds_preserve_the_cumulative_conflict_count() {
        // Conflicts spent by an encoder that a rebuild throws away must stay
        // in the stats, otherwise rebuild-heavy runs under-report work.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(10));
        let y = tm.mk_var("y", Sort::BitVec(10));
        let prod = tm.mk_bv_mul(x, y).unwrap();
        let c = tm.mk_bv_const(851, 10);
        let f = tm.mk_eq(prod, c);
        let mut ctx = Context::new();
        ctx.assert_term(f);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        let before = ctx.stats().conflicts;
        ctx.push();
        let zero = tm.mk_bv_const(0, 10);
        let g = tm.mk_bv_ult(x, zero).unwrap(); // impossible
        ctx.assert_term(g);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unsat);
        let mid = ctx.stats().conflicts;
        assert!(mid >= before);
        ctx.pop(); // rebuild: the discarded solver's conflicts are banked
        assert!(ctx.stats().rebuilds >= 1);
        assert!(ctx.stats().conflicts >= mid);
    }

    #[test]
    fn rebuild_replay_serves_preprocessing_from_the_cache() {
        // The first encode of each assertion preprocesses it and memoizes
        // the result under its term id; a pop-forced rebuild replays the
        // surviving assertions from that cache instead of re-running
        // preprocessing — visible in `preprocess_cache_hits`, with the
        // verdict unchanged.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let c = tm.mk_bv_const(200, 8);
        let f = tm.mk_bv_ult(c, x).unwrap();
        let mut ctx = Context::new();
        ctx.assert_term(f);
        ctx.push();
        let d = tm.mk_bv_const(240, 8);
        let g = tm.mk_bv_ult(x, d).unwrap();
        ctx.assert_term(g);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        assert_eq!(ctx.stats().preprocess_cache_hits, 0);
        ctx.pop(); // discards the encoder; the next check re-encodes `f`
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        let stats = ctx.stats();
        assert!(stats.rebuilds >= 1);
        assert!(stats.preprocess_cache_hits >= 1);
    }

    #[test]
    fn conflict_budget_is_cumulative_across_theory_iterations() {
        // Regression: the budget used to be re-armed for every SAT call of
        // the lazy theory loop, so one `check` could spend
        // `max_conflicts × max_theory_iterations` conflicts.  Five
        // independent real disjunctions, each contradicted by an equality,
        // give 2^5 boolean atom combinations that simplex refutes one lemma
        // at a time; as the lemmas pile up the SAT calls start conflicting
        // (64 conflicts over ~100 calls unbudgeted).  The whole `check` must
        // stay within the budget — the old per-call re-arming blew through
        // it more than tenfold on this formula.
        let mut tm = TermManager::new();
        let zero = tm.mk_real_const(Rational::ZERO);
        let one = tm.mk_real_const(Rational::ONE);
        let half = tm.mk_real_const(Rational::new(1, 2));
        let budget = 5;
        let mut ctx = Context::with_config(SolverConfig {
            max_conflicts: Some(budget),
            max_theory_iterations: 100,
        });
        for i in 0..5 {
            let r = tm.mk_var(&format!("r{i}"), Sort::Real);
            let lt0 = tm.mk_real_lt(r, zero).unwrap();
            let gt1 = tm.mk_real_lt(one, r).unwrap();
            let disj = tm.mk_or([lt0, gt1]);
            let eq_half = tm.mk_eq(r, half);
            ctx.assert_term(disj);
            ctx.assert_term(eq_half);
        }
        let verdict = ctx.check(&mut tm).unwrap();
        assert_eq!(verdict, SolverResult::Unknown);
        assert!(
            ctx.stats().conflicts <= budget,
            "one check spent {} conflicts against a budget of {budget}",
            ctx.stats().conflicts
        );
        // The same check without a conflict budget spends far more than
        // `budget` conflicts over the same iteration allowance — the
        // difference the old per-call re-arming silently re-introduced.
        let mut free = Context::with_config(SolverConfig {
            max_conflicts: None,
            max_theory_iterations: 100,
        });
        for i in 0..5 {
            let r = tm.mk_var(&format!("r{i}"), Sort::Real);
            let lt0 = tm.mk_real_lt(r, zero).unwrap();
            let gt1 = tm.mk_real_lt(one, r).unwrap();
            let disj = tm.mk_or([lt0, gt1]);
            let eq_half = tm.mk_eq(r, half);
            free.assert_term(disj);
            free.assert_term(eq_half);
        }
        free.check(&mut tm).unwrap();
        assert!(free.stats().conflicts > budget);
    }

    #[test]
    fn float_predicates_are_relaxed_to_reals() {
        let mut tm = TermManager::new();
        let u = tm.mk_var("u", Sort::float32());
        let v = tm.mk_var("v", Sort::float32());
        let lt = tm.mk_fp_lt(u, v).unwrap();
        let ge = tm.mk_fp_le(v, u).unwrap();
        let mut ctx = Context::new();
        ctx.assert_term(lt);
        ctx.assert_term(ge);
        // u < v and v <= u is unsatisfiable under the real relaxation.
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unsat);
    }
}
