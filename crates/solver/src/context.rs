//! The incremental SMT oracle used by the counting algorithms.

use pact_ir::{BvValue, Rational, Sort, TermId, TermManager, Value};
use pact_lra::{LraResult, Simplex};
use pact_sat::{Lit, SatResult};

use crate::bitblast::{atom_value_in_model, Encoder};
use crate::error::{Result, SolverError};
use crate::preprocess::preprocess;

/// Verdict of a [`Context::check`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverResult {
    /// Satisfiable; a model is available.
    Sat,
    /// Unsatisfiable.
    Unsat,
    /// The per-check resource budget was exhausted.
    Unknown,
}

/// Tunable resource limits of the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Maximum CDCL conflicts per `check` call (`None` = unlimited).
    pub max_conflicts: Option<u64>,
    /// Maximum lazy theory-refinement iterations per `check` call.
    pub max_theory_iterations: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_conflicts: None,
            max_theory_iterations: 10_000,
        }
    }
}

/// Cumulative statistics over the lifetime of a context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Number of `check` calls answered.
    pub checks: u64,
    /// Number of SAT-solver invocations (≥ `checks` because of the lazy
    /// theory loop).
    pub sat_calls: u64,
    /// Number of simplex feasibility checks.
    pub theory_checks: u64,
    /// Number of theory-refinement lemmas learnt.
    pub theory_lemmas: u64,
    /// Number of encoder rebuilds caused by `pop`.
    pub rebuilds: u64,
}

/// One assertion on the stack: either a term or a native XOR constraint over
/// specific bits of discrete variables.
#[derive(Debug, Clone)]
enum Assertion {
    Term(TermId),
    /// XOR of the chosen bits (`(variable, bit index)`) equals `rhs`.
    XorBits(Vec<(TermId, u32)>, bool),
}

/// The incremental SMT oracle: an assertion stack with push/pop, `check`,
/// and model extraction, in the style of the SMT-LIB command set.
///
/// Internally the discrete part is bit-blasted eagerly into a CDCL solver
/// with native XOR support, and real/float atoms are refined lazily against
/// a simplex core (DPLL(T)).  Within one stack frame the encoding is
/// incremental: new assertions only append clauses, so the repeated
/// model-blocking queries issued by `SaturatingCounter` reuse all previously
/// learnt clauses, mirroring the paper's use of CVC5's incremental mode.
///
/// ```
/// use pact_ir::{TermManager, Sort};
/// use pact_solver::{Context, SolverResult};
///
/// let mut tm = TermManager::new();
/// let x = tm.mk_var("x", Sort::BitVec(8));
/// let c = tm.mk_bv_const(10, 8);
/// let f = tm.mk_bv_ult(x, c).unwrap();
/// let mut ctx = Context::new();
/// ctx.assert_term(f);
/// assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
/// let v = ctx.model_value(&tm, x).unwrap();
/// assert!(v.as_bv().unwrap().as_u128() < 10);
/// ```
#[derive(Debug, Default)]
pub struct Context {
    assertions: Vec<Assertion>,
    frames: Vec<usize>,
    config: SolverConfig,
    stats: OracleStats,
    /// Variables whose bits must always exist (projection variables).
    tracked_vars: Vec<TermId>,
    encoder: Option<Encoder>,
    /// Number of assertions already encoded into `encoder`.
    encoded_up_to: usize,
    /// Simplex witness (indexed by LRA variable) from the last SAT check.
    real_model_values: Vec<Rational>,
}

impl Context {
    /// Creates an oracle with default limits.
    pub fn new() -> Self {
        Context::default()
    }

    /// Creates an oracle with the given resource limits.
    pub fn with_config(config: SolverConfig) -> Self {
        Context {
            config,
            ..Context::default()
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> OracleStats {
        self.stats
    }

    /// Changes the resource limits for subsequent checks.
    pub fn set_config(&mut self, config: SolverConfig) {
        self.config = config;
    }

    /// Pushes a new assertion-stack frame.
    pub fn push(&mut self) {
        self.frames.push(self.assertions.len());
    }

    /// Pops the most recent frame, discarding its assertions.
    ///
    /// # Panics
    ///
    /// Panics if there is no frame to pop.
    pub fn pop(&mut self) {
        let mark = self.frames.pop().expect("pop without matching push");
        if mark < self.encoded_up_to {
            // Anything already encoded beyond the mark forces a rebuild.
            self.encoder = None;
            self.encoded_up_to = 0;
            self.stats.rebuilds += 1;
        }
        self.assertions.truncate(mark);
    }

    /// Asserts a boolean term.
    pub fn assert_term(&mut self, t: TermId) {
        self.assertions.push(Assertion::Term(t));
    }

    /// Asserts a native XOR constraint over individual bits of discrete
    /// variables: `⊕ bit ⊕ ... = rhs`.
    ///
    /// This is the fast path used by the `H_xor` hash family.
    pub fn assert_xor_bits(&mut self, bits: Vec<(TermId, u32)>, rhs: bool) {
        self.assertions.push(Assertion::XorBits(bits, rhs));
    }

    /// Declares a variable whose bits must exist in every encoding, even if
    /// it never occurs in an assertion (used for projection variables so the
    /// model and the hash constraints range over their full domain).
    pub fn track_var(&mut self, var: TermId) {
        if !self.tracked_vars.contains(&var) {
            self.tracked_vars.push(var);
            // Force re-encoding so the tracked variable's bits exist.
            if self.encoder.is_some() {
                self.encoder = None;
                self.encoded_up_to = 0;
            }
        }
    }

    /// Checks satisfiability of the current assertion stack.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Unsupported`] when the formula falls outside
    /// the supported fragment (e.g. non-linear real arithmetic or array
    /// equality).
    pub fn check(&mut self, tm: &mut TermManager) -> Result<SolverResult> {
        self.stats.checks += 1;
        self.ensure_encoded(tm)?;
        let max_conflicts = self.config.max_conflicts;
        let max_iters = self.config.max_theory_iterations;
        self.encoder
            .as_mut()
            .expect("encoder exists")
            .sat()
            .set_conflict_budget(max_conflicts);

        for _ in 0..max_iters {
            self.stats.sat_calls += 1;
            let verdict = self
                .encoder
                .as_mut()
                .expect("encoder exists")
                .sat()
                .solve(&[]);
            match verdict {
                SatResult::Unsat => return Ok(SolverResult::Unsat),
                SatResult::Unknown => return Ok(SolverResult::Unknown),
                SatResult::Sat => {}
            }
            // Collect the theory constraints implied by the boolean model.
            let (mut simplex, participating) = {
                let encoder = self.encoder.as_mut().expect("encoder exists");
                let model: Vec<bool> = encoder.sat().model().to_vec();
                let mut simplex = Simplex::new(encoder.num_lra_vars());
                let mut participating: Vec<Lit> = Vec::new();
                for atom in encoder.atoms() {
                    match atom_value_in_model(&model, atom.lit) {
                        Some(true) => {
                            simplex.add_constraint(atom.when_true.clone());
                            participating.push(atom.lit);
                        }
                        Some(false) => {
                            if let Some(neg) = &atom.when_false {
                                simplex.add_constraint(neg.clone());
                                participating.push(!atom.lit);
                            }
                        }
                        None => {}
                    }
                }
                (simplex, participating)
            };
            if participating.is_empty() {
                self.real_model_values.clear();
                return Ok(SolverResult::Sat);
            }
            self.stats.theory_checks += 1;
            match simplex.check() {
                LraResult::Sat => {
                    self.real_model_values = simplex.model();
                    return Ok(SolverResult::Sat);
                }
                LraResult::Unsat => {
                    // Refinement lemma: at least one participating atom flips.
                    self.stats.theory_lemmas += 1;
                    let lemma: Vec<Lit> = participating.iter().map(|&l| !l).collect();
                    let consistent = self
                        .encoder
                        .as_mut()
                        .expect("encoder exists")
                        .sat()
                        .add_clause(&lemma);
                    if !consistent {
                        return Ok(SolverResult::Unsat);
                    }
                }
            }
        }
        Ok(SolverResult::Unknown)
    }

    fn ensure_encoded(&mut self, tm: &mut TermManager) -> Result<()> {
        if self.encoder.is_none() {
            self.encoder = Some(Encoder::new());
            self.encoded_up_to = 0;
        }
        // Encode tracked variables first so their bits always exist.
        {
            let encoder = self.encoder.as_mut().expect("encoder exists");
            for &v in &self.tracked_vars {
                encoder.ensure_var_bits(tm, v)?;
            }
        }
        if self.encoded_up_to >= self.assertions.len() {
            return Ok(());
        }
        let pending: Vec<Assertion> = self.assertions[self.encoded_up_to..].to_vec();
        for assertion in pending {
            match assertion {
                Assertion::Term(t) => {
                    let pre = preprocess(tm, &[t])?;
                    let encoder = self.encoder.as_mut().expect("encoder exists");
                    for a in pre.assertions.iter().chain(pre.axioms.iter()) {
                        encoder.assert_term(tm, *a)?;
                    }
                }
                Assertion::XorBits(bits, rhs) => {
                    let encoder = self.encoder.as_mut().expect("encoder exists");
                    let mut lits = Vec::with_capacity(bits.len());
                    for (var, bit) in bits {
                        encoder.ensure_var_bits(tm, var)?;
                        let var_bits = encoder.var_bits(tm, var).ok_or_else(|| {
                            SolverError::Internal("tracked variable has no bits".to_string())
                        })?;
                        let lit = *var_bits.get(bit as usize).ok_or_else(|| {
                            SolverError::Internal(format!(
                                "bit index {bit} out of range for hash constraint"
                            ))
                        })?;
                        lits.push(lit);
                    }
                    encoder.add_xor_over_lits(&lits, rhs);
                }
            }
        }
        self.encoded_up_to = self.assertions.len();
        Ok(())
    }

    /// Value of a variable in the most recent satisfying assignment.
    ///
    /// Discrete variables come from the SAT model; real and float variables
    /// from the simplex witness (floats are reported as their relaxed real
    /// value).  Returns `None` for unsupported sorts, for variables that were
    /// never encoded, or if the last check was not satisfiable.
    pub fn model_value(&self, tm: &TermManager, var: TermId) -> Option<Value> {
        let encoder = self.encoder.as_ref()?;
        match tm.sort(var) {
            Sort::Bool => encoder
                .model_bits(tm, var)
                .map(|v| Value::Bool(v.as_u128() == 1)),
            Sort::BitVec(_) => encoder.model_bits(tm, var).map(Value::Bv),
            Sort::BoundedInt { .. } => encoder
                .model_bits(tm, var)
                .map(|v| Value::Int(v.as_u128() as i64)),
            Sort::Real | Sort::Float { .. } => {
                let lra = encoder.lra_var(var)?;
                let value = self
                    .real_model_values
                    .get(lra.index())
                    .copied()
                    .unwrap_or(Rational::ZERO);
                Some(Value::Real(value))
            }
            Sort::Array { .. } => None,
        }
    }

    /// The projected model: the value of each projection variable in the
    /// most recent satisfying assignment, in the order given.
    pub fn projected_model(&self, tm: &TermManager, projection: &[TermId]) -> Option<Vec<BvValue>> {
        let encoder = self.encoder.as_ref()?;
        projection
            .iter()
            .map(|&v| encoder.model_bits(tm, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_ir::Sort;

    #[test]
    fn pure_bv_sat_and_model() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let c = tm.mk_bv_const(200, 8);
        let f = tm.mk_bv_ult(c, x).unwrap();
        let mut ctx = Context::new();
        ctx.assert_term(f);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
        assert!(v.as_u128() > 200);
    }

    #[test]
    fn hybrid_bv_lra_interaction() {
        // b < 4 (bit-vector) and r > 0.5 and r < 1.0 (real): satisfiable.
        let mut tm = TermManager::new();
        let b = tm.mk_var("b", Sort::BitVec(4));
        let r = tm.mk_var("r", Sort::Real);
        let four = tm.mk_bv_const(4, 4);
        let f1 = tm.mk_bv_ult(b, four).unwrap();
        let half = tm.mk_real_const(Rational::new(1, 2));
        let one = tm.mk_real_const(Rational::ONE);
        let f2 = tm.mk_real_lt(half, r).unwrap();
        let f3 = tm.mk_real_lt(r, one).unwrap();
        let mut ctx = Context::new();
        ctx.assert_term(f1);
        ctx.assert_term(f2);
        ctx.assert_term(f3);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        let rv = match ctx.model_value(&tm, r).unwrap() {
            Value::Real(v) => v,
            other => panic!("expected real value, got {other:?}"),
        };
        assert!(rv > Rational::new(1, 2) && rv < Rational::ONE);
    }

    #[test]
    fn theory_conflict_makes_formula_unsat() {
        // p selects between r < 0 and r > 1, but also r = 1/2 is asserted,
        // and p is forced both ways through bv constraints -> unsat overall.
        let mut tm = TermManager::new();
        let r = tm.mk_var("r", Sort::Real);
        let zero = tm.mk_real_const(Rational::ZERO);
        let one = tm.mk_real_const(Rational::ONE);
        let f1 = tm.mk_real_lt(r, zero).unwrap();
        let f2 = tm.mk_real_lt(one, r).unwrap();
        let both = tm.mk_and([f1, f2]);
        let mut ctx = Context::new();
        ctx.assert_term(both);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unsat);
    }

    #[test]
    fn disjunction_over_real_atoms_needs_refinement() {
        // (r < 0 ∨ r > 1) ∧ 0 <= r ∧ r <= 2  is satisfiable with r in (1, 2].
        let mut tm = TermManager::new();
        let r = tm.mk_var("r", Sort::Real);
        let zero = tm.mk_real_const(Rational::ZERO);
        let one = tm.mk_real_const(Rational::ONE);
        let two = tm.mk_real_const(Rational::from_int(2));
        let lt0 = tm.mk_real_lt(r, zero).unwrap();
        let gt1 = tm.mk_real_lt(one, r).unwrap();
        let disj = tm.mk_or([lt0, gt1]);
        let ge0 = tm.mk_real_le(zero, r).unwrap();
        let le2 = tm.mk_real_le(r, two).unwrap();
        let mut ctx = Context::new();
        ctx.assert_term(disj);
        ctx.assert_term(ge0);
        ctx.assert_term(le2);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        let rv = match ctx.model_value(&tm, r).unwrap() {
            Value::Real(v) => v,
            other => panic!("expected real value, got {other:?}"),
        };
        assert!(
            rv > Rational::ONE && rv <= Rational::from_int(2),
            "r = {rv}"
        );
    }

    #[test]
    fn push_pop_restores_satisfiability() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let three = tm.mk_bv_const(3, 4);
        let f = tm.mk_bv_ult(x, three).unwrap();
        let mut ctx = Context::new();
        ctx.assert_term(f);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        ctx.push();
        let zero = tm.mk_bv_const(0, 4);
        let g = tm.mk_bv_ult(x, zero).unwrap(); // impossible
        ctx.assert_term(g);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unsat);
        ctx.pop();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        assert!(ctx.stats().rebuilds >= 1);
    }

    #[test]
    fn enumeration_with_blocking_within_a_frame() {
        // x < 3 on 4 bits has exactly 3 projected models.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let three = tm.mk_bv_const(3, 4);
        let f = tm.mk_bv_ult(x, three).unwrap();
        let mut ctx = Context::new();
        ctx.track_var(x);
        ctx.assert_term(f);
        let mut seen = Vec::new();
        loop {
            match ctx.check(&mut tm).unwrap() {
                SolverResult::Sat => {
                    let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
                    assert!(v.as_u128() < 3);
                    assert!(!seen.contains(&v.as_u128()), "model repeated");
                    seen.push(v.as_u128());
                    let c = tm.mk_bv_value(v);
                    let eq = tm.mk_eq(x, c);
                    let block = tm.mk_not(eq);
                    ctx.assert_term(block);
                }
                SolverResult::Unsat => break,
                SolverResult::Unknown => panic!("unexpected unknown"),
            }
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn xor_bits_assertion_halves_the_space() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(3));
        let mut ctx = Context::new();
        ctx.track_var(x);
        ctx.assert_xor_bits(vec![(x, 0), (x, 1), (x, 2)], true);
        let mut count = 0;
        loop {
            match ctx.check(&mut tm).unwrap() {
                SolverResult::Sat => {
                    count += 1;
                    assert!(count <= 4);
                    let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
                    assert_eq!(v.as_u128().count_ones() % 2, 1);
                    let c = tm.mk_bv_value(v);
                    let eq = tm.mk_eq(x, c);
                    let block = tm.mk_not(eq);
                    ctx.assert_term(block);
                }
                SolverResult::Unsat => break,
                SolverResult::Unknown => panic!("unexpected unknown"),
            }
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn arrays_and_uf_are_solved_via_preprocessing() {
        let mut tm = TermManager::new();
        let a = tm.mk_var("a", Sort::array(Sort::BitVec(2), Sort::BitVec(4)));
        let i = tm.mk_var("i", Sort::BitVec(2));
        let j = tm.mk_var("j", Sort::BitVec(2));
        let si = tm.mk_select(a, i).unwrap();
        let sj = tm.mk_select(a, j).unwrap();
        let idx_eq = tm.mk_eq(i, j);
        let val_neq = {
            let eq = tm.mk_eq(si, sj);
            tm.mk_not(eq)
        };
        // i = j but a[i] != a[j] violates congruence: unsat.
        let mut ctx = Context::new();
        ctx.assert_term(idx_eq);
        ctx.assert_term(val_neq);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unsat);

        let f = tm.declare_fun("f", vec![Sort::BitVec(4)], Sort::BitVec(4));
        let x = tm.mk_var("x", Sort::BitVec(4));
        let y = tm.mk_var("y", Sort::BitVec(4));
        let fx = tm.mk_apply(f, vec![x]).unwrap();
        let fy = tm.mk_apply(f, vec![y]).unwrap();
        let xeqy = tm.mk_eq(x, y);
        let fneq = {
            let eq = tm.mk_eq(fx, fy);
            tm.mk_not(eq)
        };
        let mut ctx2 = Context::new();
        ctx2.assert_term(xeqy);
        ctx2.assert_term(fneq);
        assert_eq!(ctx2.check(&mut tm).unwrap(), SolverResult::Unsat);
    }

    #[test]
    fn unknown_on_tiny_budget() {
        // A multiplication constraint with a 1-conflict budget.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(10));
        let y = tm.mk_var("y", Sort::BitVec(10));
        let prod = tm.mk_bv_mul(x, y).unwrap();
        let c = tm.mk_bv_const(851, 10);
        let f = tm.mk_eq(prod, c);
        let two = tm.mk_bv_const(2, 10);
        let g1 = tm.mk_bv_ult(two, x).unwrap();
        let g2 = tm.mk_bv_ult(two, y).unwrap();
        let mut ctx = Context::with_config(SolverConfig {
            max_conflicts: Some(1),
            max_theory_iterations: 10,
        });
        ctx.assert_term(f);
        ctx.assert_term(g1);
        ctx.assert_term(g2);
        let verdict = ctx.check(&mut tm).unwrap();
        assert!(matches!(verdict, SolverResult::Unknown | SolverResult::Sat));
    }

    #[test]
    fn float_predicates_are_relaxed_to_reals() {
        let mut tm = TermManager::new();
        let u = tm.mk_var("u", Sort::float32());
        let v = tm.mk_var("v", Sort::float32());
        let lt = tm.mk_fp_lt(u, v).unwrap();
        let ge = tm.mk_fp_le(v, u).unwrap();
        let mut ctx = Context::new();
        ctx.assert_term(lt);
        ctx.assert_term(ge);
        // u < v and v <= u is unsatisfiable under the real relaxation.
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unsat);
    }
}
