//! Bit-blasting encoder: hybrid SMT terms → CNF + XOR + theory atoms.
//!
//! Discrete structure (booleans, bit-vectors, bounded integers) is encoded
//! eagerly into the CDCL solver with Tseitin-style circuits.  Continuous
//! atoms (real and relaxed floating-point comparisons) become fresh boolean
//! abstraction literals whose theory meaning is recorded as
//! [`TheoryAtom`]s; the lazy DPLL(T) loop in [`crate::Context`] checks their
//! conjunction with the simplex core.

use std::collections::HashMap;

use pact_ir::{BvValue, Op, Sort, TermId, TermManager};
use pact_lra::{Constraint, LinExpr, LraVar, Relation};
use pact_sat::{Lit, Solver, Var};

use crate::error::{Result, SolverError};

/// A boolean abstraction literal together with its theory meaning.
#[derive(Debug, Clone)]
pub struct TheoryAtom {
    /// The literal standing for the atom in the CNF encoding.
    pub lit: Lit,
    /// Constraint that must hold when the literal is true.
    pub when_true: Constraint,
    /// Constraint that must hold when the literal is false (absent for
    /// equalities, whose negation is covered by auxiliary `<` / `>` atoms).
    pub when_false: Option<Constraint>,
}

/// The bit-blasting encoder.
///
/// Owns the underlying SAT solver; the DPLL(T) driver adds theory lemmas and
/// queries models through it.
#[derive(Debug, Default)]
pub struct Encoder {
    sat: Solver,
    true_lit: Option<Lit>,
    bool_map: HashMap<TermId, Lit>,
    bv_map: HashMap<TermId, Vec<Lit>>,
    int_map: HashMap<TermId, Vec<Lit>>,
    real_var_map: HashMap<TermId, LraVar>,
    real_expr_cache: HashMap<TermId, LinExpr>,
    atoms: Vec<TheoryAtom>,
    atom_of_term: HashMap<TermId, Lit>,
    num_lra_vars: u32,
}

impl Encoder {
    /// Creates an empty encoder with a fresh SAT solver.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Creates an empty encoder whose SAT solver uses the given
    /// diversification options (see [`pact_sat::SatOptions`]); used by the
    /// portfolio oracle to build workers that search differently.
    pub fn with_options(opts: pact_sat::SatOptions) -> Self {
        Encoder {
            sat: Solver::with_options(opts),
            ..Encoder::default()
        }
    }

    /// The underlying SAT solver (for solving and model extraction).
    pub fn sat(&mut self) -> &mut Solver {
        &mut self.sat
    }

    /// Search statistics of the underlying SAT solver, without requiring a
    /// mutable borrow (used by the oracles' cumulative conflict accounting).
    pub fn sat_stats(&self) -> pact_sat::SatStats {
        self.sat.stats()
    }

    /// The registered theory atoms.
    pub fn atoms(&self) -> &[TheoryAtom] {
        &self.atoms
    }

    /// Number of real (LRA) theory variables allocated so far.
    pub fn num_lra_vars(&self) -> usize {
        self.num_lra_vars as usize
    }

    /// The LRA variable backing a real- or float-sorted IR variable, if it
    /// was encoded.
    pub fn lra_var(&self, t: TermId) -> Option<LraVar> {
        self.real_var_map.get(&t).copied()
    }

    // ------------------------------------------------------------------
    // Low-level gates
    // ------------------------------------------------------------------

    fn fresh(&mut self) -> Lit {
        self.sat.new_var().positive()
    }

    /// A literal that is constrained to be true.
    fn true_lit(&mut self) -> Lit {
        match self.true_lit {
            Some(l) => l,
            None => {
                let l = self.fresh();
                self.sat.add_clause(&[l]);
                self.true_lit = Some(l);
                l
            }
        }
    }

    fn false_lit(&mut self) -> Lit {
        !self.true_lit()
    }

    fn lit_of_bool(&mut self, b: bool) -> Lit {
        if b {
            self.true_lit()
        } else {
            self.false_lit()
        }
    }

    fn and2(&mut self, a: Lit, b: Lit) -> Lit {
        if a == b {
            return a;
        }
        if a == !b {
            return self.false_lit();
        }
        let g = self.fresh();
        self.sat.add_clause(&[!g, a]);
        self.sat.add_clause(&[!g, b]);
        self.sat.add_clause(&[g, !a, !b]);
        g
    }

    fn or2(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and2(!a, !b)
    }

    fn xor2(&mut self, a: Lit, b: Lit) -> Lit {
        if a == b {
            return self.false_lit();
        }
        if a == !b {
            return self.true_lit();
        }
        let g = self.fresh();
        self.sat.add_clause(&[!g, a, b]);
        self.sat.add_clause(&[!g, !a, !b]);
        self.sat.add_clause(&[g, !a, b]);
        self.sat.add_clause(&[g, a, !b]);
        g
    }

    fn xnor2(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor2(a, b)
    }

    /// `if sel then a else b`.
    fn mux(&mut self, sel: Lit, a: Lit, b: Lit) -> Lit {
        if a == b {
            return a;
        }
        let g = self.fresh();
        self.sat.add_clause(&[!g, !sel, a]);
        self.sat.add_clause(&[!g, sel, b]);
        self.sat.add_clause(&[g, !sel, !a]);
        self.sat.add_clause(&[g, sel, !b]);
        g
    }

    fn and_many(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => self.true_lit(),
            1 => lits[0],
            _ => {
                let g = self.fresh();
                let mut long = vec![g];
                for &l in lits {
                    self.sat.add_clause(&[!g, l]);
                    long.push(!l);
                }
                self.sat.add_clause(&long);
                g
            }
        }
    }

    fn or_many(&mut self, lits: &[Lit]) -> Lit {
        let negated: Vec<Lit> = lits.iter().map(|&l| !l).collect();
        !self.and_many(&negated)
    }

    // ------------------------------------------------------------------
    // Bit-vector circuits (all vectors are LSB first)
    // ------------------------------------------------------------------

    fn const_bits(&mut self, value: &BvValue) -> Vec<Lit> {
        (0..value.width())
            .map(|i| self.lit_of_bool(value.bit(i)))
            .collect()
    }

    fn ripple_add(&mut self, a: &[Lit], b: &[Lit], carry_in: Lit) -> Vec<Lit> {
        debug_assert_eq!(a.len(), b.len());
        let mut carry = carry_in;
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let axb = self.xor2(a[i], b[i]);
            let sum = self.xor2(axb, carry);
            let c1 = self.and2(a[i], b[i]);
            let c2 = self.and2(axb, carry);
            carry = self.or2(c1, c2);
            out.push(sum);
        }
        out
    }

    fn bv_add(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let f = self.false_lit();
        self.ripple_add(a, b, f)
    }

    fn bv_not(&mut self, a: &[Lit]) -> Vec<Lit> {
        a.iter().map(|&l| !l).collect()
    }

    fn bv_neg(&mut self, a: &[Lit]) -> Vec<Lit> {
        let na = self.bv_not(a);
        let zero = vec![self.false_lit(); a.len()];
        let t = self.true_lit();
        self.ripple_add(&na, &zero, t)
    }

    fn bv_sub(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let nb = self.bv_not(b);
        let t = self.true_lit();
        self.ripple_add(a, &nb, t)
    }

    fn bv_mul(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let mut acc = vec![self.false_lit(); w];
        for i in 0..w {
            // addend = (a << i) AND-masked by b[i]
            let mut addend = vec![self.false_lit(); w];
            for j in 0..w - i {
                addend[i + j] = self.and2(a[j], b[i]);
            }
            acc = self.bv_add(&acc, &addend);
        }
        acc
    }

    fn bv_ult(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        // Iterate from LSB to MSB: lt_i = (¬a_i ∧ b_i) ∨ ((a_i ≡ b_i) ∧ lt_{i-1})
        let mut lt = self.false_lit();
        for i in 0..a.len() {
            let bit_lt = self.and2(!a[i], b[i]);
            let eq = self.xnor2(a[i], b[i]);
            let carry = self.and2(eq, lt);
            lt = self.or2(bit_lt, carry);
        }
        lt
    }

    fn bv_ule(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        !self.bv_ult(b, a)
    }

    fn bv_slt(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        // Flip the sign bits and compare unsigned.
        let w = a.len();
        let mut a2 = a.to_vec();
        let mut b2 = b.to_vec();
        a2[w - 1] = !a2[w - 1];
        b2[w - 1] = !b2[w - 1];
        self.bv_ult(&a2, &b2)
    }

    fn bv_sle(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        !self.bv_slt(b, a)
    }

    fn bv_eq(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let bits: Vec<Lit> = a.iter().zip(b).map(|(&x, &y)| self.xnor2(x, y)).collect();
        self.and_many(&bits)
    }

    fn bv_mux(&mut self, sel: Lit, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.mux(sel, x, y))
            .collect()
    }

    fn bv_shift(&mut self, a: &[Lit], shift: &[Lit], kind: ShiftKind) -> Vec<Lit> {
        let w = a.len();
        let fill_top = match kind {
            ShiftKind::Ashr => a[w - 1],
            _ => self.false_lit(),
        };
        let mut result = a.to_vec();
        // Barrel shifter over the shift bits that are within range.
        let mut stages = 0;
        while (1usize << stages) < w {
            stages += 1;
        }
        for (s, &shift_bit) in shift.iter().enumerate().take(stages) {
            let amount = 1usize << s;
            let mut shifted = Vec::with_capacity(w);
            for i in 0..w {
                let src = match kind {
                    ShiftKind::Shl => {
                        if i >= amount {
                            result[i - amount]
                        } else {
                            self.false_lit()
                        }
                    }
                    ShiftKind::Lshr | ShiftKind::Ashr => {
                        if i + amount < w {
                            result[i + amount]
                        } else {
                            fill_top
                        }
                    }
                };
                shifted.push(src);
            }
            result = self.bv_mux(shift_bit, &shifted, &result);
        }
        // If any shift bit at or above `stages` is set the result saturates.
        if shift.len() > stages {
            let high = self.or_many(&shift[stages..]);
            let saturated: Vec<Lit> = match kind {
                ShiftKind::Shl | ShiftKind::Lshr => vec![self.false_lit(); w],
                ShiftKind::Ashr => vec![fill_top; w],
            };
            result = self.bv_mux(high, &saturated, &result);
        }
        result
    }

    /// Restoring division producing `(quotient, remainder)`, with the SMT-LIB
    /// convention for division by zero (`a / 0 = all-ones`, `a % 0 = a`).
    fn bv_divrem(&mut self, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        let mut remainder = vec![self.false_lit(); w];
        let mut quotient = vec![self.false_lit(); w];
        for i in (0..w).rev() {
            // remainder = (remainder << 1) | a[i]
            let mut shifted = Vec::with_capacity(w);
            shifted.push(a[i]);
            shifted.extend_from_slice(&remainder[..w - 1]);
            remainder = shifted;
            let ge = self.bv_ule(b, &remainder);
            let diff = self.bv_sub(&remainder, b);
            remainder = self.bv_mux(ge, &diff, &remainder);
            quotient[i] = ge;
        }
        let b_nonzero = self.or_many(b);
        let all_ones = vec![self.true_lit(); w];
        let quotient = self.bv_mux(b_nonzero, &quotient, &all_ones);
        let remainder = self.bv_mux(b_nonzero, &remainder, a);
        (quotient, remainder)
    }

    // ------------------------------------------------------------------
    // Term encoding
    // ------------------------------------------------------------------

    /// Encodes and asserts a boolean term.
    pub fn assert_term(&mut self, tm: &TermManager, t: TermId) -> Result<()> {
        let lit = self.encode_bool(tm, t)?;
        self.sat.add_clause(&[lit]);
        Ok(())
    }

    /// Recognises the saturating counter's model-blocking pattern
    /// `¬(v₁ = c₁ ∧ … ∧ vₙ = cₙ)` — discrete variables against constants —
    /// and asserts it as a *single clause* over the variables' existing bit
    /// literals instead of Tseitin-encoding the term (which would allocate
    /// ~4 gate clauses and a fresh variable per bit, every time a model is
    /// blocked).  `guard` is prepended to the clause when given (the
    /// incremental backend's activation literal).
    ///
    /// Returns `false` without touching the solver when the term does not
    /// match the pattern; the caller falls back to the general encoder.
    /// The fast path matters twice over: enumeration-heavy cells block
    /// hundreds of models, and (for the incremental backend) a retired
    /// frame leaves one satisfied clause behind instead of a thicket of
    /// live gate clauses that propagation keeps visiting.
    pub fn try_assert_blocking(
        &mut self,
        tm: &TermManager,
        t: TermId,
        guard: Option<Lit>,
    ) -> Result<bool> {
        if !matches!(tm.op(t), Op::Not) {
            return Ok(false);
        }
        let inner = tm.children(t)[0];
        let eqs: Vec<TermId> = match tm.op(inner) {
            Op::And => tm.children(inner).to_vec(),
            Op::Eq => vec![inner],
            _ => return Ok(false),
        };
        // Validate the whole pattern before mutating any encoder state.
        let mut pairs: Vec<(TermId, BvValue)> = Vec::with_capacity(eqs.len());
        for eq in eqs {
            if !matches!(tm.op(eq), Op::Eq) || tm.children(eq).len() != 2 {
                return Ok(false);
            }
            let (a, b) = (tm.children(eq)[0], tm.children(eq)[1]);
            let (var, constant) = match (tm.op(a), tm.op(b)) {
                (Op::Var(_), Op::BvConst(_) | Op::BoolConst(_)) => (a, b),
                (Op::BvConst(_) | Op::BoolConst(_), Op::Var(_)) => (b, a),
                _ => return Ok(false),
            };
            let value = match tm.op(constant) {
                Op::BvConst(v) => *v,
                Op::BoolConst(b) => BvValue::new(u128::from(*b), 1),
                _ => return Ok(false),
            };
            match tm.sort(var) {
                Sort::Bool if value.width() == 1 => {}
                Sort::BitVec(w) if w == value.width() => {}
                _ => return Ok(false),
            }
            pairs.push((var, value));
        }
        let mut clause: Vec<Lit> = Vec::new();
        if let Some(g) = guard {
            clause.push(!g);
        }
        for (var, value) in pairs {
            self.ensure_var_bits(tm, var)?;
            let bits = self.var_bits(tm, var).expect("bits just ensured");
            for (i, &lit) in bits.iter().enumerate() {
                // The clause demands at least one bit differ from the model.
                clause.push(if value.bit(i as u32) { !lit } else { lit });
            }
        }
        self.sat.add_clause(&clause);
        Ok(true)
    }

    /// Ensures the bits of a discrete variable exist in the SAT solver, so
    /// that models and hash constraints range over it even when it does not
    /// occur in any assertion.
    pub fn ensure_var_bits(&mut self, tm: &TermManager, var: TermId) -> Result<()> {
        match tm.sort(var) {
            Sort::Bool => {
                self.encode_bool(tm, var)?;
            }
            Sort::BitVec(_) => {
                self.encode_bv(tm, var)?;
            }
            Sort::BoundedInt { .. } => {
                self.encode_int(tm, var)?;
            }
            other => {
                return Err(SolverError::Unsupported(format!(
                    "projection variable of continuous sort {other}"
                )))
            }
        }
        Ok(())
    }

    /// The SAT literals backing the bits of a discrete variable (LSB first).
    ///
    /// The variable must have been encoded (see [`Encoder::ensure_var_bits`]).
    pub fn var_bits(&self, tm: &TermManager, var: TermId) -> Option<Vec<Lit>> {
        match tm.sort(var) {
            Sort::Bool => self.bool_map.get(&var).map(|&l| vec![l]),
            Sort::BitVec(_) => self.bv_map.get(&var).cloned(),
            Sort::BoundedInt { .. } => self.int_map.get(&var).cloned(),
            _ => None,
        }
    }

    /// Adds a native XOR constraint over the given literals.
    ///
    /// Returns the engine id of the stored row (`None` when the row
    /// simplified away at level zero), so frame-scoped callers can retire
    /// it later through [`Solver::deactivate_xor`].
    pub fn add_xor_over_lits(&mut self, lits: &[Lit], rhs: bool) -> Option<usize> {
        let mut parity = rhs;
        let mut vars: Vec<Var> = Vec::with_capacity(lits.len());
        for &l in lits {
            if !l.is_positive() {
                parity = !parity;
            }
            vars.push(l.var());
        }
        self.sat.add_xor_tracked(&vars, parity).1
    }

    /// Encodes a boolean-sorted term to a literal.
    pub fn encode_bool(&mut self, tm: &TermManager, t: TermId) -> Result<Lit> {
        if let Some(&l) = self.bool_map.get(&t) {
            return Ok(l);
        }
        let children = tm.children(t).to_vec();
        let lit = match tm.op(t).clone() {
            Op::BoolConst(b) => self.lit_of_bool(b),
            Op::Var(_) => self.fresh(),
            Op::Not => {
                let c = self.encode_bool(tm, children[0])?;
                !c
            }
            Op::And => {
                let lits: Result<Vec<Lit>> =
                    children.iter().map(|&c| self.encode_bool(tm, c)).collect();
                let lits = lits?;
                self.and_many(&lits)
            }
            Op::Or => {
                let lits: Result<Vec<Lit>> =
                    children.iter().map(|&c| self.encode_bool(tm, c)).collect();
                let lits = lits?;
                self.or_many(&lits)
            }
            Op::Xor => {
                let a = self.encode_bool(tm, children[0])?;
                let b = self.encode_bool(tm, children[1])?;
                self.xor2(a, b)
            }
            Op::Implies => {
                let a = self.encode_bool(tm, children[0])?;
                let b = self.encode_bool(tm, children[1])?;
                self.or2(!a, b)
            }
            Op::Ite => {
                let c = self.encode_bool(tm, children[0])?;
                let a = self.encode_bool(tm, children[1])?;
                let b = self.encode_bool(tm, children[2])?;
                self.mux(c, a, b)
            }
            Op::Eq => self.encode_equality(tm, t, children[0], children[1])?,
            Op::Distinct => {
                let mut pair_lits = Vec::new();
                for i in 0..children.len() {
                    for j in (i + 1)..children.len() {
                        let eq = self.encode_equality(tm, t, children[i], children[j])?;
                        pair_lits.push(!eq);
                    }
                }
                self.and_many(&pair_lits)
            }
            Op::BvUlt => {
                let a = self.encode_bv(tm, children[0])?;
                let b = self.encode_bv(tm, children[1])?;
                self.bv_ult(&a, &b)
            }
            Op::BvUle => {
                let a = self.encode_bv(tm, children[0])?;
                let b = self.encode_bv(tm, children[1])?;
                self.bv_ule(&a, &b)
            }
            Op::BvSlt => {
                let a = self.encode_bv(tm, children[0])?;
                let b = self.encode_bv(tm, children[1])?;
                self.bv_slt(&a, &b)
            }
            Op::BvSle => {
                let a = self.encode_bv(tm, children[0])?;
                let b = self.encode_bv(tm, children[1])?;
                self.bv_sle(&a, &b)
            }
            Op::IntLe => {
                let (a, b) = self.encode_int_pair(tm, children[0], children[1])?;
                self.bv_ule(&a, &b)
            }
            Op::IntLt => {
                let (a, b) = self.encode_int_pair(tm, children[0], children[1])?;
                self.bv_ult(&a, &b)
            }
            Op::RealLt | Op::FpLt => {
                let a = self.encode_real(tm, children[0])?;
                let b = self.encode_real(tm, children[1])?;
                self.register_inequality_atom(t, a, b, true)
            }
            Op::RealLe | Op::FpLe => {
                let a = self.encode_real(tm, children[0])?;
                let b = self.encode_real(tm, children[1])?;
                self.register_inequality_atom(t, a, b, false)
            }
            Op::FpEq => {
                let a = self.encode_real(tm, children[0])?;
                let b = self.encode_real(tm, children[1])?;
                self.register_equality_atom(t, a, b)
            }
            other => {
                return Err(SolverError::Unsupported(format!(
                    "boolean encoding of operator {other:?}"
                )))
            }
        };
        self.bool_map.insert(t, lit);
        Ok(lit)
    }

    fn encode_equality(
        &mut self,
        tm: &TermManager,
        eq_term: TermId,
        a: TermId,
        b: TermId,
    ) -> Result<Lit> {
        match tm.sort(a) {
            Sort::Bool => {
                let la = self.encode_bool(tm, a)?;
                let lb = self.encode_bool(tm, b)?;
                Ok(self.xnor2(la, lb))
            }
            Sort::BitVec(_) => {
                let va = self.encode_bv(tm, a)?;
                let vb = self.encode_bv(tm, b)?;
                Ok(self.bv_eq(&va, &vb))
            }
            Sort::BoundedInt { .. } => {
                let (va, vb) = self.encode_int_pair(tm, a, b)?;
                Ok(self.bv_eq(&va, &vb))
            }
            Sort::Real | Sort::Float { .. } => {
                let ea = self.encode_real(tm, a)?;
                let eb = self.encode_real(tm, b)?;
                Ok(self.register_equality_atom(eq_term, ea, eb))
            }
            Sort::Array { .. } => Err(SolverError::Unsupported(
                "equality between array terms".to_string(),
            )),
        }
    }

    /// Encodes a bit-vector-sorted term to its bit literals (LSB first).
    pub fn encode_bv(&mut self, tm: &TermManager, t: TermId) -> Result<Vec<Lit>> {
        if let Some(bits) = self.bv_map.get(&t) {
            return Ok(bits.clone());
        }
        let children = tm.children(t).to_vec();
        let width = tm
            .sort(t)
            .bv_width()
            .ok_or_else(|| SolverError::Internal("encode_bv on non-bitvector".to_string()))?
            as usize;
        let bits = match tm.op(t).clone() {
            Op::BvConst(v) => self.const_bits(&v),
            Op::Var(_) => (0..width).map(|_| self.fresh()).collect(),
            Op::BvNot => {
                let a = self.encode_bv(tm, children[0])?;
                self.bv_not(&a)
            }
            Op::BvNeg => {
                let a = self.encode_bv(tm, children[0])?;
                self.bv_neg(&a)
            }
            Op::BvAnd | Op::BvOr | Op::BvXor => {
                let a = self.encode_bv(tm, children[0])?;
                let b = self.encode_bv(tm, children[1])?;
                let op = tm.op(t).clone();
                a.iter()
                    .zip(&b)
                    .map(|(&x, &y)| match op {
                        Op::BvAnd => self.and2(x, y),
                        Op::BvOr => self.or2(x, y),
                        _ => self.xor2(x, y),
                    })
                    .collect()
            }
            Op::BvAdd => {
                let a = self.encode_bv(tm, children[0])?;
                let b = self.encode_bv(tm, children[1])?;
                self.bv_add(&a, &b)
            }
            Op::BvSub => {
                let a = self.encode_bv(tm, children[0])?;
                let b = self.encode_bv(tm, children[1])?;
                self.bv_sub(&a, &b)
            }
            Op::BvMul => {
                let a = self.encode_bv(tm, children[0])?;
                let b = self.encode_bv(tm, children[1])?;
                self.bv_mul(&a, &b)
            }
            Op::BvUdiv => {
                let a = self.encode_bv(tm, children[0])?;
                let b = self.encode_bv(tm, children[1])?;
                self.bv_divrem(&a, &b).0
            }
            Op::BvUrem => {
                let a = self.encode_bv(tm, children[0])?;
                let b = self.encode_bv(tm, children[1])?;
                self.bv_divrem(&a, &b).1
            }
            Op::BvShl => {
                let a = self.encode_bv(tm, children[0])?;
                let b = self.encode_bv(tm, children[1])?;
                self.bv_shift(&a, &b, ShiftKind::Shl)
            }
            Op::BvLshr => {
                let a = self.encode_bv(tm, children[0])?;
                let b = self.encode_bv(tm, children[1])?;
                self.bv_shift(&a, &b, ShiftKind::Lshr)
            }
            Op::BvAshr => {
                let a = self.encode_bv(tm, children[0])?;
                let b = self.encode_bv(tm, children[1])?;
                self.bv_shift(&a, &b, ShiftKind::Ashr)
            }
            Op::BvConcat => {
                // children[0] is the high part.
                let hi = self.encode_bv(tm, children[0])?;
                let lo = self.encode_bv(tm, children[1])?;
                let mut bits = lo;
                bits.extend(hi);
                bits
            }
            Op::BvExtract { hi, lo } => {
                let a = self.encode_bv(tm, children[0])?;
                a[lo as usize..=hi as usize].to_vec()
            }
            Op::BvZeroExtend(by) => {
                let mut a = self.encode_bv(tm, children[0])?;
                let f = self.false_lit();
                a.extend(std::iter::repeat_n(f, by as usize));
                a
            }
            Op::BvSignExtend(by) => {
                let a = self.encode_bv(tm, children[0])?;
                let sign = *a.last().expect("non-empty bit-vector");
                let mut bits = a;
                bits.extend(std::iter::repeat_n(sign, by as usize));
                bits
            }
            Op::Ite => {
                let c = self.encode_bool(tm, children[0])?;
                let a = self.encode_bv(tm, children[1])?;
                let b = self.encode_bv(tm, children[2])?;
                self.bv_mux(c, &a, &b)
            }
            other => {
                return Err(SolverError::Unsupported(format!(
                    "bit-vector encoding of operator {other:?}"
                )))
            }
        };
        debug_assert_eq!(bits.len(), width);
        self.bv_map.insert(t, bits.clone());
        Ok(bits)
    }

    // ------------------------------------------------------------------
    // Bounded integers
    // ------------------------------------------------------------------

    fn int_width(sort: &Sort) -> Result<usize> {
        match sort {
            Sort::BoundedInt { lo, hi } => {
                if *lo < 0 {
                    return Err(SolverError::Unsupported(
                        "bounded integers with negative lower bounds".to_string(),
                    ));
                }
                // The value is stored directly (not offset by `lo`), so the
                // width must be able to represent `hi` itself.
                let mut bits = 1usize;
                while (1i128 << bits) <= *hi as i128 {
                    bits += 1;
                }
                Ok(bits)
            }
            other => Err(SolverError::Internal(format!(
                "int encoding of sort {other}"
            ))),
        }
    }

    fn encode_int(&mut self, tm: &TermManager, t: TermId) -> Result<Vec<Lit>> {
        if let Some(bits) = self.int_map.get(&t) {
            return Ok(bits.clone());
        }
        let sort = tm.sort(t);
        let children = tm.children(t).to_vec();
        let bits = match tm.op(t).clone() {
            Op::IntConst(v) => {
                let width = Self::int_width(&sort)?.max(1);
                let value = BvValue::new(v as u128, width as u32);
                self.const_bits(&value)
            }
            Op::Var(_) => {
                let (lo, hi) = match sort {
                    Sort::BoundedInt { lo, hi } => (lo, hi),
                    _ => unreachable!(),
                };
                let width = Self::int_width(&tm.sort(t))?;
                let bits: Vec<Lit> = (0..width).map(|_| self.fresh()).collect();
                // Constrain lo <= value <= hi.
                let lo_bits = self.const_bits(&BvValue::new(lo as u128, width as u32));
                let hi_bits = self.const_bits(&BvValue::new(hi as u128, width as u32));
                let ge_lo = self.bv_ule(&lo_bits, &bits);
                let le_hi = self.bv_ule(&bits, &hi_bits);
                self.sat.add_clause(&[ge_lo]);
                self.sat.add_clause(&[le_hi]);
                bits
            }
            Op::IntAdd => {
                let a = self.encode_int(tm, children[0])?;
                let b = self.encode_int(tm, children[1])?;
                let width = Self::int_width(&sort)?.max(a.len()).max(b.len());
                let a = self.widen(a, width);
                let b = self.widen(b, width);
                self.bv_add(&a, &b)
            }
            Op::Ite => {
                let c = self.encode_bool(tm, children[0])?;
                let a = self.encode_int(tm, children[1])?;
                let b = self.encode_int(tm, children[2])?;
                let width = a.len().max(b.len());
                let a = self.widen(a, width);
                let b = self.widen(b, width);
                self.bv_mux(c, &a, &b)
            }
            other => {
                return Err(SolverError::Unsupported(format!(
                    "bounded-integer encoding of operator {other:?}"
                )))
            }
        };
        self.int_map.insert(t, bits.clone());
        Ok(bits)
    }

    fn widen(&mut self, mut bits: Vec<Lit>, width: usize) -> Vec<Lit> {
        let f = self.false_lit();
        while bits.len() < width {
            bits.push(f);
        }
        bits
    }

    fn encode_int_pair(
        &mut self,
        tm: &TermManager,
        a: TermId,
        b: TermId,
    ) -> Result<(Vec<Lit>, Vec<Lit>)> {
        let ba = self.encode_int(tm, a)?;
        let bb = self.encode_int(tm, b)?;
        let width = ba.len().max(bb.len());
        Ok((self.widen(ba, width), self.widen(bb, width)))
    }

    // ------------------------------------------------------------------
    // Reals and relaxed floats
    // ------------------------------------------------------------------

    fn fresh_lra_var(&mut self) -> LraVar {
        let v = LraVar(self.num_lra_vars);
        self.num_lra_vars += 1;
        v
    }

    /// Encodes a real- or float-sorted term as a linear expression.
    pub fn encode_real(&mut self, tm: &TermManager, t: TermId) -> Result<LinExpr> {
        if let Some(e) = self.real_expr_cache.get(&t) {
            return Ok(e.clone());
        }
        let children = tm.children(t).to_vec();
        let expr = match tm.op(t).clone() {
            Op::RealConst(r) => LinExpr::from_constant(r),
            Op::Var(_) => {
                let v = match self.real_var_map.get(&t) {
                    Some(&v) => v,
                    None => {
                        let v = self.fresh_lra_var();
                        self.real_var_map.insert(t, v);
                        v
                    }
                };
                LinExpr::from_var(v)
            }
            Op::RealAdd | Op::FpAdd => {
                let mut acc = LinExpr::zero();
                for &c in &children {
                    acc = acc + self.encode_real(tm, c)?;
                }
                acc
            }
            Op::RealSub | Op::FpSub => {
                let a = self.encode_real(tm, children[0])?;
                let b = self.encode_real(tm, children[1])?;
                a - b
            }
            Op::RealNeg | Op::FpNeg => -self.encode_real(tm, children[0])?,
            Op::RealMul | Op::FpMul => {
                let a = self.encode_real(tm, children[0])?;
                let b = self.encode_real(tm, children[1])?;
                if a.is_constant() {
                    b * a.constant()
                } else if b.is_constant() {
                    a * b.constant()
                } else {
                    return Err(SolverError::Unsupported(
                        "non-linear real multiplication".to_string(),
                    ));
                }
            }
            Op::FpToReal | Op::RealToFp => self.encode_real(tm, children[0])?,
            Op::Ite => {
                // A fresh variable tied to each branch through conditional atoms.
                let cond = self.encode_bool(tm, children[0])?;
                let then_expr = self.encode_real(tm, children[1])?;
                let else_expr = self.encode_real(tm, children[2])?;
                let v = self.fresh_lra_var();
                let ve = LinExpr::from_var(v);
                let then_eq = self.fresh_eq_atom(ve.clone() - then_expr);
                let else_eq = self.fresh_eq_atom(ve.clone() - else_expr);
                self.sat.add_clause(&[!cond, then_eq]);
                self.sat.add_clause(&[cond, else_eq]);
                ve
            }
            other => {
                return Err(SolverError::Unsupported(format!(
                    "real encoding of operator {other:?}"
                )))
            }
        };
        self.real_expr_cache.insert(t, expr.clone());
        Ok(expr)
    }

    /// Registers the atom `a < b` (strict) or `a ≤ b` with a fresh literal.
    fn register_inequality_atom(
        &mut self,
        term: TermId,
        a: LinExpr,
        b: LinExpr,
        strict: bool,
    ) -> Lit {
        if let Some(&l) = self.atom_of_term.get(&term) {
            return l;
        }
        let lit = self.fresh();
        let diff = a - b;
        let (rel, neg_rel) = if strict {
            (Relation::Lt, Relation::Ge)
        } else {
            (Relation::Le, Relation::Gt)
        };
        self.atoms.push(TheoryAtom {
            lit,
            when_true: Constraint::new(diff.clone(), rel),
            when_false: Some(Constraint::new(diff, neg_rel)),
        });
        self.atom_of_term.insert(term, lit);
        lit
    }

    /// Registers the atom `a = b`, splitting its negation into `<` / `>`.
    fn register_equality_atom(&mut self, term: TermId, a: LinExpr, b: LinExpr) -> Lit {
        if let Some(&l) = self.atom_of_term.get(&term) {
            return l;
        }
        let diff = a - b;
        let eq_lit = self.fresh();
        self.atoms.push(TheoryAtom {
            lit: eq_lit,
            when_true: Constraint::new(diff.clone(), Relation::Eq),
            when_false: None,
        });
        let lt_lit = self.fresh();
        self.atoms.push(TheoryAtom {
            lit: lt_lit,
            when_true: Constraint::new(diff.clone(), Relation::Lt),
            when_false: Some(Constraint::new(diff.clone(), Relation::Ge)),
        });
        let gt_lit = self.fresh();
        self.atoms.push(TheoryAtom {
            lit: gt_lit,
            when_true: Constraint::new(diff, Relation::Gt),
            when_false: Some(Constraint::new(LinExpr::zero(), Relation::Le)),
        });
        // eq ∨ lt ∨ gt; eq → ¬lt; eq → ¬gt.
        self.sat.add_clause(&[eq_lit, lt_lit, gt_lit]);
        self.sat.add_clause(&[!eq_lit, !lt_lit]);
        self.sat.add_clause(&[!eq_lit, !gt_lit]);
        self.atom_of_term.insert(term, eq_lit);
        eq_lit
    }

    /// A fresh atom literal asserting `expr = 0` when true (no meaning when
    /// false); used for `ite` over reals.
    fn fresh_eq_atom(&mut self, expr: LinExpr) -> Lit {
        let lit = self.fresh();
        self.atoms.push(TheoryAtom {
            lit,
            when_true: Constraint::new(expr, Relation::Eq),
            when_false: None,
        });
        lit
    }

    // ------------------------------------------------------------------
    // Model extraction helpers
    // ------------------------------------------------------------------

    /// Reads the value of a discrete variable from the SAT model.
    pub fn model_bits(&self, tm: &TermManager, var: TermId) -> Option<BvValue> {
        let bits = self.var_bits(tm, var)?;
        let model = self.sat.model();
        let mut value = 0u128;
        for (i, &lit) in bits.iter().enumerate() {
            let assigned = model.get(lit.var().index()).copied().unwrap_or(false);
            let bit = if lit.is_positive() {
                assigned
            } else {
                !assigned
            };
            if bit {
                value |= 1 << i;
            }
        }
        Some(BvValue::new(value, bits.len().max(1) as u32))
    }
}

/// Kinds of variable shifts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShiftKind {
    Shl,
    Lshr,
    Ashr,
}

/// Re-exported for the DPLL(T) driver: truth value of an atom literal in the
/// current SAT model, if the variable is assigned.
pub fn atom_value_in_model(model: &[bool], lit: Lit) -> Option<bool> {
    model
        .get(lit.var().index())
        .map(|&b| if lit.is_positive() { b } else { !b })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_ir::Rational;
    use pact_sat::SatResult;

    fn check(_tm: &TermManager, enc: &mut Encoder) -> SatResult {
        enc.sat().solve(&[])
    }

    #[test]
    fn encodes_bv_arithmetic_consistently() {
        // x + 1 = 4 has the unique solution x = 3.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let one = tm.mk_bv_const(1, 4);
        let four = tm.mk_bv_const(4, 4);
        let sum = tm.mk_bv_add(x, one).unwrap();
        let eq = tm.mk_eq(sum, four);
        let mut enc = Encoder::new();
        enc.assert_term(&tm, eq).unwrap();
        assert_eq!(check(&tm, &mut enc), SatResult::Sat);
        assert_eq!(enc.model_bits(&tm, x).unwrap().as_u128(), 3);
    }

    #[test]
    fn encodes_multiplication() {
        // x * 3 = 12 on 5 bits: x = 4 is a solution.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(5));
        let three = tm.mk_bv_const(3, 5);
        let twelve = tm.mk_bv_const(12, 5);
        let prod = tm.mk_bv_mul(x, three).unwrap();
        let eq = tm.mk_eq(prod, twelve);
        let mut enc = Encoder::new();
        enc.assert_term(&tm, eq).unwrap();
        assert_eq!(check(&tm, &mut enc), SatResult::Sat);
        let model = enc.model_bits(&tm, x).unwrap().as_u128();
        assert_eq!((model * 3) % 32, 12);
    }

    #[test]
    fn unsat_bv_constraints() {
        // x < 2 and x > 5 is unsatisfiable.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let two = tm.mk_bv_const(2, 4);
        let five = tm.mk_bv_const(5, 4);
        let lt = tm.mk_bv_ult(x, two).unwrap();
        let gt = tm.mk_bv_ult(five, x).unwrap();
        let mut enc = Encoder::new();
        enc.assert_term(&tm, lt).unwrap();
        enc.assert_term(&tm, gt).unwrap();
        assert_eq!(check(&tm, &mut enc), SatResult::Unsat);
    }

    #[test]
    fn division_circuit_matches_semantics() {
        // 13 / 3 = 4 and 13 % 3 = 1.
        let mut tm = TermManager::new();
        let a = tm.mk_var("a", Sort::BitVec(6));
        let b = tm.mk_var("b", Sort::BitVec(6));
        let q = tm.mk_bv_udiv(a, b).unwrap();
        let r = tm.mk_bv_urem(a, b).unwrap();
        let thirteen = tm.mk_bv_const(13, 6);
        let three = tm.mk_bv_const(3, 6);
        let f1 = tm.mk_eq(a, thirteen);
        let f2 = tm.mk_eq(b, three);
        let four = tm.mk_bv_const(4, 6);
        let one = tm.mk_bv_const(1, 6);
        let f3 = tm.mk_eq(q, four);
        let f4 = tm.mk_eq(r, one);
        let mut enc = Encoder::new();
        for f in [f1, f2, f3, f4] {
            enc.assert_term(&tm, f).unwrap();
        }
        assert_eq!(check(&tm, &mut enc), SatResult::Sat);
    }

    #[test]
    fn shifts_match_semantics() {
        // (1 << 3) = 8, (0b1000 >> 2) = 2.
        let mut tm = TermManager::new();
        let one = tm.mk_bv_const(1, 8);
        let three = tm.mk_bv_const(3, 8);
        let shl = tm.mk_bv_shl(one, three).unwrap();
        let eight = tm.mk_bv_const(8, 8);
        let f1 = tm.mk_eq(shl, eight);
        let two = tm.mk_bv_const(2, 8);
        let lshr = tm.mk_bv_lshr(eight, two).unwrap();
        let f2 = tm.mk_eq(lshr, two);
        let mut enc = Encoder::new();
        enc.assert_term(&tm, f1).unwrap();
        enc.assert_term(&tm, f2).unwrap();
        assert_eq!(check(&tm, &mut enc), SatResult::Sat);
    }

    #[test]
    fn free_projection_variable_gets_bits() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let mut enc = Encoder::new();
        enc.ensure_var_bits(&tm, x).unwrap();
        assert_eq!(enc.var_bits(&tm, x).unwrap().len(), 8);
        assert_eq!(check(&tm, &mut enc), SatResult::Sat);
        assert!(enc.model_bits(&tm, x).is_some());
    }

    #[test]
    fn real_atoms_are_registered_not_decided() {
        let mut tm = TermManager::new();
        let r = tm.mk_var("r", Sort::Real);
        let one = tm.mk_real_const(Rational::ONE);
        let lt = tm.mk_real_lt(r, one).unwrap();
        let mut enc = Encoder::new();
        enc.assert_term(&tm, lt).unwrap();
        assert_eq!(enc.atoms().len(), 1);
        assert_eq!(check(&tm, &mut enc), SatResult::Sat);
    }

    #[test]
    fn bounded_int_variables_are_range_constrained() {
        let mut tm = TermManager::new();
        let n = tm.mk_var("n", Sort::BoundedInt { lo: 2, hi: 5 });
        let mut enc = Encoder::new();
        enc.ensure_var_bits(&tm, n).unwrap();
        // Enumerate all models of the free bounded integer: must be 4 (2..=5).
        let bits = enc.var_bits(&tm, n).unwrap();
        let mut count = 0;
        while enc.sat().solve(&[]) == SatResult::Sat {
            count += 1;
            assert!(count <= 4);
            let value = enc.model_bits(&tm, n).unwrap().as_u128();
            assert!((2..=5).contains(&value));
            let blocking: Vec<Lit> = bits
                .iter()
                .map(|&l| {
                    let assigned = enc.sat().model()[l.var().index()];
                    if assigned {
                        !l.var().positive()
                    } else {
                        l.var().positive()
                    }
                })
                .collect();
            enc.sat().add_clause(&blocking);
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn native_xor_over_variable_bits() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(3));
        let mut enc = Encoder::new();
        enc.ensure_var_bits(&tm, x).unwrap();
        let bits = enc.var_bits(&tm, x).unwrap();
        // Parity of all bits must be odd: 4 of the 8 values remain.
        enc.add_xor_over_lits(&bits, true);
        let mut count = 0;
        while enc.sat().solve(&[]) == SatResult::Sat {
            count += 1;
            assert!(count <= 4);
            let value = enc.model_bits(&tm, x).unwrap();
            assert_eq!(value.as_u128().count_ones() % 2, 1);
            let blocking: Vec<Lit> = bits
                .iter()
                .map(|&l| {
                    let assigned = enc.sat().model()[l.var().index()];
                    l.var().lit(!assigned)
                })
                .collect();
            enc.sat().add_clause(&blocking);
        }
        assert_eq!(count, 4);
    }
}
