//! Theory preprocessing: array reduction and Ackermannization.
//!
//! The bit-blasting encoder only understands booleans, bit-vectors, reals,
//! (relaxed) floats and bounded integers.  This module removes the remaining
//! theories up front:
//!
//! * **Arrays** — `select`-over-`store` chains are rewritten with the
//!   read-over-write axiom, and every remaining `select` on an array variable
//!   is replaced by a fresh element variable with Ackermann congruence
//!   constraints between reads of the same array.
//! * **Uninterpreted functions** — every application is replaced by a fresh
//!   result variable, with pairwise Ackermann congruence constraints.
//!
//! Equality between whole arrays is outside the supported fragment and is
//! reported as [`SolverError::Unsupported`].

use std::collections::HashMap;

use pact_ir::{Op, Sort, TermId, TermManager};

use crate::error::{Result, SolverError};

/// The output of preprocessing: rewritten assertions plus congruence axioms.
#[derive(Debug, Clone, Default)]
pub struct Preprocessed {
    /// The rewritten assertions (same order as the input).
    pub assertions: Vec<TermId>,
    /// Ackermann congruence axioms that must be asserted alongside them.
    pub axioms: Vec<TermId>,
}

/// Applies array reduction and Ackermannization to `assertions`.
pub fn preprocess(tm: &mut TermManager, assertions: &[TermId]) -> Result<Preprocessed> {
    let mut state = State::default();
    let mut rewritten = Vec::with_capacity(assertions.len());
    for &a in assertions {
        rewritten.push(state.rewrite(tm, a)?);
    }
    let axioms = state.congruence_axioms(tm)?;
    Ok(Preprocessed {
        assertions: rewritten,
        axioms,
    })
}

/// One flattened application: either `select(array_var, index)` or
/// `f(args...)`, identified by its group key, argument list and the fresh
/// variable standing in for its result.
#[derive(Debug, Clone)]
struct Application {
    args: Vec<TermId>,
    result: TermId,
}

#[derive(Debug, Default)]
struct State {
    cache: HashMap<TermId, TermId>,
    /// Applications grouped by "function": an array variable or a UF symbol.
    groups: HashMap<GroupKey, Vec<Application>>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum GroupKey {
    /// Reads of the array variable with the given term id.
    Array(TermId),
    /// Applications of the uninterpreted function with the given symbol.
    Fun(u32),
}

impl State {
    fn rewrite(&mut self, tm: &mut TermManager, t: TermId) -> Result<TermId> {
        if let Some(&r) = self.cache.get(&t) {
            return Ok(r);
        }
        let op = tm.op(t).clone();
        let children = tm.children(t).to_vec();

        let result = match op {
            Op::Select => {
                let array = self.rewrite(tm, children[0])?;
                let index = self.rewrite(tm, children[1])?;
                self.rewrite_select(tm, array, index)?
            }
            Op::Apply(f) => {
                let args: Result<Vec<TermId>> =
                    children.iter().map(|&c| self.rewrite(tm, c)).collect();
                let args = args?;
                let ret = tm.fun_decl(f).ret.clone();
                let name = tm.fun_decl(f).name.clone();
                self.flatten_application(tm, GroupKey::Fun(f), args, ret, &name)
            }
            Op::Eq if matches!(tm.sort(children[0]), Sort::Array { .. }) => {
                return Err(SolverError::Unsupported(
                    "equality between array terms".to_string(),
                ));
            }
            _ if children.is_empty() => t,
            op => {
                let new_children: Result<Vec<TermId>> =
                    children.iter().map(|&c| self.rewrite(tm, c)).collect();
                let new_children = new_children?;
                if new_children == children {
                    t
                } else {
                    rebuild(tm, &op, &new_children, t)?
                }
            }
        };
        self.cache.insert(t, result);
        Ok(result)
    }

    /// Applies the read-over-write axiom until the array argument is a plain
    /// variable, then flattens the read into a fresh element variable.
    fn rewrite_select(
        &mut self,
        tm: &mut TermManager,
        array: TermId,
        index: TermId,
    ) -> Result<TermId> {
        match tm.op(array).clone() {
            Op::Store => {
                let children = tm.children(array).to_vec();
                let (base, stored_index, stored_value) = (children[0], children[1], children[2]);
                let cond = tm.mk_eq(index, stored_index);
                let else_branch = self.rewrite_select(tm, base, index)?;
                tm.mk_ite(cond, stored_value, else_branch)
                    .map_err(|e| SolverError::Internal(e.to_string()))
            }
            Op::Ite => {
                let children = tm.children(array).to_vec();
                let then_sel = self.rewrite_select(tm, children[1], index)?;
                let else_sel = self.rewrite_select(tm, children[2], index)?;
                tm.mk_ite(children[0], then_sel, else_sel)
                    .map_err(|e| SolverError::Internal(e.to_string()))
            }
            Op::Var(_) => {
                let element = match tm.sort(array) {
                    Sort::Array { element, .. } => *element,
                    other => {
                        return Err(SolverError::Internal(format!(
                            "select on non-array sort {other}"
                        )))
                    }
                };
                let name = tm.var_name(array).unwrap_or("array").to_string();
                Ok(self.flatten_application(
                    tm,
                    GroupKey::Array(array),
                    vec![index],
                    element,
                    &name,
                ))
            }
            other => Err(SolverError::Unsupported(format!(
                "select on array expression {other:?}"
            ))),
        }
    }

    fn flatten_application(
        &mut self,
        tm: &mut TermManager,
        key: GroupKey,
        args: Vec<TermId>,
        ret: Sort,
        name_hint: &str,
    ) -> TermId {
        // Reuse the fresh variable when the exact same application was seen.
        if let Some(apps) = self.groups.get(&key) {
            for app in apps {
                if app.args == args {
                    return app.result;
                }
            }
        }
        let result = tm.mk_fresh_var(&format!("{name_hint}!ack"), ret);
        self.groups
            .entry(key)
            .or_default()
            .push(Application { args, result });
        result
    }

    /// Pairwise congruence: equal arguments imply equal results.
    fn congruence_axioms(&self, tm: &mut TermManager) -> Result<Vec<TermId>> {
        let mut axioms = Vec::new();
        let mut groups: Vec<(&GroupKey, &Vec<Application>)> = self.groups.iter().collect();
        groups.sort_by_key(|(k, _)| match k {
            GroupKey::Array(t) => (0u8, t.index() as u32),
            GroupKey::Fun(f) => (1u8, *f),
        });
        for (_, apps) in groups {
            for i in 0..apps.len() {
                for j in (i + 1)..apps.len() {
                    let a = &apps[i];
                    let b = &apps[j];
                    let mut arg_eqs = Vec::with_capacity(a.args.len());
                    for (&x, &y) in a.args.iter().zip(&b.args) {
                        arg_eqs.push(tm.mk_eq(x, y));
                    }
                    let args_equal = tm.mk_and(arg_eqs);
                    let results_equal = tm.mk_eq(a.result, b.result);
                    let axiom = tm
                        .mk_implies(args_equal, results_equal)
                        .map_err(|e| SolverError::Internal(e.to_string()))?;
                    axioms.push(axiom);
                }
            }
        }
        Ok(axioms)
    }
}

/// Rebuilds a term with new children, dispatching on the operator.
fn rebuild(tm: &mut TermManager, op: &Op, children: &[TermId], original: TermId) -> Result<TermId> {
    let err = |e: pact_ir::IrError| SolverError::Internal(e.to_string());
    let t = match op {
        Op::Not => tm.mk_not(children[0]),
        Op::And => tm.mk_and(children.iter().copied()),
        Op::Or => tm.mk_or(children.iter().copied()),
        Op::Xor => tm.mk_xor(children[0], children[1]).map_err(err)?,
        Op::Implies => tm.mk_implies(children[0], children[1]).map_err(err)?,
        Op::Ite => tm
            .mk_ite(children[0], children[1], children[2])
            .map_err(err)?,
        Op::Eq => tm.mk_eq(children[0], children[1]),
        Op::Distinct => tm.mk_distinct(children.to_vec()),
        Op::BvNot => tm.mk_bv_not(children[0]).map_err(err)?,
        Op::BvNeg => tm.mk_bv_neg(children[0]).map_err(err)?,
        Op::BvAnd => tm.mk_bv_and(children[0], children[1]).map_err(err)?,
        Op::BvOr => tm.mk_bv_or(children[0], children[1]).map_err(err)?,
        Op::BvXor => tm.mk_bv_xor(children[0], children[1]).map_err(err)?,
        Op::BvAdd => tm.mk_bv_add(children[0], children[1]).map_err(err)?,
        Op::BvSub => tm.mk_bv_sub(children[0], children[1]).map_err(err)?,
        Op::BvMul => tm.mk_bv_mul(children[0], children[1]).map_err(err)?,
        Op::BvUdiv => tm.mk_bv_udiv(children[0], children[1]).map_err(err)?,
        Op::BvUrem => tm.mk_bv_urem(children[0], children[1]).map_err(err)?,
        Op::BvShl => tm.mk_bv_shl(children[0], children[1]).map_err(err)?,
        Op::BvLshr => tm.mk_bv_lshr(children[0], children[1]).map_err(err)?,
        Op::BvAshr => tm.mk_bv_ashr(children[0], children[1]).map_err(err)?,
        Op::BvConcat => tm.mk_bv_concat(children[0], children[1]).map_err(err)?,
        Op::BvExtract { hi, lo } => tm.mk_bv_extract(children[0], *hi, *lo).map_err(err)?,
        Op::BvZeroExtend(by) => tm.mk_bv_zero_extend(children[0], *by).map_err(err)?,
        Op::BvSignExtend(by) => tm.mk_bv_sign_extend(children[0], *by).map_err(err)?,
        Op::BvUlt => tm.mk_bv_ult(children[0], children[1]).map_err(err)?,
        Op::BvUle => tm.mk_bv_ule(children[0], children[1]).map_err(err)?,
        Op::BvSlt => tm.mk_bv_slt(children[0], children[1]).map_err(err)?,
        Op::BvSle => tm.mk_bv_sle(children[0], children[1]).map_err(err)?,
        Op::RealAdd => tm.mk_real_add(children.to_vec()).map_err(err)?,
        Op::RealSub => tm.mk_real_sub(children[0], children[1]).map_err(err)?,
        Op::RealMul => tm.mk_real_mul(children[0], children[1]).map_err(err)?,
        Op::RealNeg => tm.mk_real_neg(children[0]).map_err(err)?,
        Op::RealLt => tm.mk_real_lt(children[0], children[1]).map_err(err)?,
        Op::RealLe => tm.mk_real_le(children[0], children[1]).map_err(err)?,
        Op::IntAdd => tm.mk_int_add(children[0], children[1]).map_err(err)?,
        Op::IntLe => tm.mk_int_le(children[0], children[1]).map_err(err)?,
        Op::IntLt => tm.mk_int_lt(children[0], children[1]).map_err(err)?,
        Op::FpAdd => tm.mk_fp_add(children[0], children[1]).map_err(err)?,
        Op::FpSub => tm.mk_fp_sub(children[0], children[1]).map_err(err)?,
        Op::FpMul => tm.mk_fp_mul(children[0], children[1]).map_err(err)?,
        Op::FpNeg => tm.mk_fp_neg(children[0]).map_err(err)?,
        Op::FpEq => tm.mk_fp_eq(children[0], children[1]).map_err(err)?,
        Op::FpLt => tm.mk_fp_lt(children[0], children[1]).map_err(err)?,
        Op::FpLe => tm.mk_fp_le(children[0], children[1]).map_err(err)?,
        Op::FpToReal => tm.mk_fp_to_real(children[0]).map_err(err)?,
        Op::RealToFp => {
            let sort = tm.sort(original);
            tm.mk_real_to_fp(children[0], sort).map_err(err)?
        }
        Op::Store => tm
            .mk_store(children[0], children[1], children[2])
            .map_err(err)?,
        Op::Select | Op::Apply(_) => {
            return Err(SolverError::Internal(
                "select/apply must be handled by the caller".to_string(),
            ))
        }
        Op::Var(_) | Op::BoolConst(_) | Op::BvConst(_) | Op::RealConst(_) | Op::IntConst(_) => {
            original
        }
    };
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_ir::Sort;

    #[test]
    fn select_over_store_is_rewritten() {
        let mut tm = TermManager::new();
        let a = tm.mk_var("a", Sort::array(Sort::BitVec(4), Sort::BitVec(8)));
        let i = tm.mk_var("i", Sort::BitVec(4));
        let j = tm.mk_var("j", Sort::BitVec(4));
        let v = tm.mk_bv_const(0xAA, 8);
        let stored = tm.mk_store(a, i, v).unwrap();
        let sel = tm.mk_select(stored, j).unwrap();
        let c = tm.mk_bv_const(0xAA, 8);
        let f = tm.mk_eq(sel, c);
        let pre = preprocess(&mut tm, &[f]).unwrap();
        assert_eq!(pre.assertions.len(), 1);
        // The rewritten assertion must not contain Select/Store operators.
        let mut stack = pre.assertions.clone();
        while let Some(t) = stack.pop() {
            assert!(!matches!(tm.op(t), Op::Select | Op::Store));
            stack.extend(tm.children(t).iter().copied());
        }
    }

    #[test]
    fn repeated_selects_share_the_fresh_variable() {
        let mut tm = TermManager::new();
        let a = tm.mk_var("a", Sort::array(Sort::BitVec(4), Sort::BitVec(8)));
        let i = tm.mk_var("i", Sort::BitVec(4));
        let s1 = tm.mk_select(a, i).unwrap();
        let s2 = tm.mk_select(a, i).unwrap();
        let eq = tm.mk_eq(s1, s2); // trivially true after sharing
        let pre = preprocess(&mut tm, &[eq]).unwrap();
        assert_eq!(pre.assertions[0], tm.mk_true());
        assert!(pre.axioms.is_empty());
    }

    #[test]
    fn distinct_selects_get_congruence_axioms() {
        let mut tm = TermManager::new();
        let a = tm.mk_var("a", Sort::array(Sort::BitVec(4), Sort::BitVec(8)));
        let i = tm.mk_var("i", Sort::BitVec(4));
        let j = tm.mk_var("j", Sort::BitVec(4));
        let s1 = tm.mk_select(a, i).unwrap();
        let s2 = tm.mk_select(a, j).unwrap();
        let f = tm.mk_distinct(vec![s1, s2]);
        let pre = preprocess(&mut tm, &[f]).unwrap();
        assert_eq!(pre.axioms.len(), 1);
    }

    #[test]
    fn uf_applications_are_ackermannized() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", vec![Sort::BitVec(8)], Sort::BitVec(8));
        let x = tm.mk_var("x", Sort::BitVec(8));
        let y = tm.mk_var("y", Sort::BitVec(8));
        let fx = tm.mk_apply(f, vec![x]).unwrap();
        let fy = tm.mk_apply(f, vec![y]).unwrap();
        let assertion = tm.mk_distinct(vec![fx, fy]);
        let pre = preprocess(&mut tm, &[assertion]).unwrap();
        assert_eq!(pre.axioms.len(), 1, "one congruence axiom for the pair");
        // The rewritten assertion has no Apply nodes.
        let mut stack = pre.assertions.clone();
        while let Some(t) = stack.pop() {
            assert!(!matches!(tm.op(t), Op::Apply(_)));
            stack.extend(tm.children(t).iter().copied());
        }
    }

    #[test]
    fn array_equality_is_unsupported() {
        let mut tm = TermManager::new();
        let sort = Sort::array(Sort::BitVec(4), Sort::BitVec(8));
        let a = tm.mk_var("a", sort.clone());
        let b = tm.mk_var("b", sort);
        let eq = tm.mk_eq(a, b);
        assert!(matches!(
            preprocess(&mut tm, &[eq]),
            Err(SolverError::Unsupported(_))
        ));
    }
}
