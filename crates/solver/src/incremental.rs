//! `IncrementalContext`: an activation-literal oracle whose encoder survives
//! `pop`.
//!
//! The counting loop is thousands of tiny `push` / assert-hash / `check` /
//! `pop` cycles, and the reference [`Context`](crate::Context) pays for each
//! one by discarding its whole encoder (learnt clauses, branching
//! activities, everything) the moment a `pop` crosses encoded assertions —
//! that is what [`OracleStats::rebuilds`] counts.  This backend never
//! rebuilds.  Every `push` allocates a fresh *activation literal* `a`; frame
//! assertions are encoded guarded (`¬a ∨ clause`), `check` solves under the
//! assumptions of all live activation literals, and `pop` retires a frame by
//! asserting the unit `¬a`.  Retired clauses are permanently satisfied,
//! while the encoder — and everything the CDCL solver learnt — stays.
//!
//! Native XOR rows (the `H_xor` fast path) cannot be guarded clause-wise, so
//! the guard is folded in on the CNF side: each guarded row gets a fresh
//! *slack* bit appended (`⊕ bits ⊕ s = rhs`) together with the clause
//! `¬a ∨ ¬s`.  While the frame is live, `a` forces `s = 0` and the row is
//! exactly the hash constraint; after `pop`, the free slack absorbs any
//! parity and the row is inert.
//!
//! Retired frames leave permanently satisfied clauses behind, so a very
//! long-lived context grows monotonically.  The backend bounds that growth
//! with *frame-garbage compaction*: every encoded guarded assertion is
//! journalled by its frame's stable id, `pop` counts the journal entries it
//! retires, and once the retired count crosses a threshold (and outweighs
//! the live journal) the next `check` re-encodes only the live frames into a
//! fresh solver.  A compaction is *not* a rebuild — it is deliberate garbage
//! collection, counted by [`OracleStats::compactions`] /
//! [`OracleStats::dead_clauses_reclaimed`] while `rebuilds` stays 0.
//!
//! ```
//! use pact_ir::{TermManager, Sort};
//! use pact_solver::{IncrementalContext, SolverResult};
//!
//! let mut tm = TermManager::new();
//! let x = tm.mk_var("x", Sort::BitVec(4));
//! let three = tm.mk_bv_const(3, 4);
//! let f = tm.mk_bv_ult(x, three).unwrap();
//! let mut ctx = IncrementalContext::new();
//! ctx.assert_term(f);
//! assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
//! ctx.push();
//! let zero = tm.mk_bv_const(0, 4);
//! let g = tm.mk_bv_ult(x, zero).unwrap();
//! ctx.assert_term(g);
//! assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unsat);
//! ctx.pop();
//! assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
//! assert_eq!(ctx.stats().rebuilds, 0); // the encoder survived
//! ```

use pact_ir::{BvValue, Rational, TermId, TermManager, Value};
use pact_sat::{InterruptFlag, Lit, SatOptions};

use crate::bitblast::Encoder;
use crate::context::{OracleStats, PreprocessCache, SolverConfig, SolverResult, TmView};
use crate::dpllt::solve_with_theory;
use crate::error::{Result, SolverError};
use crate::model;

/// One not-yet-encoded assertion, tagged with the activation literal of the
/// frame it belongs to (`None` for the permanent base level).
#[derive(Debug, Clone)]
enum Pending {
    Term(TermId),
    /// XOR of the chosen bits (`(variable, bit index)`) equals `rhs`.
    XorBits(Vec<(TermId, u32)>, bool),
}

/// One live assertion-stack frame.
#[derive(Debug)]
struct Frame {
    /// Stable identity of the frame (pending and journal entries are keyed
    /// by it, so a compaction can re-allocate activation literals without
    /// retagging them).
    id: u64,
    /// The frame's activation literal (assumed by `check`, retired by `pop`).
    activation: Lit,
    /// Engine ids of the XOR rows this frame asserted, retired with it.
    xor_rows: Vec<usize>,
}

/// Default minimum number of retired guarded assertions before a compaction
/// is considered (see [`IncrementalContext::set_compaction_threshold`]).
const DEFAULT_COMPACTION_MIN_DEAD: u64 = 64;

/// The activation-literal SMT oracle: same assertion-stack interface as
/// [`Context`](crate::Context), but `pop` retires frames instead of
/// rebuilding, so [`OracleStats::rebuilds`] stays 0 for its whole lifetime.
///
/// Assertions made outside any frame are permanent and encoded unguarded.
/// Assertions inside a frame are guarded by the frame's activation literal;
/// `check` assumes every live activation literal.  The trade-off against the
/// rebuilding backend: retired frames leave their (permanently satisfied)
/// clauses and neutralised XOR rows in the solver, so very long-lived
/// contexts grow monotonically — frame-garbage compaction re-encodes the
/// live frames into a fresh solver once enough retired clauses accumulate
/// (see [`IncrementalContext::set_compaction_threshold`]).
#[derive(Debug)]
pub struct IncrementalContext {
    config: SolverConfig,
    stats: OracleStats,
    /// Variables whose bits must always exist (projection variables).
    tracked_vars: Vec<TermId>,
    encoder: Encoder,
    /// SAT-level diversification the encoder was built with; a compaction's
    /// replacement encoder must search identically, so the options are kept.
    sat_options: SatOptions,
    /// Interrupt flags watched by the solver; re-installed on the fresh
    /// encoder after a compaction so cancellation survives it.
    interrupts: Vec<InterruptFlag>,
    /// Live frames, outermost first.
    frames: Vec<Frame>,
    /// Next value of [`Frame::id`]; never reused.
    next_frame_id: u64,
    /// Assertions awaiting encoding at the next `check`, keyed by frame id.
    pending: Vec<(Option<u64>, Pending)>,
    /// Journal of every assertion already in the solver, keyed by frame id:
    /// the replay source for compaction.  `pop` drops a dying frame's
    /// entries and adds them to `dead_entries`.
    encoded: Vec<(Option<u64>, Pending)>,
    /// Journal entries retired by `pop` since the last compaction.
    dead_entries: u64,
    /// Minimum `dead_entries` before a compaction is considered.
    compaction_min_dead: u64,
    /// Conflicts accumulated by encoders that compaction discarded.
    retired_conflicts: u64,
    /// Simplex witness (indexed by LRA variable) from the last SAT check.
    real_model_values: Vec<Rational>,
    /// Term-id-keyed preprocessing memo; never invalidated (term ids are
    /// immutable for the manager lineage), so compaction journal replays
    /// re-encode from it instead of re-running preprocessing.
    preprocess_cache: PreprocessCache,
}

impl Default for IncrementalContext {
    fn default() -> Self {
        IncrementalContext {
            config: SolverConfig::default(),
            stats: OracleStats::default(),
            tracked_vars: Vec::new(),
            encoder: Encoder::default(),
            sat_options: SatOptions::default(),
            interrupts: Vec::new(),
            frames: Vec::new(),
            next_frame_id: 0,
            pending: Vec::new(),
            encoded: Vec::new(),
            dead_entries: 0,
            compaction_min_dead: DEFAULT_COMPACTION_MIN_DEAD,
            retired_conflicts: 0,
            real_model_values: Vec::new(),
            preprocess_cache: PreprocessCache::default(),
        }
    }
}

impl IncrementalContext {
    /// Creates an oracle with default limits.
    pub fn new() -> Self {
        IncrementalContext::default()
    }

    /// Creates an oracle with the given resource limits.
    pub fn with_config(config: SolverConfig) -> Self {
        IncrementalContext {
            config,
            ..IncrementalContext::default()
        }
    }

    /// Creates an oracle with the given resource limits and SAT-level
    /// diversification options (a portfolio worker's constructor).
    pub(crate) fn with_config_and_options(config: SolverConfig, sat_options: SatOptions) -> Self {
        IncrementalContext {
            config,
            encoder: Encoder::with_options(sat_options),
            sat_options,
            ..IncrementalContext::default()
        }
    }

    /// Replaces the interrupt flags watched by the underlying SAT solver;
    /// an empty list removes them.  The flags are retained so a compaction
    /// can re-install them on its fresh encoder.
    pub(crate) fn set_interrupt_flags(&mut self, flags: Vec<InterruptFlag>) {
        self.interrupts = flags.clone();
        self.encoder.sat().set_interrupts(flags);
    }

    /// Cumulative statistics.  `rebuilds` is 0 by construction; compactions
    /// are counted separately (they are garbage collection, not rebuilds).
    pub fn stats(&self) -> OracleStats {
        let mut stats = self.stats;
        stats.conflicts = self.retired_conflicts + self.encoder.sat_stats().conflicts;
        stats
    }

    /// Sets the minimum number of retired guarded assertions that arms
    /// frame-garbage compaction (default 64).  Compaction triggers at the
    /// start of a `check` once at least `min_dead` journal entries have been
    /// retired by `pop` *and* the dead entries outnumber the live journal —
    /// the re-encode then provably at least halves the clause database.
    pub fn set_compaction_threshold(&mut self, min_dead: usize) {
        self.compaction_min_dead = min_dead as u64;
    }

    /// Changes the resource limits for subsequent checks.
    pub fn set_config(&mut self, config: SolverConfig) {
        self.config = config;
    }

    /// Pushes a new assertion-stack frame by allocating its activation
    /// literal.
    pub fn push(&mut self) {
        let activation = self.encoder.sat().new_var().positive();
        let id = self.next_frame_id;
        self.next_frame_id += 1;
        self.frames.push(Frame {
            id,
            activation,
            xor_rows: Vec::new(),
        });
    }

    /// Pops the most recent frame by retiring its activation literal: the
    /// unit `¬a` permanently satisfies every clause the frame guarded and
    /// frees the slack bit of every guarded XOR row.  The encoder — and all
    /// learnt clauses — survive.
    ///
    /// # Panics
    ///
    /// Panics if there is no frame to pop (see the [`Oracle`](crate::Oracle)
    /// contract).
    pub fn pop(&mut self) {
        let frame = self.frames.pop().expect("pop without matching push");
        // Un-encoded assertions of the dying frame will never be needed.
        self.pending.retain(|(guard, _)| *guard != Some(frame.id));
        // Already-encoded assertions leave permanently satisfied garbage in
        // the solver: drop them from the replay journal and count them, so
        // compaction knows how much a re-encode would reclaim.
        let before = self.encoded.len();
        self.encoded.retain(|(guard, _)| *guard != Some(frame.id));
        self.dead_entries += (before - self.encoded.len()) as u64;
        // `a` only ever occurs negatively in guard clauses, so the unit can
        // never conflict; `add_clause` returning `false` would mean the
        // formula was already unsat at level zero.
        self.encoder.sat().add_clause(&[!frame.activation]);
        // Retire the frame's XOR rows outright: their slack bits already
        // neutralise them logically, but deactivation also stops the engine
        // spending propagation work on them in every later solve.
        for row in frame.xor_rows {
            self.encoder.sat().deactivate_xor(row);
        }
    }

    /// The innermost live frame's id, if any.
    fn current_guard(&self) -> Option<u64> {
        self.frames.last().map(|f| f.id)
    }

    /// Compacts when enough frame garbage has accumulated: at least the
    /// configured minimum, and more dead journal entries than live ones.
    fn maybe_compact(&mut self) {
        if self.dead_entries >= self.compaction_min_dead
            && self.dead_entries >= self.encoded.len() as u64
        {
            self.compact();
        }
    }

    /// Replaces the encoder with a fresh one and queues every live journal
    /// entry for re-encoding, shedding all clauses owned by retired frames.
    /// Learnt clauses are lost too — that is the price of the reclaim, which
    /// is why compaction only fires when garbage dominates.
    fn compact(&mut self) {
        // Bank the dying encoder's conflict count so `stats()` stays
        // cumulative across the swap.
        self.retired_conflicts += self.encoder.sat_stats().conflicts;
        self.encoder = Encoder::with_options(self.sat_options);
        self.encoder.sat().set_interrupts(self.interrupts.clone());
        // Live frames get fresh activation literals in the new solver; their
        // XOR rows died with the old engine and will be re-added by replay.
        for frame in &mut self.frames {
            frame.activation = self.encoder.sat().new_var().positive();
            frame.xor_rows.clear();
        }
        // Replay journal first, then whatever was already pending, so the
        // encode order (and thus the encoding) matches assertion order.
        let mut requeued = std::mem::take(&mut self.encoded);
        requeued.append(&mut self.pending);
        self.pending = requeued;
        self.stats.compactions += 1;
        self.stats.dead_clauses_reclaimed += self.dead_entries;
        self.dead_entries = 0;
    }

    /// Asserts a boolean term in the current frame.
    pub fn assert_term(&mut self, t: TermId) {
        self.pending.push((self.current_guard(), Pending::Term(t)));
    }

    /// Asserts a native XOR constraint over individual bits of discrete
    /// variables: `⊕ bit ⊕ ... = rhs` (the `H_xor` fast path).
    pub fn assert_xor_bits(&mut self, bits: Vec<(TermId, u32)>, rhs: bool) {
        self.pending
            .push((self.current_guard(), Pending::XorBits(bits, rhs)));
    }

    /// Declares a variable whose bits must exist in every encoding, even if
    /// it never occurs in an assertion.  Unlike the rebuilding backend this
    /// never discards the encoder: the bits are simply appended at the next
    /// `check`.
    pub fn track_var(&mut self, var: TermId) {
        if !self.tracked_vars.contains(&var) {
            self.tracked_vars.push(var);
        }
    }

    /// Checks satisfiability of the current assertion stack by solving under
    /// the assumptions of all live activation literals.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Unsupported`] when the formula falls outside
    /// the supported fragment.
    pub fn check(&mut self, tm: &mut TermManager) -> Result<SolverResult> {
        self.check_view(TmView::Exclusive(tm))
    }

    /// [`IncrementalContext::check`] against a shared term manager: every
    /// raw assertion must have its preprocessing supplied through `cache`
    /// (the portfolio warms it before dispatching its racing workers).
    pub(crate) fn check_shared(
        &mut self,
        tm: &TermManager,
        cache: &PreprocessCache,
    ) -> Result<SolverResult> {
        self.check_view(TmView::Shared(tm, cache))
    }

    fn check_view(&mut self, mut view: TmView<'_>) -> Result<SolverResult> {
        self.stats.checks += 1;
        self.maybe_compact();
        self.encode_view(&mut view)?;
        let assumptions: Vec<Lit> = self.frames.iter().map(|f| f.activation).collect();
        Ok(solve_with_theory(
            &mut self.encoder,
            &assumptions,
            self.config.max_conflicts,
            self.config.max_theory_iterations,
            &mut self.stats,
            &mut self.real_model_values,
        ))
    }

    /// Encodes tracked variables and pending assertions into the solver
    /// without solving.  Shared by `check_view` and the cube front-end's
    /// [`IncrementalContext::prepare`].
    fn encode_view(&mut self, view: &mut TmView<'_>) -> Result<()> {
        for i in 0..self.tracked_vars.len() {
            self.encoder
                .ensure_var_bits(view.tm(), self.tracked_vars[i])?;
        }
        // Encode front-to-back, removing entries only once they are in the
        // solver: an encoding error leaves the failing assertion (and the
        // rest) pending, so a retried `check` reports the same error instead
        // of silently answering for a weakened formula.
        let mut encoded = 0;
        let result = loop {
            let Some((guard, assertion)) = self.pending.get(encoded).cloned() else {
                break Ok(());
            };
            match self.encode_one(view, guard, assertion) {
                Ok(()) => encoded += 1,
                Err(error) => break Err(error),
            }
        };
        // Everything that made it into the solver moves to the replay
        // journal, where it stays until its frame is popped (or forever, for
        // base-level assertions).
        self.encoded.extend(self.pending.drain(..encoded));
        result
    }

    /// Brings the encoder up to date (tracked-variable bits, pending
    /// assertions) without running a solve, reading preprocessing from an
    /// already-warmed cache.  The cube-and-conquer front-end calls this
    /// before its lookahead pass — it has just warmed the cache for its
    /// conquest workers, so re-preprocessing here would double the work of
    /// the hottest path.
    pub(crate) fn prepare_shared(
        &mut self,
        tm: &TermManager,
        cache: &PreprocessCache,
    ) -> Result<()> {
        self.encode_view(&mut TmView::Shared(tm, cache))
    }

    /// Read-only access to the encoder (the cube front-end maps projection
    /// bits onto SAT variables through it).
    pub(crate) fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// Mutable access to the encoder's SAT solver (the cube front-end runs
    /// its read-only lookahead through it).
    pub(crate) fn encoder_mut(&mut self) -> &mut Encoder {
        &mut self.encoder
    }

    fn encode_one(
        &mut self,
        view: &mut TmView<'_>,
        guard_id: Option<u64>,
        assertion: Pending,
    ) -> Result<()> {
        // Resolve the frame id to its *current* activation literal only now:
        // a compaction between queueing and encoding re-allocates activation
        // literals, and the id indirection is what keeps journal entries
        // valid across that.
        let guard = guard_id.map(|id| {
            self.frames
                .iter()
                .find(|f| f.id == id)
                .expect("pending entry belongs to a live frame")
                .activation
        });
        match assertion {
            Pending::Term(t) => {
                let pre = view.preprocess(
                    t,
                    &mut self.preprocess_cache,
                    &mut self.stats.preprocess_cache_hits,
                )?;
                let tm = view.tm();
                for &a in pre.assertions.iter().chain(pre.axioms.iter()) {
                    if self.encoder.try_assert_blocking(tm, a, guard)? {
                        continue;
                    }
                    match guard {
                        None => self.encoder.assert_term(tm, a)?,
                        Some(g) => {
                            let lit = self.encoder.encode_bool(tm, a)?;
                            self.encoder.sat().add_clause(&[!g, lit]);
                        }
                    }
                }
            }
            Pending::XorBits(bits, rhs) => {
                let tm = view.tm();
                let mut lits = Vec::with_capacity(bits.len() + 1);
                for (var, bit) in bits {
                    self.encoder.ensure_var_bits(tm, var)?;
                    let var_bits = self.encoder.var_bits(tm, var).ok_or_else(|| {
                        SolverError::Internal("tracked variable has no bits".to_string())
                    })?;
                    let lit = *var_bits.get(bit as usize).ok_or_else(|| {
                        SolverError::Internal(format!(
                            "bit index {bit} out of range for hash constraint"
                        ))
                    })?;
                    lits.push(lit);
                }
                if let Some(g) = guard {
                    // CNF-side selector: while the frame is live, `g` forces
                    // the slack off and the row is exactly the constraint;
                    // after `pop` asserts `¬g` the free slack absorbs any
                    // parity, neutralising the row.
                    let slack = self.encoder.sat().new_var().positive();
                    self.encoder.sat().add_clause(&[!g, !slack]);
                    lits.push(slack);
                }
                let row = self.encoder.add_xor_over_lits(&lits, rhs);
                if let (Some(row), Some(id)) = (row, guard_id) {
                    if let Some(frame) = self.frames.iter_mut().find(|f| f.id == id) {
                        frame.xor_rows.push(row);
                    }
                }
            }
        }
        Ok(())
    }

    /// Value of a variable in the most recent satisfying assignment (see
    /// [`Context::model_value`](crate::Context::model_value) for the
    /// per-sort semantics).
    pub fn model_value(&self, tm: &TermManager, var: TermId) -> Option<Value> {
        model::model_value(&self.encoder, &self.real_model_values, tm, var)
    }

    /// The projected model: the value of each projection variable in the
    /// most recent satisfying assignment, in the order given.
    pub fn projected_model(&self, tm: &TermManager, projection: &[TermId]) -> Option<Vec<BvValue>> {
        model::projected_model(&self.encoder, tm, projection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_ir::Sort;

    fn assert_bv_lt(tm: &mut TermManager, x: TermId, bound: u128, width: u32) -> TermId {
        let c = tm.mk_bv_const(bound, width);
        tm.mk_bv_ult(x, c).unwrap()
    }

    #[test]
    fn push_pop_cycles_never_rebuild() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        let f = assert_bv_lt(&mut tm, x, 40, 6);
        let mut ctx = IncrementalContext::new();
        ctx.track_var(x);
        ctx.assert_term(f);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        // Many frames, each pinning x into a smaller range, popped again.
        for bound in [30u128, 20, 10, 1] {
            ctx.push();
            let g = assert_bv_lt(&mut tm, x, bound, 6);
            ctx.assert_term(g);
            assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
            let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
            assert!(v.as_u128() < bound);
            ctx.pop();
        }
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        assert_eq!(ctx.stats().rebuilds, 0);
        assert!(ctx.stats().checks >= 6);
    }

    #[test]
    fn popped_frames_restore_satisfiability() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let f = assert_bv_lt(&mut tm, x, 3, 4);
        let mut ctx = IncrementalContext::new();
        ctx.assert_term(f);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        ctx.push();
        let g = assert_bv_lt(&mut tm, x, 0, 4); // impossible
        ctx.assert_term(g);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unsat);
        ctx.pop();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        assert_eq!(ctx.stats().rebuilds, 0);
    }

    #[test]
    fn guarded_xor_rows_are_neutralised_by_pop() {
        // Odd parity over 3 bits inside a frame: 4 of 8 values.  After the
        // pop, all 8 values must be reachable again.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(3));
        let mut ctx = IncrementalContext::new();
        ctx.track_var(x);
        ctx.push();
        ctx.assert_xor_bits(vec![(x, 0), (x, 1), (x, 2)], true);
        let mut inside = Vec::new();
        loop {
            match ctx.check(&mut tm).unwrap() {
                SolverResult::Sat => {
                    let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
                    assert_eq!(v.as_u128().count_ones() % 2, 1);
                    assert!(!inside.contains(&v.as_u128()));
                    inside.push(v.as_u128());
                    let c = tm.mk_bv_value(v);
                    let eq = tm.mk_eq(x, c);
                    let block = tm.mk_not(eq);
                    ctx.assert_term(block);
                }
                SolverResult::Unsat => break,
                SolverResult::Unknown => panic!("unexpected unknown"),
            }
        }
        assert_eq!(inside.len(), 4);
        ctx.pop();
        // The frame's XOR row and blocking clauses are retired with it.
        let mut outside = Vec::new();
        loop {
            match ctx.check(&mut tm).unwrap() {
                SolverResult::Sat => {
                    let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
                    assert!(!outside.contains(&v.as_u128()));
                    outside.push(v.as_u128());
                    let c = tm.mk_bv_value(v);
                    let eq = tm.mk_eq(x, c);
                    let block = tm.mk_not(eq);
                    ctx.assert_term(block);
                }
                SolverResult::Unsat => break,
                SolverResult::Unknown => panic!("unexpected unknown"),
            }
        }
        assert_eq!(outside.len(), 8);
        assert_eq!(ctx.stats().rebuilds, 0);
    }

    #[test]
    fn nested_frames_retire_independently() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(5));
        let mut ctx = IncrementalContext::new();
        ctx.track_var(x);
        let f = assert_bv_lt(&mut tm, x, 20, 5);
        ctx.assert_term(f);
        ctx.push();
        let g = assert_bv_lt(&mut tm, x, 10, 5);
        ctx.assert_term(g);
        ctx.push();
        let h = assert_bv_lt(&mut tm, x, 2, 5);
        ctx.assert_term(h);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
        assert!(v.as_u128() < 2);
        ctx.pop(); // drop x < 2, keep x < 10
                   // Force a value in [2, 10) to prove only the inner frame died.
        ctx.push();
        let two = tm.mk_bv_const(2, 5);
        let ge2 = tm.mk_bv_ule(two, x).unwrap();
        ctx.assert_term(ge2);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
        assert!((2..10).contains(&v.as_u128()));
        ctx.pop();
        ctx.pop();
        assert_eq!(ctx.stats().rebuilds, 0);
    }

    #[test]
    fn hybrid_frames_work_under_assumptions() {
        // Base: b < 4 and 0 < r.  Frame: r < 1 and a contradictory r > 2.
        let mut tm = TermManager::new();
        let b = tm.mk_var("b", Sort::BitVec(4));
        let r = tm.mk_var("r", Sort::Real);
        let four = tm.mk_bv_const(4, 4);
        let f1 = tm.mk_bv_ult(b, four).unwrap();
        let zero = tm.mk_real_const(Rational::ZERO);
        let f2 = tm.mk_real_lt(zero, r).unwrap();
        let mut ctx = IncrementalContext::new();
        ctx.track_var(b);
        ctx.assert_term(f1);
        ctx.assert_term(f2);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        ctx.push();
        let one = tm.mk_real_const(Rational::ONE);
        let two = tm.mk_real_const(Rational::from_int(2));
        let lt1 = tm.mk_real_lt(r, one).unwrap();
        let gt2 = tm.mk_real_lt(two, r).unwrap();
        ctx.assert_term(lt1);
        ctx.assert_term(gt2);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Unsat);
        ctx.pop();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        let rv = match ctx.model_value(&tm, r).unwrap() {
            Value::Real(v) => v,
            other => panic!("expected real value, got {other:?}"),
        };
        assert!(rv > Rational::ZERO);
        assert_eq!(ctx.stats().rebuilds, 0);
    }

    #[test]
    fn tracking_new_vars_never_rebuilds() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let f = assert_bv_lt(&mut tm, x, 5, 4);
        let mut ctx = IncrementalContext::new();
        ctx.track_var(x);
        ctx.assert_term(f);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        let y = tm.mk_var("y", Sort::BitVec(4));
        ctx.track_var(y); // appended at the next check, no rebuild
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        assert!(ctx.projected_model(&tm, &[x, y]).is_some());
        assert_eq!(ctx.stats().rebuilds, 0);
    }

    #[test]
    fn compaction_reclaims_dead_frames_and_preserves_live_ones() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(5));
        let mut ctx = IncrementalContext::new();
        ctx.set_compaction_threshold(1);
        ctx.track_var(x);
        let f = assert_bv_lt(&mut tm, x, 20, 5);
        ctx.assert_term(f);
        // A long-lived guarded frame with both clause- and XOR-garbage
        // neighbours: x < 10 plus odd parity over the low three bits.
        ctx.push();
        let g = assert_bv_lt(&mut tm, x, 10, 5);
        ctx.assert_term(g);
        ctx.assert_xor_bits(vec![(x, 0), (x, 1), (x, 2)], true);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        // Churn short-lived inner frames; each pop retires journal entries
        // and the threshold of 1 arms a compaction for the next check.
        for bound in [9u128, 8, 7, 6, 5] {
            ctx.push();
            let h = assert_bv_lt(&mut tm, x, bound, 5);
            ctx.assert_term(h);
            assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
            ctx.pop();
        }
        let stats = ctx.stats();
        assert!(stats.compactions > 0, "threshold 1 must trigger compaction");
        assert!(stats.dead_clauses_reclaimed > 0);
        assert_eq!(stats.rebuilds, 0, "compaction is not a rebuild");
        // The live frame survived every re-encode: enumerating must yield
        // exactly the odd-parity values below 10, i.e. {1, 2, 4, 7, 9}.
        let mut found = Vec::new();
        loop {
            match ctx.check(&mut tm).unwrap() {
                SolverResult::Sat => {
                    let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
                    assert!(!found.contains(&v.as_u128()));
                    found.push(v.as_u128());
                    let c = tm.mk_bv_value(v);
                    let eq = tm.mk_eq(x, c);
                    let block = tm.mk_not(eq);
                    ctx.assert_term(block);
                }
                SolverResult::Unsat => break,
                SolverResult::Unknown => panic!("unexpected unknown"),
            }
        }
        found.sort_unstable();
        assert_eq!(found, vec![1, 2, 4, 7, 9]);
        // Popping the live frame still restores the base formula.
        ctx.pop();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        assert_eq!(ctx.stats().rebuilds, 0);
    }

    #[test]
    fn compaction_replay_serves_preprocessing_from_the_cache() {
        // A compaction re-encodes the live journal into a fresh solver; the
        // replay must be served from the term-id-keyed preprocessing memo
        // rather than re-running preprocessing, and must not change the
        // verdict.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(5));
        let mut ctx = IncrementalContext::new();
        ctx.set_compaction_threshold(1);
        ctx.track_var(x);
        let f = assert_bv_lt(&mut tm, x, 20, 5);
        ctx.assert_term(f);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        assert_eq!(ctx.stats().preprocess_cache_hits, 0);
        ctx.push();
        let g = assert_bv_lt(&mut tm, x, 10, 5);
        ctx.assert_term(g);
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        ctx.pop(); // retires `g`; threshold 1 arms a compaction
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
        let stats = ctx.stats();
        assert!(stats.compactions > 0, "threshold 1 must trigger compaction");
        // The journal replay re-encoded `f` from the cache.
        assert!(stats.preprocess_cache_hits >= 1);
        assert_eq!(stats.rebuilds, 0);
    }

    #[test]
    fn default_threshold_never_compacts_small_workloads() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let mut ctx = IncrementalContext::new();
        ctx.track_var(x);
        for bound in [5u128, 4, 3] {
            ctx.push();
            let g = assert_bv_lt(&mut tm, x, bound, 4);
            ctx.assert_term(g);
            assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
            ctx.pop();
        }
        let stats = ctx.stats();
        assert_eq!(stats.compactions, 0);
        assert_eq!(stats.dead_clauses_reclaimed, 0);
    }

    #[test]
    fn popping_an_unchecked_frame_discards_its_pending_assertions() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let mut ctx = IncrementalContext::new();
        ctx.track_var(x);
        ctx.push();
        let g = assert_bv_lt(&mut tm, x, 0, 4); // impossible, never checked
        ctx.assert_term(g);
        ctx.pop();
        assert_eq!(ctx.check(&mut tm).unwrap(), SolverResult::Sat);
    }

    #[test]
    fn encoding_errors_keep_the_failing_assertion_pending() {
        // A retried `check` must report the same error, not silently answer
        // for the formula minus the assertion that failed to encode.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let f = assert_bv_lt(&mut tm, x, 5, 4);
        let r = tm.mk_var("r", Sort::Real);
        let rr = tm.mk_real_mul(r, r).unwrap(); // non-linear: unsupported
        let one = tm.mk_real_const(Rational::ONE);
        let bad = tm.mk_real_lt(rr, one).unwrap();
        let mut ctx = IncrementalContext::new();
        ctx.assert_term(f);
        ctx.assert_term(bad);
        assert!(ctx.check(&mut tm).is_err());
        assert!(ctx.check(&mut tm).is_err());
    }

    #[test]
    #[should_panic(expected = "pop without matching push")]
    fn unbalanced_pop_panics() {
        let mut ctx = IncrementalContext::new();
        ctx.pop();
    }
}
