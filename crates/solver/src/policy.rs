//! Adaptive per-check backend policy: one oracle that routes every `check`
//! to whichever backend the observed statistics say is winning.
//!
//! [`PolicyOracle`] wraps the four concrete backends ([`Context`],
//! [`IncrementalContext`], [`PortfolioContext`], [`CubeContext`]) behind the
//! ordinary [`Oracle`] surface.  It starts every count on the incremental
//! engine and re-routes per check from a sliding window of observations:
//!
//! * **Escalate to cube** when the windowed mean of CDCL conflicts per
//!   incremental check crosses [`ESCALATE_CONFLICTS`] — the instance has
//!   stopped being trivial, so splitting pays.
//! * **Grow the cube depth** (within [`MAX_CUBE_DEPTH`]) when a split's
//!   lookahead refutes at least half of the potential frontier — the
//!   refutation rate says deeper splits are cheap and effective.
//! * **Skip splitting entirely** when the last [`PROBE_FAST_CHECKS`] cube
//!   checks probe-solved instantly (no split generated): the region is easy
//!   again, so the policy decays back to the incremental engine.
//! * **Escalate to portfolio** when the conflict trend stalls outright
//!   ([`PORTFOLIO_CONFLICTS`]) or when cube splits stop refuting anything —
//!   diversified racing is the last resort for unstructured hardness.
//! * **Decay back from portfolio** after a fixed lease of
//!   [`PORTFOLIO_LEASE`] checks.  The natural decay signal — the win spread
//!   collapsing onto one worker — is *timing-dependent* (worker wins vary
//!   run to run), so routing on it would break bit-identical reports.  The
//!   deterministic lease is the spread-collapse proxy: when the portfolio
//!   stops being needed the next incremental window simply never escalates
//!   again.
//!
//! # The determinism rule
//!
//! Every routing decision is a **pure function of the deterministic slice
//! of the observed stats stream**: verdicts, incremental conflict deltas
//! (single-engine, hence reproducible), and the cube scout's split/refute
//! deltas (scout-side, single-threaded).  Timing-coupled telemetry —
//! portfolio worker wins, conquest finishes, cancelled counts, wall time —
//! is deliberately *excluded* from the routing inputs.
//!
//! The subtle half of the rule is **model canonicalization**.  A parallel
//! backend's SAT *witness* is timing-dependent (whichever racer or
//! conquest worker wins supplies the model), and the counting loop asserts
//! a blocking clause for exactly that witness — so one leaked
//! nondeterministic model contaminates the entire downstream
//! assertion/check stream, and with it every "deterministic" conflict
//! delta the policy routes on.  The policy therefore never surfaces a
//! parallel slot's model: when the portfolio or cube slot answers SAT, the
//! verdict and witness are re-derived on the (warm, single-engine)
//! incremental slot, which is the model source the caller sees.  UNSAT and
//! `Unknown` answers carry no witness and are passed through as-is.
//! Consequently the same assertion/check stream routes identically on
//! every run, thread count, and machine, and the differential suite pins
//! adaptive reports bit-identical to every other backend.
//!
//! Switching backends mid-count is sound because the policy journals the
//! assertion stack (frames of asserts, XOR rows, and tracked variables) and
//! replays it into a backend the first time that backend is engaged; after
//! that every stack operation fans out to all live backends, so any of them
//! can serve the next check.

use std::collections::VecDeque;

use pact_ir::{BvValue, TermId, TermManager, Value};
use pact_sat::InterruptFlag;

use crate::context::{Context, OracleStats, SolverConfig, SolverResult};
use crate::cube::{CubeContext, CubeStats, MAX_CUBE_DEPTH};
use crate::error::Result;
use crate::incremental::IncrementalContext;
use crate::oracle::Oracle;
use crate::portfolio::{PortfolioContext, PortfolioStats};

/// Number of backend slots the policy routes across (the order of
/// [`PolicyStats::backend_checks`]): rebuild, incremental, portfolio, cube.
pub const POLICY_BACKENDS: usize = 4;

/// Slot index of the rebuilding [`Context`] backend.  The current rule set
/// never routes to it (the incremental engine dominates it on every signal
/// we observe); the slot exists so the accounting vector lines up with the
/// `BackendSpec` vocabulary and so a future rule can demote to it.
pub const SLOT_REBUILD: usize = 0;
/// Slot index of the [`IncrementalContext`] backend (the starting route).
pub const SLOT_INCREMENTAL: usize = 1;
/// Slot index of the [`PortfolioContext`] backend.
pub const SLOT_PORTFOLIO: usize = 2;
/// Slot index of the [`CubeContext`] backend.
pub const SLOT_CUBE: usize = 3;

/// Sliding-window length (checks) over which routing signals are averaged.
pub const POLICY_WINDOW: usize = 8;
/// Incremental observations required before the policy may escalate.
pub const POLICY_WARMUP: usize = 4;
/// Windowed mean conflicts per incremental check at which the policy
/// escalates to cube splitting.
pub const ESCALATE_CONFLICTS: u64 = 16;
/// Windowed mean conflicts per incremental check at which the policy
/// escalates straight to the portfolio (the trend has stalled hard).
pub const PORTFOLIO_CONFLICTS: u64 = 96;
/// Consecutive cube checks that probe-solve instantly (no split generated)
/// before the policy stops splitting and decays back to incremental.
pub const PROBE_FAST_CHECKS: u32 = 3;
/// Consecutive splitting cube checks whose lookahead refutes nothing before
/// the policy gives up on structure and escalates to the portfolio.
pub const CUBE_HARD_CHECKS: u32 = 2;
/// Checks the portfolio keeps the route after an escalation.  See the
/// module docs for why the decay is a deterministic lease rather than a
/// win-spread trigger.
pub const PORTFOLIO_LEASE: u32 = 6;

/// Cube depth the policy starts splitting at (grown adaptively up to
/// [`MAX_CUBE_DEPTH`]).
pub const POLICY_CUBE_DEPTH: usize = 3;
/// Conquest workers behind the policy's cube slot.
pub const POLICY_CUBE_WORKERS: usize = 2;
/// Racing workers behind the policy's portfolio slot.
pub const POLICY_PORTFOLIO_WORKERS: usize = 3;

/// Routing decisions recorded over a [`PolicyOracle`]'s lifetime (the
/// `CountStats` feed, analogous to [`PortfolioStats`] / [`CubeStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Times the routed backend changed between consecutive checks.
    pub switches: u64,
    /// Checks served by each backend slot, in the order rebuild,
    /// incremental, portfolio, cube (see [`SLOT_REBUILD`] &c.).
    pub backend_checks: [u64; POLICY_BACKENDS],
    /// Deepest cube split the policy reached (0 when the cube slot was
    /// never engaged).
    pub cube_depth_max: u32,
}

/// One journalled assertion-stack operation, replayed into a backend the
/// first time the policy engages it.
#[derive(Clone)]
enum JournalOp {
    AssertTerm(TermId),
    AssertXor(Vec<(TermId, u32)>, bool),
    Track(TermId),
}

/// A live backend slot.  The payloads are boxed: a slot is created once
/// and then only reached through `as_dyn`, so the indirection costs one
/// allocation per engaged backend while keeping the four-slot array
/// pointer-sized per entry.
enum Inner {
    Rebuild(Box<Context>),
    Incremental(Box<IncrementalContext>),
    Portfolio(Box<PortfolioContext>),
    Cube(Box<CubeContext>),
}

impl Inner {
    fn as_dyn(&mut self) -> &mut dyn Oracle {
        match self {
            Inner::Rebuild(c) => c.as_mut(),
            Inner::Incremental(c) => c.as_mut(),
            Inner::Portfolio(c) => c.as_mut(),
            Inner::Cube(c) => c.as_mut(),
        }
    }

    fn as_dyn_ref(&self) -> &dyn Oracle {
        match self {
            Inner::Rebuild(c) => c.as_ref(),
            Inner::Incremental(c) => c.as_ref(),
            Inner::Portfolio(c) => c.as_ref(),
            Inner::Cube(c) => c.as_ref(),
        }
    }
}

/// The deterministic slice of one check's observation (see module docs).
struct Obs {
    /// Slot that served the check.
    slot: usize,
    /// CDCL conflicts the check cost (incremental checks only; 0 for the
    /// parallel slots, whose conflict totals are timing-dependent).
    conflicts: u64,
}

/// The policy's current routing mode.
enum Mode {
    /// Routing to the incremental engine, watching the conflict trend.
    Incremental,
    /// Routing to the cube splitter.
    Cube {
        /// Consecutive checks that probe-solved without splitting.
        idle: u32,
        /// Consecutive splitting checks whose lookahead refuted nothing.
        hard: u32,
    },
    /// Routing to the portfolio for the remainder of a fixed lease.
    Portfolio {
        /// Checks left on the lease.
        left: u32,
    },
}

/// An adaptive oracle routing each `check` across the four concrete
/// backends.  See the module docs for the rule set and determinism
/// contract.
pub struct PolicyOracle {
    config: SolverConfig,
    /// Assertion-stack journal; `journal[0]` is the base frame.
    journal: Vec<Vec<JournalOp>>,
    /// Backend slots, created lazily on first engagement.
    slots: [Option<Inner>; POLICY_BACKENDS],
    /// Slot the next check routes to.
    active: usize,
    /// Slot that served the most recent check (model extraction target).
    last_checked: usize,
    /// Top-level checks answered (the 1:1 `OracleStats::checks` feed).
    checks: u64,
    stats: PolicyStats,
    window: VecDeque<Obs>,
    mode: Mode,
    /// Current cube split depth (grown adaptively).
    cube_depth: usize,
    interrupt: Option<InterruptFlag>,
}

impl PolicyOracle {
    /// An adaptive policy oracle with default resource limits.
    pub fn new() -> Self {
        PolicyOracle::with_config(SolverConfig::default())
    }

    /// An adaptive policy oracle whose backends all share the given
    /// resource limits.
    pub fn with_config(config: SolverConfig) -> Self {
        let mut oracle = PolicyOracle {
            config,
            journal: vec![Vec::new()],
            slots: [None, None, None, None],
            active: SLOT_INCREMENTAL,
            last_checked: SLOT_INCREMENTAL,
            checks: 0,
            stats: PolicyStats::default(),
            window: VecDeque::new(),
            mode: Mode::Incremental,
            cube_depth: POLICY_CUBE_DEPTH,
            interrupt: None,
        };
        // The starting route exists eagerly so a fresh oracle behaves like
        // a fresh incremental context (model queries, interrupt wiring).
        oracle.ensure_slot(SLOT_INCREMENTAL);
        oracle
    }

    /// Routing decisions recorded so far.
    pub fn policy_stats(&self) -> PolicyStats {
        self.stats
    }

    /// The cube depth the policy is currently splitting at.
    pub fn cube_depth(&self) -> usize {
        self.cube_depth
    }

    /// Creates the slot if absent, replaying the journalled assertion stack
    /// so the new backend can serve the very next check.
    fn ensure_slot(&mut self, slot: usize) {
        if self.slots[slot].is_some() {
            return;
        }
        let mut inner = match slot {
            SLOT_REBUILD => Inner::Rebuild(Box::new(Context::with_config(self.config))),
            SLOT_INCREMENTAL => {
                Inner::Incremental(Box::new(IncrementalContext::with_config(self.config)))
            }
            SLOT_PORTFOLIO => Inner::Portfolio(Box::new(PortfolioContext::with_config(
                POLICY_PORTFOLIO_WORKERS,
                self.config,
            ))),
            _ => Inner::Cube(Box::new(CubeContext::with_config(
                self.cube_depth,
                POLICY_CUBE_WORKERS,
                self.config,
            ))),
        };
        {
            let oracle = inner.as_dyn();
            if let Some(flag) = &self.interrupt {
                oracle.set_interrupt(flag.clone());
            }
            for (depth, frame) in self.journal.iter().enumerate() {
                if depth > 0 {
                    oracle.push();
                }
                for op in frame {
                    match op {
                        JournalOp::AssertTerm(t) => oracle.assert_term(*t),
                        JournalOp::AssertXor(bits, rhs) => {
                            oracle.assert_xor_bits(bits.clone(), *rhs);
                        }
                        JournalOp::Track(v) => oracle.track_var(*v),
                    }
                }
            }
        }
        self.slots[slot] = Some(inner);
    }

    /// Applies a stack operation to every live backend (the journal keeps
    /// absent slots reconstructible).
    fn fan_out(&mut self, mut f: impl FnMut(&mut dyn Oracle)) {
        for slot in self.slots.iter_mut().flatten() {
            f(slot.as_dyn());
        }
    }

    /// Decides the slot for the next check — a pure function of the
    /// observation window and mode (no clocks, no thread state).
    fn route(&mut self) -> usize {
        if let Mode::Incremental = self.mode {
            let inc: Vec<u64> = self
                .window
                .iter()
                .filter(|o| o.slot == SLOT_INCREMENTAL)
                .map(|o| o.conflicts)
                .collect();
            if inc.len() >= POLICY_WARMUP {
                let mean = inc.iter().sum::<u64>() / inc.len() as u64;
                if mean >= PORTFOLIO_CONFLICTS {
                    self.mode = Mode::Portfolio {
                        left: PORTFOLIO_LEASE,
                    };
                } else if mean >= ESCALATE_CONFLICTS {
                    self.mode = Mode::Cube { idle: 0, hard: 0 };
                }
            }
        }
        match self.mode {
            Mode::Incremental => SLOT_INCREMENTAL,
            Mode::Cube { .. } => SLOT_CUBE,
            Mode::Portfolio { .. } => SLOT_PORTFOLIO,
        }
    }

    /// Folds one check's deterministic observation back into the window and
    /// advances the mode machine.
    fn observe(&mut self, slot: usize, conflicts: u64, splits: u64, refuted: u64) {
        self.window.push_back(Obs { slot, conflicts });
        while self.window.len() > POLICY_WINDOW {
            self.window.pop_front();
        }
        match &mut self.mode {
            Mode::Incremental => {}
            Mode::Cube { idle, hard } => {
                if slot != SLOT_CUBE {
                    return;
                }
                if splits == 0 {
                    // Probe-solved instantly: splitting bought nothing.
                    *hard = 0;
                    *idle += 1;
                    if *idle >= PROBE_FAST_CHECKS {
                        self.mode = Mode::Incremental;
                        self.window.clear();
                    }
                } else {
                    *idle = 0;
                    let frontier = 1u64 << self.cube_depth;
                    if refuted.saturating_mul(2) >= frontier && self.cube_depth < MAX_CUBE_DEPTH {
                        // Refutation dominates: deeper splits are cheap.
                        self.cube_depth += 1;
                        if let Some(Inner::Cube(c)) = &mut self.slots[SLOT_CUBE] {
                            c.set_depth(self.cube_depth);
                        }
                    }
                    if refuted == 0 {
                        *hard += 1;
                        if *hard >= CUBE_HARD_CHECKS {
                            // Splitting finds no structure: race instead.
                            self.mode = Mode::Portfolio {
                                left: PORTFOLIO_LEASE,
                            };
                        }
                    } else {
                        *hard = 0;
                    }
                }
            }
            Mode::Portfolio { left } => {
                if slot != SLOT_PORTFOLIO {
                    return;
                }
                *left -= 1;
                if *left == 0 {
                    self.mode = Mode::Incremental;
                    self.window.clear();
                }
            }
        }
    }
}

impl Default for PolicyOracle {
    fn default() -> Self {
        PolicyOracle::new()
    }
}

impl Oracle for PolicyOracle {
    fn push(&mut self) {
        self.journal.push(Vec::new());
        self.fan_out(|o| o.push());
    }

    fn pop(&mut self) {
        assert!(
            self.journal.len() > 1,
            "pop without matching push (adaptive policy stack is empty)"
        );
        self.journal.pop();
        self.fan_out(|o| o.pop());
    }

    fn assert_term(&mut self, t: TermId) {
        self.journal
            .last_mut()
            .expect("journal always holds the base frame")
            .push(JournalOp::AssertTerm(t));
        self.fan_out(|o| o.assert_term(t));
    }

    fn assert_xor_bits(&mut self, bits: Vec<(TermId, u32)>, rhs: bool) {
        self.journal
            .last_mut()
            .expect("journal always holds the base frame")
            .push(JournalOp::AssertXor(bits.clone(), rhs));
        self.fan_out(|o| o.assert_xor_bits(bits.clone(), rhs));
    }

    fn track_var(&mut self, var: TermId) {
        self.journal
            .last_mut()
            .expect("journal always holds the base frame")
            .push(JournalOp::Track(var));
        self.fan_out(|o| o.track_var(var));
    }

    fn check(&mut self, tm: &mut TermManager) -> Result<SolverResult> {
        let slot = self.route();
        self.ensure_slot(slot);
        if slot != self.active {
            self.stats.switches += 1;
            self.active = slot;
        }
        // Deterministic pre-check counters for the delta observation.
        let (pre_conflicts, pre_splits, pre_refuted) = {
            let inner = self.slots[slot].as_ref().expect("slot just ensured");
            match inner {
                Inner::Incremental(c) => (c.stats().conflicts, 0, 0),
                Inner::Cube(c) => {
                    let cs = c.cube_stats();
                    (0, cs.splits, cs.refuted_by_lookahead)
                }
                _ => (0, 0, 0),
            }
        };
        let mut verdict = {
            let inner = self.slots[slot].as_mut().expect("slot just ensured");
            inner.as_dyn().check(tm)?
        };
        self.checks += 1;
        self.stats.backend_checks[slot] += 1;
        self.last_checked = slot;
        // Model canonicalization (see the module docs): a parallel slot's
        // SAT witness is timing-dependent, so the verdict and model are
        // re-derived on the deterministic incremental engine before either
        // escapes to the caller.  The incremental slot always exists (it is
        // the eager starting route) and carries the same assertion stack
        // via the fan-out.  Under a conflict budget the re-check may answer
        // `Unknown`; that (deterministic) answer is surfaced instead of the
        // parallel SAT, because a SAT verdict without a reproducible
        // witness would break the bit-identity contract.
        if slot != SLOT_INCREMENTAL && verdict == SolverResult::Sat {
            let inner = self.slots[SLOT_INCREMENTAL]
                .as_mut()
                .expect("the incremental slot is created eagerly");
            let rederived = inner.as_dyn().check(tm)?;
            debug_assert_ne!(
                rederived,
                SolverResult::Unsat,
                "a parallel SAT cannot be refuted by the incremental re-check"
            );
            verdict = rederived;
            self.last_checked = SLOT_INCREMENTAL;
        }
        let (conflicts, splits, refuted) = {
            let inner = self.slots[slot].as_ref().expect("slot just ensured");
            match inner {
                Inner::Incremental(c) => (c.stats().conflicts - pre_conflicts, 0, 0),
                Inner::Cube(c) => {
                    let cs = c.cube_stats();
                    self.stats.cube_depth_max =
                        self.stats.cube_depth_max.max(self.cube_depth as u32);
                    (
                        0,
                        cs.splits - pre_splits,
                        cs.refuted_by_lookahead - pre_refuted,
                    )
                }
                _ => (0, 0, 0),
            }
        };
        self.observe(slot, conflicts, splits, refuted);
        Ok(verdict)
    }

    fn model_value(&self, tm: &TermManager, var: TermId) -> Option<Value> {
        self.slots[self.last_checked]
            .as_ref()
            .and_then(|inner| inner.as_dyn_ref().model_value(tm, var))
    }

    fn projected_model(&self, tm: &TermManager, projection: &[TermId]) -> Option<Vec<BvValue>> {
        self.slots[self.last_checked]
            .as_ref()
            .and_then(|inner| inner.as_dyn_ref().projected_model(tm, projection))
    }

    fn stats(&self) -> OracleStats {
        // `checks` counts policy-level queries 1:1 (comparable across
        // backends); the work fields sum over every engaged slot, so
        // nothing a retired route spent is dropped.
        let mut stats = OracleStats {
            checks: self.checks,
            ..OracleStats::default()
        };
        for inner in self.slots.iter().flatten() {
            let ws = inner.as_dyn_ref().stats();
            stats.sat_calls += ws.sat_calls;
            stats.theory_checks += ws.theory_checks;
            stats.theory_lemmas += ws.theory_lemmas;
            stats.rebuilds += ws.rebuilds;
            stats.conflicts += ws.conflicts;
            stats.pool_reuses += ws.pool_reuses;
            stats.compactions += ws.compactions;
            stats.dead_clauses_reclaimed += ws.dead_clauses_reclaimed;
            stats.preprocess_cache_hits += ws.preprocess_cache_hits;
        }
        stats
    }

    fn set_interrupt(&mut self, flag: InterruptFlag) {
        self.interrupt = Some(flag.clone());
        self.fan_out(|o| o.set_interrupt(flag.clone()));
    }

    fn portfolio(&self) -> Option<PortfolioStats> {
        match &self.slots[SLOT_PORTFOLIO] {
            Some(Inner::Portfolio(c)) => Some(c.portfolio_stats()),
            _ => None,
        }
    }

    fn cube(&self) -> Option<CubeStats> {
        match &self.slots[SLOT_CUBE] {
            Some(Inner::Cube(c)) => Some(c.cube_stats()),
            _ => None,
        }
    }

    fn policy(&self) -> Option<PolicyStats> {
        Some(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_ir::Sort;

    /// Blocking-loop enumeration through the policy surface: same verdict
    /// stream and model set as any other backend.
    #[test]
    fn policy_oracle_enumerates_like_a_plain_backend() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(3));
        let five = tm.mk_bv_const(5, 3);
        let f = tm.mk_bv_ult(x, five).unwrap();
        let mut oracle = PolicyOracle::new();
        oracle.track_var(x);
        oracle.assert_term(f);
        let mut found = 0u32;
        while oracle.check(&mut tm).unwrap() == SolverResult::Sat {
            let v = oracle.model_value(&tm, x).unwrap().as_bv().unwrap();
            assert!(v.as_u128() < 5);
            found += 1;
            assert!(found <= 5);
            let c = tm.mk_bv_value(v);
            let eq = tm.mk_eq(x, c);
            oracle.assert_term(tm.mk_not(eq));
        }
        assert_eq!(found, 5);
        let stats = oracle.stats();
        assert_eq!(stats.checks, u64::from(found) + 1);
        let policy = oracle.policy_stats();
        assert_eq!(policy.backend_checks.iter().sum::<u64>(), stats.checks);
    }

    /// The journal replay lets a backend engaged mid-stream serve checks
    /// over frames asserted before it existed.
    #[test]
    fn late_engaged_backends_see_the_whole_stack() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let three = tm.mk_bv_const(3, 4);
        let f = tm.mk_bv_ult(x, three).unwrap();
        let mut oracle = PolicyOracle::new();
        oracle.track_var(x);
        oracle.assert_term(f);
        oracle.push();
        let zero = tm.mk_bv_const(0, 4);
        oracle.assert_term(tm.mk_bv_ult(x, zero).unwrap());
        assert_eq!(oracle.check(&mut tm).unwrap(), SolverResult::Unsat);
        // Force-engage the cube slot now and replay the live stack into it.
        oracle.ensure_slot(SLOT_CUBE);
        oracle.pop();
        assert_eq!(oracle.check(&mut tm).unwrap(), SolverResult::Sat);
        assert!(oracle.model_value(&tm, x).is_some());
    }

    /// Unbalanced `pop` panics with the uniform backend contract message.
    #[test]
    #[should_panic(expected = "pop without matching push")]
    fn unbalanced_pop_panics() {
        let mut oracle = PolicyOracle::new();
        oracle.pop();
    }

    /// A synthetic hard stream (conflict-heavy incremental checks) drives
    /// the mode machine off the incremental route; the decision depends
    /// only on the journalled window, never on timing.
    #[test]
    fn conflict_pressure_escalates_deterministically() {
        let mut oracle = PolicyOracle::new();
        for _ in 0..POLICY_WARMUP {
            oracle.observe(SLOT_INCREMENTAL, ESCALATE_CONFLICTS + 1, 0, 0);
        }
        let slot = oracle.route();
        assert_eq!(slot, SLOT_CUBE);
        // Three instant probe-solves in cube mode decay straight back.
        for _ in 0..PROBE_FAST_CHECKS {
            oracle.observe(SLOT_CUBE, 0, 0, 0);
        }
        assert_eq!(oracle.route(), SLOT_INCREMENTAL);
        assert!(oracle.window.is_empty());
    }

    /// Unstructured hardness (splits that refute nothing) escalates to the
    /// portfolio, which decays after its deterministic lease.
    #[test]
    fn refutation_starved_splits_escalate_to_portfolio() {
        let mut oracle = PolicyOracle::new();
        oracle.mode = Mode::Cube { idle: 0, hard: 0 };
        for _ in 0..CUBE_HARD_CHECKS {
            oracle.observe(SLOT_CUBE, 0, 1, 0);
        }
        assert_eq!(oracle.route(), SLOT_PORTFOLIO);
        for _ in 0..PORTFOLIO_LEASE {
            oracle.observe(SLOT_PORTFOLIO, 0, 0, 0);
        }
        assert_eq!(oracle.route(), SLOT_INCREMENTAL);
    }

    /// High refutation rates grow the split depth, capped at the hard
    /// maximum.
    #[test]
    fn refutation_rate_grows_depth_to_the_cap() {
        let mut oracle = PolicyOracle::new();
        oracle.mode = Mode::Cube { idle: 0, hard: 0 };
        for _ in 0..16 {
            let frontier = 1u64 << oracle.cube_depth;
            oracle.observe(SLOT_CUBE, 0, 1, frontier);
        }
        assert_eq!(oracle.cube_depth, MAX_CUBE_DEPTH);
    }
}
