//! Pairwise-independent hash families for hashing-based model counting.
//!
//! `pact` partitions the projected solution space into cells by conjoining
//! random hash constraints `h(S) = α` to the formula (§III of the paper).
//! This crate implements the three families the paper evaluates:
//!
//! * [`HashFamily::Xor`] — bit-level XOR constraints, added natively to the
//!   SAT core's XOR engine (the configuration that wins Table I);
//! * [`HashFamily::Prime`] — word-level multiply-mod-prime;
//! * [`HashFamily::Shift`] — word-level multiply-shift;
//!
//! together with the bit-vector [`slicing`] the word-level families need
//! and the [prime search](crate::primes) used by `H_prime`.
//!
//! # Example
//!
//! ```
//! use pact_ir::{TermManager, Sort};
//! use pact_hash::{generate, HashFamily};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut tm = TermManager::new();
//! let x = tm.mk_var("x", Sort::BitVec(16));
//! let mut rng = StdRng::seed_from_u64(42);
//! let h = generate(&tm, &[x], 4, HashFamily::Prime, &mut rng);
//! assert_eq!(h.range(), 17); // smallest prime above 2^4
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod family;
pub mod primes;
pub mod slicing;

pub use family::{generate, HashConstraint, HashFamily};
pub use slicing::{projection_bits, slice_projection, Slice};
