//! The three pairwise-independent hash families of the paper (§III-A).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::RngExt;

use pact_ir::{BvValue, TermId, TermManager};
use pact_solver::Oracle;

use crate::primes::{bit_width, next_prime};
use crate::slicing::{slice_projection, Slice};

/// The hash-function family used to partition the solution space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HashFamily {
    /// Bit-level XOR constraints (`H_xor`); one constraint halves the space.
    /// Added natively to the SAT core's XOR engine.
    #[default]
    Xor,
    /// Word-level multiply-mod-prime (`H_prime`); range is the smallest prime
    /// above `2^ℓ`.
    Prime,
    /// Word-level multiply-shift (`H_shift`); range is `2^ℓ`.
    Shift,
}

impl HashFamily {
    /// Short lowercase name used in reports (`xor`, `prime`, `shift`).
    pub fn name(&self) -> &'static str {
        match self {
            HashFamily::Xor => "xor",
            HashFamily::Prime => "prime",
            HashFamily::Shift => "shift",
        }
    }

    /// All three families, in the order used by the paper's tables.
    pub const ALL: [HashFamily; 3] = [HashFamily::Prime, HashFamily::Shift, HashFamily::Xor];
}

impl std::fmt::Display for HashFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A single generated hash constraint `h(S) = α`.
///
/// The constraint both (a) knows how to assert itself into any solver
/// [`Oracle`] — natively for XOR, as a bit-vector term otherwise — and
/// (b) can be evaluated on concrete projected values, which is how the test
/// suite checks that the symbolic encoding agrees with the mathematical
/// definition of the family.
#[derive(Debug, Clone)]
pub struct HashConstraint {
    family: HashFamily,
    range: u128,
    kind: HashKind,
}

#[derive(Debug, Clone)]
enum HashKind {
    /// Parity of the chosen bits equals `rhs`.
    Xor { bits: Vec<(TermId, u32)>, rhs: bool },
    /// `((Σ aᵢ·sliceᵢ + b) mod modulus) >> shift == target`, computed in
    /// `width`-bit arithmetic.  `shift == 0` for `H_prime` (where `modulus`
    /// is prime); for `H_shift` the modulus is `2^width` and the top `ℓ`
    /// bits are kept.
    Word {
        slices: Vec<Slice>,
        coeffs: Vec<u128>,
        offset: u128,
        modulus: u128,
        shift: u32,
        width: u32,
        target: u128,
    },
}

impl HashConstraint {
    /// The family this constraint was drawn from.
    pub fn family(&self) -> HashFamily {
        self.family
    }

    /// Number of cells a single constraint of this kind partitions the
    /// projected space into (2 for XOR, the prime `p` for `H_prime`, `2^ℓ`
    /// for `H_shift`).
    pub fn range(&self) -> u128 {
        self.range
    }

    /// Asserts the constraint into any [`Oracle`] backend.
    ///
    /// XOR constraints take the native path (`assert_xor_bits`); word-level
    /// constraints are built as bit-vector terms.
    pub fn assert_into<O: Oracle + ?Sized>(&self, ctx: &mut O, tm: &mut TermManager) {
        match &self.kind {
            HashKind::Xor { bits, rhs } => {
                ctx.assert_xor_bits(bits.clone(), *rhs);
            }
            HashKind::Word { .. } => {
                let term = self.to_term(tm);
                ctx.assert_term(term);
            }
        }
    }

    /// Builds the constraint as an IR term (used by the CDM baseline and for
    /// printing instances to SMT-LIB).
    pub fn to_term(&self, tm: &mut TermManager) -> TermId {
        match &self.kind {
            HashKind::Xor { bits, rhs } => {
                let one = tm.mk_bv_const(1, 1);
                let zero = tm.mk_bv_const(0, 1);
                let mut acc = zero;
                for (var, bit) in bits {
                    let extracted = tm
                        .mk_bv_extract(*var, *bit, *bit)
                        .expect("projection bit in range");
                    acc = tm.mk_bv_xor(acc, extracted).expect("1-bit xor");
                }
                let target = if *rhs { one } else { zero };
                tm.mk_eq(acc, target)
            }
            HashKind::Word {
                slices,
                coeffs,
                offset,
                modulus,
                shift,
                width,
                target,
            } => {
                let w = *width;
                let mut acc = tm.mk_bv_const(*offset, w);
                for (slice, &a) in slices.iter().zip(coeffs) {
                    let extracted = tm
                        .mk_bv_extract(slice.var, slice.lo + slice.width - 1, slice.lo)
                        .expect("slice in range");
                    let widened = tm
                        .mk_bv_zero_extend(extracted, w - slice.width)
                        .expect("widening");
                    let coeff = tm.mk_bv_const(a, w);
                    let product = tm.mk_bv_mul(widened, coeff).expect("product");
                    acc = tm.mk_bv_add(acc, product).expect("sum");
                }
                let hashed = if self.family == HashFamily::Prime {
                    let p = tm.mk_bv_const(*modulus, w);
                    tm.mk_bv_urem(acc, p).expect("mod prime")
                } else {
                    // H_shift keeps the top ℓ bits of the w-bit sum.
                    acc
                };
                let value = if *shift > 0 {
                    tm.mk_bv_extract(hashed, w - 1, *shift).expect("top bits")
                } else {
                    hashed
                };
                let target_width = if *shift > 0 { w - *shift } else { w };
                let target = tm.mk_bv_const(*target, target_width);
                tm.mk_eq(value, target)
            }
        }
    }

    /// Evaluates the constraint on concrete values of the projection
    /// variables.  Missing variables default to zero.
    pub fn eval(&self, values: &HashMap<TermId, BvValue>) -> bool {
        match &self.kind {
            HashKind::Xor { bits, rhs } => {
                let mut parity = false;
                for (var, bit) in bits {
                    if let Some(v) = values.get(var) {
                        parity ^= v.bit(*bit);
                    }
                }
                parity == *rhs
            }
            HashKind::Word {
                slices,
                coeffs,
                offset,
                modulus,
                shift,
                width,
                target,
            } => {
                let mask = if *width >= 128 {
                    u128::MAX
                } else {
                    (1u128 << width) - 1
                };
                let mut acc = *offset;
                for (slice, &a) in slices.iter().zip(coeffs) {
                    let value = values
                        .get(&slice.var)
                        .map(|v| slice.of_value(v).as_u128())
                        .unwrap_or(0);
                    acc = acc.wrapping_add(a.wrapping_mul(value)) & mask;
                }
                let hashed = if self.family == HashFamily::Prime {
                    acc % modulus
                } else {
                    acc
                };
                (hashed >> shift) == *target
            }
        }
    }

    /// The projection bits referenced by an XOR constraint (empty for
    /// word-level constraints); exposed for diagnostics and tests.
    pub fn xor_bits(&self) -> &[(TermId, u32)] {
        match &self.kind {
            HashKind::Xor { bits, .. } => bits,
            HashKind::Word { .. } => &[],
        }
    }
}

/// Generates one hash constraint for the given projection set.
///
/// `ell` controls the range: ignored for [`HashFamily::Xor`] (range 2), the
/// range is the smallest prime above `2^ell` for [`HashFamily::Prime`] and
/// exactly `2^ell` for [`HashFamily::Shift`].
///
/// # Panics
///
/// Panics if the projection set is empty or `ell` is zero for a word-level
/// family.
pub fn generate(
    tm: &TermManager,
    projection: &[TermId],
    ell: u32,
    family: HashFamily,
    rng: &mut StdRng,
) -> HashConstraint {
    assert!(!projection.is_empty(), "projection set must not be empty");
    match family {
        HashFamily::Xor => {
            let slices = slice_projection(tm, projection, u32::MAX);
            let mut bits = Vec::new();
            for slice in &slices {
                for bit in slice.bits() {
                    if rng.random::<bool>() {
                        bits.push((slice.var, bit));
                    }
                }
            }
            let rhs = rng.random::<bool>();
            HashConstraint {
                family,
                range: 2,
                kind: HashKind::Xor { bits, rhs },
            }
        }
        HashFamily::Prime => {
            assert!(ell >= 1, "H_prime needs a positive range exponent");
            let slices = slice_projection(tm, projection, ell);
            let p = next_prime(1u128 << ell);
            let d = slices.len() as u128;
            // a_i·s_i < p·2^ℓ, and there are d of them plus b < p.
            let width = bit_width(p - 1) + ell + bit_width(d + 1) + 1;
            let coeffs: Vec<u128> = slices.iter().map(|_| rng.random_range(0..p)).collect();
            let offset = rng.random_range(0..p);
            let target = rng.random_range(0..p);
            HashConstraint {
                family,
                range: p,
                kind: HashKind::Word {
                    slices,
                    coeffs,
                    offset,
                    modulus: p,
                    shift: 0,
                    width,
                    target,
                },
            }
        }
        HashFamily::Shift => {
            assert!(ell >= 1, "H_shift needs a positive range exponent");
            let slices = slice_projection(tm, projection, ell);
            let max_slice = slices.iter().map(|s| s.width).max().unwrap_or(1);
            let d = slices.len() as u128;
            // Accumulator width: big enough for the products and the sum, and
            // at least max_slice + ell - 1 as required for pairwise independence.
            let width = (max_slice + ell + bit_width(d + 1)).max(max_slice + ell);
            let modulus = if width >= 128 {
                u128::MAX
            } else {
                1u128 << width
            };
            let bound = if width >= 128 {
                u128::MAX
            } else {
                1u128 << width
            };
            let coeffs: Vec<u128> = slices.iter().map(|_| rng.random_range(0..bound)).collect();
            let offset = rng.random_range(0..bound);
            let target = rng.random_range(0..(1u128 << ell));
            HashConstraint {
                family,
                range: 1u128 << ell,
                kind: HashKind::Word {
                    slices,
                    coeffs,
                    offset,
                    modulus,
                    shift: width - ell,
                    width,
                    target,
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_ir::{Sort, Value};
    use pact_solver::{Context, SolverResult};
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn eval_term_on(tm: &TermManager, term: TermId, var: TermId, value: u128, width: u32) -> bool {
        let mut asg = HashMap::new();
        asg.insert(var, Value::Bv(BvValue::new(value, width)));
        match tm.eval(term, &asg) {
            Some(Value::Bool(b)) => b,
            other => panic!("hash term did not evaluate to a boolean: {other:?}"),
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(12));
        for family in HashFamily::ALL {
            let a = generate(&tm, &[x], 3, family, &mut rng(7));
            let b = generate(&tm, &[x], 3, family, &mut rng(7));
            let values: HashMap<TermId, BvValue> = [(x, BvValue::new(0b1010_1100_0011, 12))]
                .into_iter()
                .collect();
            assert_eq!(a.eval(&values), b.eval(&values));
            assert_eq!(a.range(), b.range());
        }
    }

    #[test]
    fn ranges_match_the_paper() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(16));
        assert_eq!(
            generate(&tm, &[x], 4, HashFamily::Xor, &mut rng(1)).range(),
            2
        );
        assert_eq!(
            generate(&tm, &[x], 4, HashFamily::Prime, &mut rng(1)).range(),
            17
        );
        assert_eq!(
            generate(&tm, &[x], 4, HashFamily::Shift, &mut rng(1)).range(),
            16
        );
    }

    #[test]
    fn term_encoding_matches_direct_evaluation() {
        // For every family and a handful of seeds, the symbolic term built by
        // `to_term` must agree with `eval` on every value of a small variable.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        for family in HashFamily::ALL {
            for seed in 0..5u64 {
                let h = generate(&tm, &[x], 3, family, &mut rng(seed));
                let term = h.to_term(&mut tm);
                for value in 0..64u128 {
                    let values: HashMap<TermId, BvValue> =
                        [(x, BvValue::new(value, 6))].into_iter().collect();
                    assert_eq!(
                        h.eval(&values),
                        eval_term_on(&tm, term, x, value, 6),
                        "family {family}, seed {seed}, value {value}"
                    );
                }
            }
        }
    }

    #[test]
    fn hash_cells_partition_the_space() {
        // Summing the cell sizes over all α of an H_prime hash must give 2^w.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(5));
        let mut r = rng(11);
        let h = generate(&tm, &[x], 3, HashFamily::Prime, &mut r);
        // Count how many of the 32 values fall into the generated target cell,
        // then re-count over all cells by brute force using eval with varying
        // targets: instead, simply check the target cell is not larger than
        // the whole space and the constraint is satisfiable for some value.
        let mut in_cell = 0;
        for value in 0..32u128 {
            let values: HashMap<TermId, BvValue> =
                [(x, BvValue::new(value, 5))].into_iter().collect();
            if h.eval(&values) {
                in_cell += 1;
            }
        }
        assert!(in_cell <= 32);
    }

    #[test]
    fn xor_constraint_asserts_natively_and_halves_models() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let mut r = rng(3);
        let h = generate(&tm, &[x], 1, HashFamily::Xor, &mut r);
        let mut ctx = Context::new();
        ctx.track_var(x);
        h.assert_into(&mut ctx, &mut tm);
        // Enumerate all models; each must satisfy the hash, and the projected
        // count must equal the number of 4-bit values in the cell.
        let expected: u32 = (0..16u128)
            .filter(|&v| {
                let values: HashMap<TermId, BvValue> =
                    [(x, BvValue::new(v, 4))].into_iter().collect();
                h.eval(&values)
            })
            .count() as u32;
        let mut found = 0;
        loop {
            match ctx.check(&mut tm).unwrap() {
                SolverResult::Sat => {
                    found += 1;
                    assert!(found <= 16);
                    let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
                    let values: HashMap<TermId, BvValue> = [(x, v)].into_iter().collect();
                    assert!(h.eval(&values), "model violates the hash constraint");
                    let c = tm.mk_bv_value(v);
                    let eq = tm.mk_eq(x, c);
                    let block = tm.mk_not(eq);
                    ctx.assert_term(block);
                }
                SolverResult::Unsat => break,
                SolverResult::Unknown => panic!("unexpected unknown"),
            }
        }
        assert_eq!(found, expected);
    }

    #[test]
    fn word_level_constraint_agrees_with_solver_models() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        for family in [HashFamily::Prime, HashFamily::Shift] {
            let mut r = rng(19);
            let h = generate(&tm, &[x], 2, family, &mut r);
            let mut ctx = Context::new();
            ctx.track_var(x);
            h.assert_into(&mut ctx, &mut tm);
            let expected: u32 = (0..16u128)
                .filter(|&v| {
                    let values: HashMap<TermId, BvValue> =
                        [(x, BvValue::new(v, 4))].into_iter().collect();
                    h.eval(&values)
                })
                .count() as u32;
            let mut found = 0;
            loop {
                match ctx.check(&mut tm).unwrap() {
                    SolverResult::Sat => {
                        found += 1;
                        assert!(found <= 16);
                        let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
                        let values: HashMap<TermId, BvValue> = [(x, v)].into_iter().collect();
                        assert!(h.eval(&values));
                        let c = tm.mk_bv_value(v);
                        let eq = tm.mk_eq(x, c);
                        let block = tm.mk_not(eq);
                        ctx.assert_term(block);
                    }
                    SolverResult::Unsat => break,
                    SolverResult::Unknown => panic!("unexpected unknown"),
                }
            }
            assert_eq!(found, expected, "family {family}");
        }
    }

    #[test]
    fn multiple_variables_are_hashed_together() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(5));
        let y = tm.mk_var("y", Sort::BitVec(3));
        let mut r = rng(23);
        let h = generate(&tm, &[x, y], 2, HashFamily::Prime, &mut r);
        // The constraint must depend on both variables for this seed (the
        // coefficients are non-zero with overwhelming probability).
        let v1: HashMap<TermId, BvValue> = [(x, BvValue::new(1, 5)), (y, BvValue::new(0, 3))]
            .into_iter()
            .collect();
        let v2: HashMap<TermId, BvValue> = [(x, BvValue::new(1, 5)), (y, BvValue::new(5, 3))]
            .into_iter()
            .collect();
        // Not asserting inequality of results (could collide), only that
        // evaluation is well-defined over multi-variable projections.
        let _ = h.eval(&v1);
        let _ = h.eval(&v2);
        assert!(h.range() >= 5);
    }
}
