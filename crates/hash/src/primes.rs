//! Prime search for the multiply-mod-prime hash family.

/// Returns `true` if `n` is prime.
///
/// Trial division is sufficient here: the `H_prime` family only needs the
/// smallest prime above `2^ℓ`, and slice widths keep `ℓ` small (≤ 24).
pub fn is_prime(n: u128) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    if n.is_multiple_of(3) {
        return n == 3;
    }
    let mut d = 5u128;
    while d * d <= n {
        if n.is_multiple_of(d) || n.is_multiple_of(d + 2) {
            return false;
        }
        d += 6;
    }
    true
}

/// The smallest prime strictly greater than `n`.
pub fn next_prime(n: u128) -> u128 {
    let mut candidate = n + 1;
    if candidate <= 2 {
        return 2;
    }
    if candidate.is_multiple_of(2) {
        candidate += 1;
    }
    while !is_prime(candidate) {
        candidate += 2;
    }
    candidate
}

/// Number of bits required to represent `n`.
pub fn bit_width(n: u128) -> u32 {
    128 - n.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes: Vec<u128> = (0..30).filter(|&n| is_prime(n)).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
    }

    #[test]
    fn next_prime_after_powers_of_two() {
        assert_eq!(next_prime(2), 3);
        assert_eq!(next_prime(4), 5);
        assert_eq!(next_prime(16), 17);
        assert_eq!(next_prime(32), 37);
        assert_eq!(next_prime(256), 257);
        assert_eq!(next_prime(1 << 16), 65537);
    }

    #[test]
    fn next_prime_is_strictly_greater() {
        for n in [2u128, 3, 5, 7, 13, 97] {
            assert!(next_prime(n) > n);
            assert!(is_prime(next_prime(n)));
        }
    }

    #[test]
    fn bit_widths() {
        assert_eq!(bit_width(1), 1);
        assert_eq!(bit_width(2), 2);
        assert_eq!(bit_width(3), 2);
        assert_eq!(bit_width(17), 5);
        assert_eq!(bit_width(65537), 17);
    }
}
