//! Slicing of projection variables into fixed-width chunks (§III-A).
//!
//! Word-level hash functions have a fixed domain size, but projection
//! variables can have arbitrary widths.  Following the paper, each variable
//! `x` of width `w` is cut into `⌈w/ℓ⌉` slices of width `ℓ`:
//! `x(i) = x[(i+1)ℓ−1 : iℓ]` (the last slice may be narrower).

use pact_ir::{BvValue, Sort, TermId, TermManager};

/// One slice of a projection variable: bits `[lo, lo + width)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slice {
    /// The variable being sliced.
    pub var: TermId,
    /// Least significant bit of the slice within the variable.
    pub lo: u32,
    /// Width of the slice in bits.
    pub width: u32,
}

impl Slice {
    /// Extracts the slice's value from a concrete value of the variable.
    pub fn of_value(&self, value: &BvValue) -> BvValue {
        value.extract(self.lo + self.width - 1, self.lo)
    }

    /// The individual bit positions covered by the slice.
    pub fn bits(&self) -> impl Iterator<Item = u32> + '_ {
        self.lo..self.lo + self.width
    }
}

/// Total number of projection bits across a projection set.
///
/// Booleans count as one bit, bit-vectors as their width, bounded integers
/// as the width of their encoding.
pub fn projection_bits(tm: &TermManager, projection: &[TermId]) -> u32 {
    projection
        .iter()
        .map(|&v| tm.sort(v).discrete_bits().unwrap_or(0))
        .sum()
}

/// Cuts every projection variable into slices of width at most `ell`.
///
/// # Panics
///
/// Panics if a projection variable has a continuous sort; the counter
/// validates this earlier.
pub fn slice_projection(tm: &TermManager, projection: &[TermId], ell: u32) -> Vec<Slice> {
    assert!(ell >= 1, "slice width must be at least one bit");
    let mut slices = Vec::new();
    for &var in projection {
        let width = match tm.sort(var) {
            Sort::Bool => 1,
            Sort::BitVec(w) => w,
            Sort::BoundedInt { .. } => tm.sort(var).discrete_bits().unwrap_or(1),
            other => panic!("projection variable of continuous sort {other}"),
        };
        let mut lo = 0;
        while lo < width {
            let w = ell.min(width - lo);
            slices.push(Slice { var, lo, width: w });
            lo += w;
        }
    }
    slices
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_cover_the_variable_exactly() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(10));
        let slices = slice_projection(&tm, &[x], 4);
        assert_eq!(slices.len(), 3);
        assert_eq!(
            slices[0],
            Slice {
                var: x,
                lo: 0,
                width: 4
            }
        );
        assert_eq!(
            slices[1],
            Slice {
                var: x,
                lo: 4,
                width: 4
            }
        );
        assert_eq!(
            slices[2],
            Slice {
                var: x,
                lo: 8,
                width: 2
            }
        );
        let total: u32 = slices.iter().map(|s| s.width).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn slice_values_recompose() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let value = BvValue::new(0b1011_0110, 8);
        let slices = slice_projection(&tm, &[x], 3);
        let mut recomposed: u128 = 0;
        for s in &slices {
            recomposed |= (s.of_value(&value).as_u128()) << s.lo;
        }
        assert_eq!(recomposed, value.as_u128());
    }

    #[test]
    fn mixed_sorts_count_bits() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        let b = tm.mk_var("b", Sort::Bool);
        let n = tm.mk_var("n", Sort::BoundedInt { lo: 0, hi: 12 });
        assert_eq!(projection_bits(&tm, &[x, b, n]), 6 + 1 + 4);
        let slices = slice_projection(&tm, &[x, b, n], 4);
        assert_eq!(slices.len(), 2 + 1 + 1);
    }

    #[test]
    fn wide_slices_cap_at_variable_width() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(3));
        let slices = slice_projection(&tm, &[x], 8);
        assert_eq!(
            slices,
            vec![Slice {
                var: x,
                lo: 0,
                width: 3
            }]
        );
    }
}
