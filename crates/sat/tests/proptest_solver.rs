//! Property-based tests: the CDCL solver (with and without native XOR rows)
//! must agree with a brute-force evaluator on random small formulas.

use proptest::prelude::*;

use pact_sat::{SatResult, Solver, Var};

const NUM_VARS: usize = 6;

/// A random instance description: clauses are literal lists (variable index,
/// polarity); XOR rows are variable sets with a parity bit.
#[derive(Debug, Clone)]
struct RandomInstance {
    clauses: Vec<Vec<(usize, bool)>>,
    xors: Vec<(Vec<usize>, bool)>,
}

fn instance_strategy() -> impl Strategy<Value = RandomInstance> {
    let clause = proptest::collection::vec((0..NUM_VARS, any::<bool>()), 1..4);
    let clauses = proptest::collection::vec(clause, 0..12);
    let xor = (proptest::collection::vec(0..NUM_VARS, 1..5), any::<bool>());
    let xors = proptest::collection::vec(xor, 0..4);
    (clauses, xors).prop_map(|(clauses, xors)| RandomInstance { clauses, xors })
}

/// Evaluates the instance under an assignment given as a bit mask.
fn holds(instance: &RandomInstance, mask: u32) -> bool {
    let value = |v: usize| (mask >> v) & 1 == 1;
    for clause in &instance.clauses {
        if !clause.iter().any(|&(v, pos)| value(v) == pos) {
            return false;
        }
    }
    for (vars, rhs) in &instance.xors {
        let parity = vars.iter().fold(false, |acc, &v| acc ^ value(v));
        if parity != *rhs {
            return false;
        }
    }
    true
}

fn brute_force_satisfiable(instance: &RandomInstance) -> bool {
    (0..(1u32 << NUM_VARS)).any(|mask| holds(instance, mask))
}

fn build_solver(instance: &RandomInstance) -> (Solver, Vec<Var>) {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..NUM_VARS).map(|_| solver.new_var()).collect();
    for clause in &instance.clauses {
        let lits: Vec<_> = clause.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
        solver.add_clause(&lits);
    }
    for (xvars, rhs) in &instance.xors {
        let xs: Vec<Var> = xvars.iter().map(|&v| vars[v]).collect();
        solver.add_xor(&xs, *rhs);
    }
    (solver, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_verdict_matches_brute_force(instance in instance_strategy()) {
        let expected = brute_force_satisfiable(&instance);
        let (mut solver, vars) = build_solver(&instance);
        match solver.solve(&[]) {
            SatResult::Sat => {
                prop_assert!(expected, "solver found a model for an unsatisfiable instance");
                // The reported model must actually satisfy the instance.
                let mut mask = 0u32;
                for (i, v) in vars.iter().enumerate() {
                    if solver.model_value(*v) {
                        mask |= 1 << i;
                    }
                }
                prop_assert!(holds(&instance, mask), "reported model does not satisfy the formula");
            }
            SatResult::Unsat => prop_assert!(!expected, "solver reported unsat on a satisfiable instance"),
            SatResult::Unknown => prop_assert!(false, "no budget was set, unknown is impossible"),
        }
    }

    #[test]
    fn model_count_by_blocking_matches_brute_force(instance in instance_strategy()) {
        let expected: u32 = (0..(1u32 << NUM_VARS)).filter(|&m| holds(&instance, m)).count() as u32;
        let (mut solver, vars) = build_solver(&instance);
        let mut found = 0u32;
        while solver.solve(&[]) == SatResult::Sat {
            found += 1;
            prop_assert!(found <= 1 << NUM_VARS, "enumeration does not terminate");
            let blocking: Vec<_> = vars
                .iter()
                .map(|&v| v.lit(!solver.model_value(v)))
                .collect();
            solver.add_clause(&blocking);
        }
        prop_assert_eq!(found, expected);
    }

    #[test]
    fn solving_under_assumptions_matches_conditioned_brute_force(
        instance in instance_strategy(),
        assumption_mask in 0u32..(1 << NUM_VARS),
        assumed_vars in proptest::collection::vec(0..NUM_VARS, 0..3),
    ) {
        let (mut solver, vars) = build_solver(&instance);
        let assumptions: Vec<_> = assumed_vars
            .iter()
            .map(|&v| vars[v].lit((assumption_mask >> v) & 1 == 1))
            .collect();
        let expected = (0..(1u32 << NUM_VARS)).any(|mask| {
            holds(&instance, mask)
                && assumed_vars
                    .iter()
                    .all(|&v| (mask >> v) & 1 == (assumption_mask >> v) & 1)
        });
        match solver.solve(&assumptions) {
            SatResult::Sat => prop_assert!(expected),
            SatResult::Unsat => prop_assert!(!expected),
            SatResult::Unknown => prop_assert!(false, "no budget was set, unknown is impossible"),
        }
        // The solver must remain usable after an assumption-based query.
        let unconditioned = solver.solve(&[]);
        prop_assert_eq!(unconditioned == SatResult::Sat, brute_force_satisfiable(&instance));
    }
}
