//! Native XOR-constraint reasoning.
//!
//! The paper attributes much of `pact`'s performance with the `H_xor` hash
//! family to CryptoMiniSat's built-in XOR engine.  This module provides the
//! same capability for the workspace's own CDCL solver: XOR rows are stored
//! outside the clause database and propagated with a two-watched-variable
//! scheme, so a parity constraint over `k` variables costs one row instead of
//! `2^(k-1)` CNF clauses.

use crate::lit::{LBool, Lit, Var};

/// Outcome of adding an XOR row at decision level zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddXor {
    /// The row was stored under the given engine id (pass it to
    /// [`XorEngine::deactivate`] to retire the row later).
    Stored(usize),
    /// The row was trivially satisfied; nothing was stored.
    Trivial,
    /// The row reduced to a unit literal that must be enqueued by the caller.
    Unit(Lit),
    /// The row reduced to `false`; the formula is unsatisfiable.
    Unsat,
}

/// A propagation or conflict discovered by the XOR engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XorEvent {
    /// `lit` is implied; the attached clause is an entailed reason clause
    /// (the implied literal first, followed by the negations of the assigned
    /// literals of the row).
    Implied {
        /// The implied literal.
        lit: Lit,
        /// Entailed reason clause, suitable for conflict analysis.
        reason: Vec<Lit>,
    },
    /// The row is falsified; the attached clause is an entailed conflict
    /// clause (every literal in it is currently false).
    Conflict(Vec<Lit>),
}

#[derive(Debug, Clone)]
struct XorRow {
    vars: Vec<Var>,
    rhs: bool,
    /// Positions (into `vars`) of the two watched variables.
    watch: [usize; 2],
    /// Deactivated rows are skipped by propagation (and lazily dropped from
    /// the occurrence lists).  Used by activation-literal frames to retire
    /// their hash constraints on `pop` without touching the rest.
    active: bool,
}

/// The XOR engine: a set of parity rows with two watched variables each.
#[derive(Debug, Clone, Default)]
pub struct XorEngine {
    rows: Vec<XorRow>,
    /// For each variable index, the rows currently watching it.
    occurs: Vec<Vec<usize>>,
    /// Slots of deactivated rows, reused by the next [`XorEngine::add_row`]
    /// so long-lived solvers that churn hash frames don't grow `rows`
    /// without bound.
    free: Vec<usize>,
}

impl XorEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        XorEngine::default()
    }

    /// Number of stored active rows (retired slots awaiting reuse are not
    /// counted).
    pub fn len(&self) -> usize {
        self.rows.len() - self.free.len()
    }

    /// Returns `true` when no active rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn grow_to(&mut self, n: usize) {
        if self.occurs.len() < n {
            self.occurs.resize(n, Vec::new());
        }
    }

    /// Adds the parity constraint `vars[0] ^ vars[1] ^ ... = rhs`.
    ///
    /// Must be called at decision level zero.  Repeated variables cancel in
    /// pairs; variables already assigned at level zero are folded into the
    /// right-hand side.
    pub fn add_row(&mut self, vars: &[Var], rhs: bool, assigns: &[LBool]) -> AddXor {
        let mut rhs = rhs;
        let mut reduced: Vec<Var> = Vec::with_capacity(vars.len());
        let mut sorted = vars.to_vec();
        sorted.sort();
        let mut i = 0;
        while i < sorted.len() {
            // Cancel pairs of identical variables (x ^ x = 0).
            if i + 1 < sorted.len() && sorted[i] == sorted[i + 1] {
                i += 2;
                continue;
            }
            let v = sorted[i];
            match assigns.get(v.index()).copied().unwrap_or(LBool::Undef) {
                LBool::True => rhs = !rhs,
                LBool::False => {}
                LBool::Undef => reduced.push(v),
            }
            i += 1;
        }
        match reduced.len() {
            0 => {
                if rhs {
                    AddXor::Unsat
                } else {
                    AddXor::Trivial
                }
            }
            1 => AddXor::Unit(reduced[0].lit(rhs)),
            _ => {
                let max_var = reduced.iter().map(|v| v.index()).max().unwrap_or(0);
                self.grow_to(max_var + 1);
                let (w0, w1) = (reduced[0], reduced[1]);
                let row = XorRow {
                    vars: reduced,
                    rhs,
                    watch: [0, 1],
                    active: true,
                };
                // Reuse a retired slot when one is free so hash-frame churn
                // doesn't grow the row table without bound.
                let row_idx = match self.free.pop() {
                    Some(slot) => {
                        self.rows[slot] = row;
                        slot
                    }
                    None => {
                        self.rows.push(row);
                        self.rows.len() - 1
                    }
                };
                self.occurs[w0.index()].push(row_idx);
                self.occurs[w1.index()].push(row_idx);
                AddXor::Stored(row_idx)
            }
        }
    }

    /// Retires a stored row: it no longer propagates or conflicts, its
    /// occurrence-list entries are purged eagerly, and its slot is queued
    /// for reuse by the next [`XorEngine::add_row`].  Must be called at
    /// decision level zero (between solves) — assignments already on the
    /// trail are unaffected.  Deactivating an already-inactive row or an
    /// unknown id is a no-op.
    pub fn deactivate(&mut self, row: usize) {
        let Some(r) = self.rows.get_mut(row) else {
            return;
        };
        if !r.active {
            return;
        }
        r.active = false;
        // Each row holds exactly two occurrence registrations — one per
        // watched variable — so purging those makes the slot safe to reuse.
        // The `!active` check in `on_assign` stays as defense in depth.
        let watched = [r.vars[r.watch[0]], r.vars[r.watch[1]]];
        r.vars = Vec::new();
        for v in watched {
            if let Some(list) = self.occurs.get_mut(v.index()) {
                list.retain(|&x| x != row);
            }
        }
        self.free.push(row);
    }

    /// Notifies the engine that `var` has just been assigned.
    ///
    /// Returns the implied literals and/or conflict discovered in the rows
    /// watching `var`.  Processing stops at the first conflict.
    pub fn on_assign(&mut self, var: Var, assigns: &[LBool]) -> Vec<XorEvent> {
        let mut events = Vec::new();
        if var.index() >= self.occurs.len() {
            return events;
        }
        let watching = std::mem::take(&mut self.occurs[var.index()]);
        let mut keep = Vec::with_capacity(watching.len());
        let mut aborted = Vec::new();
        for (pos, &row_idx) in watching.iter().enumerate() {
            if matches!(events.last(), Some(XorEvent::Conflict(_))) {
                aborted.extend_from_slice(&watching[pos..]);
                break;
            }
            let row = &mut self.rows[row_idx];
            if !row.active {
                // Lazily drop retired rows from the occurrence lists.
                continue;
            }
            let which = if row.vars[row.watch[0]] == var { 0 } else { 1 };
            // Try to move the watch to an unassigned, unwatched variable.
            let other_watch_pos = row.watch[1 - which];
            let mut replaced = false;
            for (i, &v) in row.vars.iter().enumerate() {
                if i == row.watch[which] || i == other_watch_pos {
                    continue;
                }
                if !assigns[v.index()].is_assigned() {
                    row.watch[which] = i;
                    // Register the new watch; drop the old one for this row.
                    let v_idx = v.index();
                    if self.occurs.len() <= v_idx {
                        self.occurs.resize(v_idx + 1, Vec::new());
                    }
                    self.occurs[v_idx].push(row_idx);
                    replaced = true;
                    break;
                }
            }
            if replaced {
                continue;
            }
            keep.push(row_idx);
            let row = &self.rows[row_idx];
            let other = row.vars[other_watch_pos];
            let other_value = assigns[other.index()];
            // Parity of the assigned variables, excluding `other`.  If any
            // other variable is still unassigned the row can neither
            // propagate nor conflict yet.
            let mut parity = false;
            let mut all_assigned = true;
            for &v in &row.vars {
                if v == other {
                    continue;
                }
                match assigns[v.index()] {
                    LBool::True => parity = !parity,
                    LBool::False => {}
                    LBool::Undef => all_assigned = false,
                }
            }
            if !all_assigned {
                continue;
            }
            if other_value == LBool::Undef {
                let needed = row.rhs ^ parity;
                let lit = other.lit(needed);
                let mut reason = vec![lit];
                for &v in &row.vars {
                    if v == other {
                        continue;
                    }
                    let assigned_true = assigns[v.index()] == LBool::True;
                    reason.push(!v.lit(assigned_true));
                }
                events.push(XorEvent::Implied { lit, reason });
            } else {
                let total = parity ^ (other_value == LBool::True);
                if total != row.rhs {
                    let mut conflict = Vec::with_capacity(row.vars.len());
                    for &v in &row.vars {
                        let assigned_true = assigns[v.index()] == LBool::True;
                        conflict.push(!v.lit(assigned_true));
                    }
                    events.push(XorEvent::Conflict(conflict));
                }
            }
        }
        keep.extend(aborted);
        self.occurs[var.index()] = keep;
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assigns(n: usize) -> Vec<LBool> {
        vec![LBool::Undef; n]
    }

    #[test]
    fn add_row_simplifies() {
        let mut eng = XorEngine::new();
        let a = assigns(4);
        // x0 ^ x0 = 1  is unsatisfiable
        assert_eq!(eng.add_row(&[Var(0), Var(0)], true, &a), AddXor::Unsat);
        // x0 ^ x0 = 0 is trivially true
        assert_eq!(eng.add_row(&[Var(0), Var(0)], false, &a), AddXor::Trivial);
        // x1 = 1 reduces to a unit
        assert_eq!(
            eng.add_row(&[Var(1)], true, &a),
            AddXor::Unit(Var(1).positive())
        );
        assert_eq!(
            eng.add_row(&[Var(1)], false, &a),
            AddXor::Unit(Var(1).negative())
        );
        assert!(eng.is_empty());
    }

    #[test]
    fn add_row_folds_level_zero_assignments() {
        let mut eng = XorEngine::new();
        let mut a = assigns(3);
        a[0] = LBool::True;
        // x0 ^ x1 = 0 with x0 = true reduces to x1 = 1.
        assert_eq!(
            eng.add_row(&[Var(0), Var(1)], false, &a),
            AddXor::Unit(Var(1).positive())
        );
    }

    #[test]
    fn propagates_last_unassigned_variable() {
        let mut eng = XorEngine::new();
        let mut a = assigns(3);
        assert_eq!(
            eng.add_row(&[Var(0), Var(1), Var(2)], true, &a),
            AddXor::Stored(0)
        );
        a[0] = LBool::True;
        assert!(eng.on_assign(Var(0), &a).is_empty());
        a[1] = LBool::True;
        let events = eng.on_assign(Var(1), &a);
        assert_eq!(events.len(), 1);
        match &events[0] {
            XorEvent::Implied { lit, reason } => {
                // 1 ^ 1 ^ x2 = 1  =>  x2 = 1
                assert_eq!(*lit, Var(2).positive());
                assert_eq!(reason[0], *lit);
                assert_eq!(reason.len(), 3);
            }
            other => panic!("expected implication, got {other:?}"),
        }
    }

    #[test]
    fn detects_conflicts() {
        let mut eng = XorEngine::new();
        let mut a = assigns(2);
        assert_eq!(eng.add_row(&[Var(0), Var(1)], true, &a), AddXor::Stored(0));
        a[0] = LBool::True;
        // Assign the second watch directly to the conflicting value.
        a[1] = LBool::True;
        let events = eng.on_assign(Var(1), &a);
        assert_eq!(events.len(), 1);
        match &events[0] {
            XorEvent::Conflict(clause) => {
                assert_eq!(clause.len(), 2);
                assert!(clause.contains(&Var(0).negative()));
                assert!(clause.contains(&Var(1).negative()));
            }
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn deactivated_rows_neither_propagate_nor_conflict() {
        let mut eng = XorEngine::new();
        let mut a = assigns(3);
        let row = match eng.add_row(&[Var(0), Var(1), Var(2)], true, &a) {
            AddXor::Stored(id) => id,
            other => panic!("expected a stored row, got {other:?}"),
        };
        eng.deactivate(row);
        // A sequence that would imply (then falsify) the row is ignored.
        a[0] = LBool::True;
        assert!(eng.on_assign(Var(0), &a).is_empty());
        a[1] = LBool::True;
        assert!(eng.on_assign(Var(1), &a).is_empty());
        a[2] = LBool::False; // 1 ^ 1 ^ 0 = 0 ≠ 1 would be a conflict
        assert!(eng.on_assign(Var(2), &a).is_empty());
        // Deactivation is idempotent and tolerates unknown ids.
        eng.deactivate(row);
        eng.deactivate(99);
    }

    #[test]
    fn retired_slots_are_recycled_without_ghost_propagation() {
        let mut eng = XorEngine::new();
        let mut a = assigns(6);
        let row = match eng.add_row(&[Var(0), Var(1), Var(2)], true, &a) {
            AddXor::Stored(id) => id,
            other => panic!("expected a stored row, got {other:?}"),
        };
        assert_eq!(eng.len(), 1);
        eng.deactivate(row);
        assert_eq!(eng.len(), 0);
        assert!(eng.is_empty());
        // The next row takes over the retired slot...
        let reused = match eng.add_row(&[Var(3), Var(4), Var(5)], false, &a) {
            AddXor::Stored(id) => id,
            other => panic!("expected a stored row, got {other:?}"),
        };
        assert_eq!(reused, row);
        assert_eq!(eng.len(), 1);
        // ...and the old row's variables no longer reach it: assigning all
        // of x0..x2 to what would have falsified the retired row is silent.
        a[0] = LBool::True;
        assert!(eng.on_assign(Var(0), &a).is_empty());
        a[1] = LBool::True;
        assert!(eng.on_assign(Var(1), &a).is_empty());
        a[2] = LBool::False;
        assert!(eng.on_assign(Var(2), &a).is_empty());
        // The recycled slot still propagates for its new variables.
        a[3] = LBool::True;
        assert!(eng.on_assign(Var(3), &a).is_empty());
        a[4] = LBool::False;
        let events = eng.on_assign(Var(4), &a);
        assert_eq!(events.len(), 1);
        match &events[0] {
            // x3 ^ x4 ^ x5 = 0 with x3 = 1, x4 = 0  =>  x5 = 1
            XorEvent::Implied { lit, .. } => assert_eq!(*lit, Var(5).positive()),
            other => panic!("expected implication, got {other:?}"),
        }
    }

    #[test]
    fn watch_moves_to_unassigned_variable() {
        let mut eng = XorEngine::new();
        let mut a = assigns(4);
        assert_eq!(
            eng.add_row(&[Var(0), Var(1), Var(2), Var(3)], false, &a),
            AddXor::Stored(0)
        );
        a[0] = LBool::True;
        assert!(eng.on_assign(Var(0), &a).is_empty());
        a[1] = LBool::False;
        assert!(eng.on_assign(Var(1), &a).is_empty());
        a[2] = LBool::False;
        let events = eng.on_assign(Var(2), &a);
        assert_eq!(events.len(), 1);
        match &events[0] {
            XorEvent::Implied { lit, .. } => assert_eq!(*lit, Var(3).positive()),
            other => panic!("expected implication, got {other:?}"),
        }
    }
}
