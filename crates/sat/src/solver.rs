//! Conflict-driven clause learning SAT solver with native XOR reasoning.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::heap::VarHeap;
use crate::lit::{LBool, Lit, Var};
use crate::xor::{AddXor, XorEngine, XorEvent};

/// A cloneable flag that asks an in-flight [`Solver::solve`] call to give up
/// at its next safe point (a conflict or a restart boundary).
///
/// Clones share the same atomic, so a flag handed to a solver before the
/// solve can be raised from another thread while the search runs — this is
/// what lets a portfolio oracle cancel losing workers, and what lets a
/// cooperative cancellation token reach *inside* a long solver call instead
/// of waiting for it to return.  An interrupted solve answers
/// [`SatResult::Unknown`]; the solver stays usable (learnt clauses and
/// activities are kept, the trail is unwound to level zero).
#[derive(Debug, Clone, Default)]
pub struct InterruptFlag(Arc<AtomicBool>);

impl InterruptFlag {
    /// Creates a fresh, lowered flag.
    pub fn new() -> Self {
        InterruptFlag::default()
    }

    /// Raises the flag; every clone observes it.
    pub fn set(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Lowers the flag so the solver (and anything sharing the flag) can be
    /// used again.
    pub fn clear(&self) {
        self.0.store(false, Ordering::Relaxed);
    }

    /// Whether the flag is raised.
    pub fn is_set(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Search-diversification knobs of a [`Solver`].
///
/// The defaults reproduce the solver's historical behaviour exactly; a
/// portfolio oracle builds its workers with *distinct* options so they
/// explore the search space in genuinely different orders (the DALC-style
/// "complementary decoders" structure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatOptions {
    /// Initial saved phase of fresh variables (the polarity a variable is
    /// first decided with).  The default is `false`, the MiniSat convention.
    pub default_phase: bool,
    /// Base interval (in conflicts) of the Luby restart sequence.  Smaller
    /// bases restart aggressively (good for scrambled instances), larger
    /// bases commit to deep searches.
    pub restart_base: u64,
    /// Seed for tiny pseudo-random initial VSIDS activities on fresh
    /// variables, which perturbs the initial branching order.  `0` disables
    /// the noise (all activities start at exactly zero).
    pub activity_seed: u64,
}

impl Default for SatOptions {
    fn default() -> Self {
        SatOptions {
            default_phase: false,
            restart_base: RESTART_BASE,
            activity_seed: 0,
        }
    }
}

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found; read it with [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a verdict was reached.
    Unknown,
}

/// Aggregate search statistics, useful for benchmarking and regression tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently stored.
    pub learnts: u64,
    /// Number of XOR rows stored in the native XOR engine.
    pub xor_rows: u64,
}

type ClauseRef = usize;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    clause: ClauseRef,
    blocker: Lit,
}

const VAR_DECAY: f64 = 0.95;
const ACTIVITY_LIMIT: f64 = 1e100;
const RESTART_BASE: u64 = 100;

/// An incremental CDCL SAT solver with two-watched-literal propagation,
/// VSIDS branching, first-UIP clause learning, Luby restarts, phase saving,
/// solving under assumptions and a native XOR engine.
///
/// ```
/// use pact_sat::{Solver, SatResult};
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[a.positive(), b.positive()]);
/// s.add_clause(&[!a.positive()]);
/// assert_eq!(s.solve(&[]), SatResult::Sat);
/// assert!(s.model_value(b));
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    xor: XorEngine,
    ok: bool,
    stats: SatStats,
    conflict_budget: Option<u64>,
    model: Vec<bool>,
    opts: SatOptions,
    /// xorshift64 state feeding the initial-activity noise (0 = disabled).
    noise_state: u64,
    /// Cooperative interrupts: `solve` gives up when any flag is raised.
    interrupts: Vec<InterruptFlag>,
    /// Per-variable attached-clause occurrence counts (problem and learnt
    /// clauses; transient XOR reason clauses are excluded), maintained
    /// incrementally so the lookahead never re-scans the clause store.
    occurrences: Vec<u64>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: VarHeap::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            xor: XorEngine::new(),
            ok: true,
            stats: SatStats::default(),
            conflict_budget: None,
            model: Vec::new(),
            opts: SatOptions::default(),
            noise_state: 0,
            interrupts: Vec::new(),
            occurrences: Vec::new(),
        }
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Creates an empty solver with the given diversification options.
    pub fn with_options(opts: SatOptions) -> Self {
        Solver {
            opts,
            noise_state: opts.activity_seed,
            ..Solver::default()
        }
    }

    /// Replaces the interrupt flags watched by subsequent `solve` calls
    /// (see [`InterruptFlag`]); an empty list removes them.
    pub fn set_interrupts(&mut self, flags: Vec<InterruptFlag>) {
        self.interrupts = flags;
    }

    fn interrupted(&self) -> bool {
        !self.interrupts.is_empty() && self.interrupts.iter().any(InterruptFlag::is_set)
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of problem clauses plus learnt clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Search statistics accumulated over all `solve` calls.
    pub fn stats(&self) -> SatStats {
        self.stats
    }

    /// Limits the number of conflicts a single `solve` call may use.
    ///
    /// When the budget is exhausted the call returns [`SatResult::Unknown`].
    /// `None` removes the limit.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        let noise = self.next_activity_noise();
        self.assigns.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(noise);
        self.phase.push(self.opts.default_phase);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.occurrences.push(0);
        self.order.insert(v, &self.activity);
        v
    }

    /// Tiny initial activity (well below one `bump_var` increment) from an
    /// xorshift64 stream, so diversified solvers start branching in distinct
    /// orders without overriding anything the search later learns.
    fn next_activity_noise(&mut self) -> f64 {
        if self.noise_state == 0 {
            return 0.0;
        }
        let mut x = self.noise_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.noise_state = x;
        (x >> 11) as f64 / (1u64 << 53) as f64 * 1e-3
    }

    fn value(&self, lit: Lit) -> LBool {
        self.assigns[lit.var().index()].of_lit(lit)
    }

    /// Adds a clause; returns `false` if the formula became trivially
    /// unsatisfiable at level zero.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        debug_assert!(
            self.decision_level() == 0,
            "clauses must be added at level 0"
        );
        let mut clause: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut sorted = lits.to_vec();
        sorted.sort();
        sorted.dedup();
        for &l in &sorted {
            if sorted.contains(&!l) && l.is_positive() {
                return true; // tautology
            }
            match self.value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}
                LBool::Undef => clause.push(l),
            }
        }
        match clause.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                if !self.enqueue(clause[0], None) {
                    self.ok = false;
                    return false;
                }
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(clause);
                true
            }
        }
    }

    /// Adds a native XOR constraint `vars[0] ^ ... ^ vars[n-1] = rhs`.
    ///
    /// Returns `false` if the formula became trivially unsatisfiable.
    pub fn add_xor(&mut self, vars: &[Var], rhs: bool) -> bool {
        self.add_xor_tracked(vars, rhs).0
    }

    /// Like [`Solver::add_xor`], additionally reporting the engine id of the
    /// stored row (`None` when the row simplified away) so the caller can
    /// retire it later with [`Solver::deactivate_xor`].
    pub fn add_xor_tracked(&mut self, vars: &[Var], rhs: bool) -> (bool, Option<usize>) {
        if !self.ok {
            return (false, None);
        }
        debug_assert!(
            self.decision_level() == 0,
            "XOR rows must be added at level 0"
        );
        match self.xor.add_row(vars, rhs, &self.assigns) {
            AddXor::Stored(row) => {
                self.stats.xor_rows = self.xor.len() as u64;
                (true, Some(row))
            }
            AddXor::Trivial => (true, None),
            AddXor::Unit(lit) => {
                if !self.enqueue(lit, None) {
                    self.ok = false;
                    return (false, None);
                }
                self.ok = self.propagate().is_none();
                (self.ok, None)
            }
            AddXor::Unsat => {
                self.ok = false;
                (false, None)
            }
        }
    }

    /// Retires a stored XOR row (see [`XorEngine::deactivate`]): it stops
    /// propagating and conflicting.  Must be called at decision level zero,
    /// i.e. between `solve` calls.
    pub fn deactivate_xor(&mut self, row: usize) {
        debug_assert!(
            self.decision_level() == 0,
            "XOR rows must be retired at level 0"
        );
        self.xor.deactivate(row);
    }

    fn attach_clause(&mut self, lits: Vec<Lit>) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        for &l in &lits {
            self.occurrences[l.var().index()] += 1;
        }
        let cref = self.clauses.len();
        self.watches[(!lits[0]).code()].push(Watcher {
            clause: cref,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).code()].push(Watcher {
            clause: cref,
            blocker: lits[0],
        });
        self.clauses.push(Clause { lits });
        cref
    }

    /// Stores a clause without attaching watchers; used for XOR reasons and
    /// conflicts, which are only read during conflict analysis.
    fn store_virtual_clause(&mut self, lits: Vec<Lit>) -> ClauseRef {
        let cref = self.clauses.len();
        self.clauses.push(Clause { lits });
        cref
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) -> bool {
        match self.value(lit) {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => {
                let v = lit.var().index();
                self.assigns[v] = LBool::from_bool(lit.is_positive());
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.phase[v] = lit.is_positive();
                self.trail.push(lit);
                self.stats.propagations += 1;
                true
            }
        }
    }

    /// Propagates all enqueued literals; returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            if let Some(conflict) = self.propagate_clauses(p) {
                return Some(conflict);
            }
            if let Some(conflict) = self.propagate_xor(p) {
                return Some(conflict);
            }
        }
        None
    }

    fn propagate_clauses(&mut self, p: Lit) -> Option<ClauseRef> {
        let mut watchers = std::mem::take(&mut self.watches[p.code()]);
        let mut i = 0;
        let mut conflict = None;
        while i < watchers.len() {
            let w = watchers[i];
            if self.value(w.blocker) == LBool::True {
                i += 1;
                continue;
            }
            let cref = w.clause;
            // Ensure the false literal (¬p) is at position 1.
            let false_lit = !p;
            {
                let clause = &mut self.clauses[cref];
                if clause.lits[0] == false_lit {
                    clause.lits.swap(0, 1);
                }
            }
            let first = self.clauses[cref].lits[0];
            if first != w.blocker && self.value(first) == LBool::True {
                watchers[i] = Watcher {
                    clause: cref,
                    blocker: first,
                };
                i += 1;
                continue;
            }
            // Look for a new literal to watch.
            let mut new_watch = None;
            {
                let clause = &self.clauses[cref];
                for (k, &l) in clause.lits.iter().enumerate().skip(2) {
                    if self.value(l) != LBool::False {
                        new_watch = Some(k);
                        break;
                    }
                }
            }
            if let Some(k) = new_watch {
                let clause = &mut self.clauses[cref];
                clause.lits.swap(1, k);
                let new_lit = clause.lits[1];
                self.watches[(!new_lit).code()].push(Watcher {
                    clause: cref,
                    blocker: first,
                });
                watchers.swap_remove(i);
                continue;
            }
            // Clause is unit or conflicting.
            watchers[i] = Watcher {
                clause: cref,
                blocker: first,
            };
            i += 1;
            if self.value(first) == LBool::False {
                conflict = Some(cref);
                self.qhead = self.trail.len();
                break;
            }
            self.enqueue(first, Some(cref));
        }
        // Put back the watchers we have not consumed.
        let existing = std::mem::take(&mut self.watches[p.code()]);
        watchers.extend(existing);
        self.watches[p.code()] = watchers;
        conflict
    }

    fn propagate_xor(&mut self, p: Lit) -> Option<ClauseRef> {
        let events = self.xor.on_assign(p.var(), &self.assigns);
        for event in events {
            match event {
                XorEvent::Implied { lit, reason } => {
                    let cref = self.store_virtual_clause(reason);
                    if !self.enqueue(lit, Some(cref)) {
                        // The implied literal is already false: the reason
                        // clause is falsified and acts as the conflict.
                        return Some(cref);
                    }
                }
                XorEvent::Conflict(clause) => {
                    let cref = self.store_virtual_clause(clause);
                    return Some(cref);
                }
            }
        }
        None
    }

    fn cancel_until(&mut self, target_level: u32) {
        if self.decision_level() <= target_level {
            return;
        }
        let bound = self.trail_lim[target_level as usize];
        while self.trail.len() > bound {
            let lit = self.trail.pop().expect("trail not empty");
            let v = lit.var();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            if !self.order.contains(v) {
                self.order.insert(v, &self.activity);
            }
        }
        self.trail_lim.truncate(target_level as usize);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > ACTIVITY_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v, &self.activity);
    }

    fn decay_activities(&mut self) {
        self.var_inc /= VAR_DECAY;
    }

    /// First-UIP conflict analysis.  Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = conflict;
        let mut trail_idx = self.trail.len();

        loop {
            let lits: Vec<Lit> = self.clauses[cref].lits.clone();
            let skip_first = p.is_some();
            for &q in lits.iter().skip(if skip_first { 1 } else { 0 }) {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal of the current level on the trail.
            loop {
                trail_idx -= 1;
                let lit = self.trail[trail_idx];
                if self.seen[lit.var().index()] {
                    p = Some(lit);
                    break;
                }
            }
            let p_lit = p.expect("UIP literal");
            counter -= 1;
            self.seen[p_lit.var().index()] = false;
            if counter == 0 {
                learnt[0] = !p_lit;
                break;
            }
            cref = self.reason[p_lit.var().index()].expect("implied literal has a reason");
            // The reason clause stores the implied literal first; make sure of it.
            let reason_lits = &mut self.clauses[cref].lits;
            if reason_lits[0].var() != p_lit.var() {
                if let Some(pos) = reason_lits.iter().position(|l| l.var() == p_lit.var()) {
                    reason_lits.swap(0, pos);
                }
            }
        }

        for &l in &learnt[1..] {
            self.seen[l.var().index()] = false;
        }

        // Backjump level: highest level among the non-asserting literals.
        let backjump = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, backjump)
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop(&self.activity) {
            if !self.assigns[v.index()].is_assigned() {
                return Some(v);
            }
        }
        None
    }

    /// Ranks the variables a cube-and-conquer front-end should split on:
    /// every variable not fixed at decision level zero, ordered by VSIDS
    /// activity (what the search has been fighting over), then by clause
    /// occurrence count (structural weight for variables the search has not
    /// touched yet — a free projection bit occurs in no clause but is still
    /// a perfectly balanced split), then by index for determinism.  Returns
    /// at most `limit` variables.
    ///
    /// This is a read-only lookahead: it never assigns, propagates or
    /// otherwise perturbs the solver, so interleaving it with `solve` calls
    /// cannot change any verdict.
    pub fn lookahead_candidates(&self, limit: usize) -> Vec<Var> {
        let all: Vec<Var> = (0..self.num_vars()).map(|i| Var(i as u32)).collect();
        self.lookahead_candidates_among(&all, limit)
    }

    /// As [`Solver::lookahead_candidates`], ranking only the given
    /// candidate set.  A cube front-end that can only split on projection
    /// bits passes exactly those variables.  Occurrence counts are
    /// maintained incrementally as clauses are attached, so a call costs a
    /// sort of the candidate set — nothing proportional to the clause
    /// store, which grows with every learnt clause over a counting run.
    pub fn lookahead_candidates_among(&self, vars: &[Var], limit: usize) -> Vec<Var> {
        let mut candidates: Vec<Var> = vars
            .iter()
            .copied()
            .filter(|v| v.index() < self.num_vars() && !self.assigns[v.index()].is_assigned())
            .collect();
        candidates.sort_by(|a, b| {
            self.activity[b.index()]
                .partial_cmp(&self.activity[a.index()])
                .expect("activities are finite")
                .then(self.occurrences[b.index()].cmp(&self.occurrences[a.index()]))
                .then(a.index().cmp(&b.index()))
        });
        candidates.dedup();
        candidates.truncate(limit);
        candidates
    }

    /// The Luby restart sequence 1, 1, 2, 1, 1, 2, 4, ... (0-indexed).
    fn luby(mut x: u64) -> u64 {
        let mut size = 1u64;
        let mut seq = 0u32;
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) / 2;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    /// Solves the formula under the given assumptions.
    ///
    /// Assumption literals are treated as decisions that are never undone, so
    /// the call answers "is the formula satisfiable with these literals set".
    /// Learnt clauses persist across calls, giving incremental behaviour.
    /// Interrupt flags installed via [`Solver::set_interrupts`] are polled at
    /// every conflict (which covers every restart boundary — restarts fire
    /// right after conflict handling); a raised flag makes the call return
    /// [`SatResult::Unknown`] with the solver left reusable.
    /// A clause learnt while refuting an assumption contains that
    /// assumption's negation as an ordinary literal, so it is implied by the
    /// formula alone and remains sound for later calls with different
    /// assumptions (this is what lets activation-literal encodings retire a
    /// frame by asserting the unit negation afterwards).
    ///
    /// # Panics
    ///
    /// Panics if an assumption literal refers to a variable that was never
    /// created (a caller bug; the check is unconditional because the failure
    /// mode — indexing garbage deep inside propagation — is otherwise hard
    /// to trace back to the bad literal).
    pub fn solve(&mut self, assumptions: &[Lit]) -> SatResult {
        for &a in assumptions {
            assert!(
                a.var().index() < self.num_vars(),
                "assumption {a} refers to a variable that does not exist"
            );
        }
        if !self.ok {
            return SatResult::Unsat;
        }
        if self.interrupted() {
            return SatResult::Unknown;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }
        let budget_start = self.stats.conflicts;
        let mut restart_count: u64 = 0;
        let mut conflicts_since_restart: u64 = 0;

        loop {
            let conflict = self.propagate();
            if let Some(conflict) = conflict {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                let (learnt, backjump) = self.analyze(conflict);
                self.cancel_until(backjump);
                if learnt.len() == 1 {
                    if !self.enqueue(learnt[0], None) {
                        self.ok = false;
                        return SatResult::Unsat;
                    }
                } else {
                    let cref = self.attach_learnt(learnt.clone());
                    self.enqueue(learnt[0], Some(cref));
                }
                self.decay_activities();
                if self.conflict_exhausted(budget_start) || self.interrupted() {
                    self.cancel_until(0);
                    return SatResult::Unknown;
                }
                if conflicts_since_restart >= self.opts.restart_base * Self::luby(restart_count) {
                    restart_count += 1;
                    self.stats.restarts += 1;
                    conflicts_since_restart = 0;
                    let keep = (assumptions.len() as u32).min(self.decision_level());
                    self.cancel_until(keep);
                }
            } else {
                // No conflict: extend the assumption prefix or decide.
                if (self.decision_level() as usize) < assumptions.len() {
                    let next = assumptions[self.decision_level() as usize];
                    match self.value(next) {
                        LBool::True => {
                            // Already implied; open an empty decision level to
                            // keep the prefix aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            self.cancel_until(0);
                            return SatResult::Unsat;
                        }
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(next, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        self.save_model();
                        self.cancel_until(0);
                        return SatResult::Sat;
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = v.lit(self.phase[v.index()]);
                        self.enqueue(lit, None);
                    }
                }
            }
        }
    }

    fn conflict_exhausted(&self, budget_start: u64) -> bool {
        match self.conflict_budget {
            Some(limit) => self.stats.conflicts - budget_start >= limit,
            None => false,
        }
    }

    fn attach_learnt(&mut self, lits: Vec<Lit>) -> ClauseRef {
        self.stats.learnts += 1;
        self.attach_clause(lits)
    }

    fn save_model(&mut self) {
        self.model = self.assigns.iter().map(|&a| a == LBool::True).collect();
    }

    /// Value of `v` in the most recent satisfying assignment.
    ///
    /// # Panics
    ///
    /// Panics if the last `solve` call did not return [`SatResult::Sat`] or
    /// the variable was created afterwards.
    pub fn model_value(&self, v: Var) -> bool {
        self.model[v.index()]
    }

    /// The most recent satisfying assignment as literal values, one per
    /// variable, or an empty slice if no model is available.
    pub fn model(&self) -> &[bool] {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivially_sat_and_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause(&[v[0].positive()]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert!(s.model_value(v[0]));
        s.add_clause(&[v[0].negative()]);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        // v0 -> v1 -> v2 -> v3, with v0 forced true.
        s.add_clause(&[v[0].negative(), v[1].positive()]);
        s.add_clause(&[v[1].negative(), v[2].positive()]);
        s.add_clause(&[v[2].negative(), v[3].positive()]);
        s.add_clause(&[v[0].positive()]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        for &x in &v {
            assert!(s.model_value(x));
        }
    }

    #[test]
    fn pigeonhole_three_into_two_is_unsat() {
        // 3 pigeons, 2 holes: p_{i,j} = pigeon i in hole j.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3).map(|_| vars(&mut s, 2)).collect();
        for row in &p {
            s.add_clause(&[row[0].positive(), row[1].positive()]);
        }
        for i in 0..3 {
            for k in (i + 1)..3 {
                for (a, b) in p[i].iter().zip(&p[k]) {
                    s.add_clause(&[a.negative(), b.negative()]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn solving_under_assumptions_is_incremental() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0].positive(), v[1].positive(), v[2].positive()]);
        assert_eq!(s.solve(&[v[0].negative(), v[1].negative()]), SatResult::Sat);
        assert!(s.model_value(v[2]));
        assert_eq!(
            s.solve(&[v[0].negative(), v[1].negative(), v[2].negative()]),
            SatResult::Unsat
        );
        // The solver is still usable and satisfiable without assumptions.
        assert_eq!(s.solve(&[]), SatResult::Sat);
    }

    #[test]
    fn xor_chain_forces_parity() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        let all: Vec<Var> = v.clone();
        assert!(s.add_xor(&all, true));
        assert!(s.add_clause(&[v[0].negative()]));
        assert!(s.add_clause(&[v[1].negative()]));
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert!(s.model_value(v[2]));
        assert!(!s.model_value(v[0]));
    }

    #[test]
    fn contradictory_xor_rows_are_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        assert!(s.add_xor(&v, true));
        assert!(s.add_xor(&v, false) || !s.ok || s.solve(&[]) == SatResult::Unsat);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn xor_and_clauses_interact() {
        // x0 ^ x1 ^ x2 = 0, x0 = 1, x1 = 1 implies x2 = 0.
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_xor(&v, false);
        s.add_clause(&[v[0].positive()]);
        s.add_clause(&[v[1].positive()]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert!(!s.model_value(v[2]));
        // Forcing x2 = 1 as an assumption must now fail.
        assert_eq!(s.solve(&[v[2].positive()]), SatResult::Unsat);
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        // A hard instance: pigeonhole 6 into 5 with a budget of 1 conflict.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..6).map(|_| vars(&mut s, 5)).collect();
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&lits);
        }
        for i in 0..6 {
            for k in (i + 1)..6 {
                for (a, b) in p[i].iter().zip(&p[k]) {
                    s.add_clause(&[a.negative(), b.negative()]);
                }
            }
        }
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(&[]), SatResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn enumeration_by_blocking_models() {
        // Three free variables with one XOR constraint: exactly 4 models.
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_xor(&v, true);
        let mut count = 0;
        while s.solve(&[]) == SatResult::Sat {
            count += 1;
            assert!(count <= 4, "more models than expected");
            let blocking: Vec<Lit> = v.iter().map(|&x| x.lit(!s.model_value(x))).collect();
            s.add_clause(&blocking);
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn activation_literal_gates_clauses_and_survives_retirement() {
        // The incremental-oracle pattern: clauses guarded by an activation
        // literal `a` only bite while `a` is assumed, and asserting the unit
        // `¬a` afterwards retires them without touching the rest.
        let mut s = Solver::new();
        let x = s.new_var();
        let a = s.new_var();
        // Guarded constraint: a -> x.
        s.add_clause(&[a.negative(), x.positive()]);
        assert_eq!(s.solve(&[a.positive()]), SatResult::Sat);
        assert!(s.model_value(x));
        // Without the assumption, x is free again.
        assert_eq!(s.solve(&[x.negative()]), SatResult::Sat);
        assert!(!s.model_value(x));
        // Retire the frame: the guarded clause is permanently satisfied.
        assert!(s.add_clause(&[a.negative()]));
        assert_eq!(s.solve(&[x.negative()]), SatResult::Sat);
    }

    #[test]
    fn refuting_an_assumption_keeps_the_solver_usable() {
        // F ∧ a is unsat, so solving under `a` answers Unsat — but the
        // learnt consequence (¬a) must be implied by F alone, leaving the
        // solver satisfiable without the assumption and consistent with the
        // later unit retirement of `a`.
        let mut s = Solver::new();
        let x = s.new_var();
        let a = s.new_var();
        s.add_clause(&[a.negative(), x.positive()]);
        s.add_clause(&[a.negative(), x.negative()]);
        assert_eq!(s.solve(&[a.positive()]), SatResult::Unsat);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert!(s.add_clause(&[a.negative()]));
        assert_eq!(s.solve(&[]), SatResult::Sat);
    }

    #[test]
    fn slack_variable_neutralises_an_xor_row_after_retirement() {
        // A guarded XOR row: x0 ^ x1 ^ slack = 1 with (¬a ∨ ¬slack).  While
        // `a` is assumed the slack is forced off and the row enforces odd
        // parity; after retiring `¬a` the free slack absorbs any parity.
        let mut s = Solver::new();
        let x0 = s.new_var();
        let x1 = s.new_var();
        let slack = s.new_var();
        let a = s.new_var();
        assert!(s.add_xor(&[x0, x1, slack], true));
        assert!(s.add_clause(&[a.negative(), slack.negative()]));
        // Active frame: even parity over (x0, x1) is impossible.
        assert_eq!(
            s.solve(&[a.positive(), x0.positive(), x1.positive()]),
            SatResult::Unsat
        );
        assert_eq!(
            s.solve(&[a.positive(), x0.positive(), x1.negative()]),
            SatResult::Sat
        );
        // Retired frame: every (x0, x1) combination is allowed again.
        assert!(s.add_clause(&[a.negative()]));
        assert_eq!(s.solve(&[x0.positive(), x1.positive()]), SatResult::Sat);
        assert_eq!(s.solve(&[x0.negative(), x1.negative()]), SatResult::Sat);
    }

    #[test]
    fn conflict_budget_applies_under_assumptions() {
        // Pigeonhole 6-into-5 again, but queried under an assumption: the
        // budget must still bound the work and leave the solver reusable.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..6).map(|_| vars(&mut s, 5)).collect();
        let a = s.new_var();
        for row in &p {
            let mut lits: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            lits.push(a.negative());
            s.add_clause(&lits);
        }
        for i in 0..6 {
            for k in (i + 1)..6 {
                for (x, y) in p[i].iter().zip(&p[k]) {
                    s.add_clause(&[x.negative(), y.negative(), a.negative()]);
                }
            }
        }
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(&[a.positive()]), SatResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(&[a.positive()]), SatResult::Unsat);
        // The guarded instance stays satisfiable once the frame is retired.
        assert!(s.add_clause(&[a.negative()]));
        assert_eq!(s.solve(&[]), SatResult::Sat);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn unknown_assumption_variables_are_rejected() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause(&[v.positive()]);
        s.solve(&[Var(99).positive()]);
    }

    #[test]
    fn interrupt_flag_stops_a_search_and_leaves_the_solver_usable() {
        // Pigeonhole 6-into-5: an exhaustive search a pre-raised flag must
        // cut short, and that a later solve (flag lowered) still completes.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..6).map(|_| vars(&mut s, 5)).collect();
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&lits);
        }
        for i in 0..6 {
            for k in (i + 1)..6 {
                for (a, b) in p[i].iter().zip(&p[k]) {
                    s.add_clause(&[a.negative(), b.negative()]);
                }
            }
        }
        let flag = InterruptFlag::new();
        s.set_interrupts(vec![flag.clone()]);
        flag.set();
        assert_eq!(s.solve(&[]), SatResult::Unknown);
        flag.clear();
        assert_eq!(s.solve(&[]), SatResult::Unsat);
        // Any raised flag in the set interrupts; clones share the atomic.
        let second = InterruptFlag::new();
        s.set_interrupts(vec![InterruptFlag::new(), second.clone()]);
        second.clone().set();
        assert!(second.is_set());
    }

    #[test]
    fn diversified_options_answer_identically() {
        // Polarity, restart base and activity noise steer the search, never
        // the verdict or the constraint semantics.
        let build = |opts: SatOptions| {
            let mut s = Solver::with_options(opts);
            let v = vars(&mut s, 6);
            s.add_xor(&v[..4], true);
            s.add_clause(&[v[0].negative(), v[4].positive()]);
            s.add_clause(&[v[4].negative(), v[5].positive()]);
            s
        };
        let configs = [
            SatOptions::default(),
            SatOptions {
                default_phase: true,
                restart_base: 40,
                activity_seed: 0x9e37_79b9,
            },
            SatOptions {
                default_phase: false,
                restart_base: 400,
                activity_seed: 7,
            },
        ];
        for opts in configs {
            let mut s = build(opts);
            assert_eq!(s.solve(&[]), SatResult::Sat, "{opts:?}");
            // The model satisfies the parity constraint whatever the phase.
            let parity = (0..4).filter(|&i| s.model_value(Var(i as u32))).count();
            assert_eq!(parity % 2, 1, "{opts:?}");
            assert_eq!(s.solve(&[Var(0).positive()]), SatResult::Sat, "{opts:?}");
        }
    }

    #[test]
    fn default_options_reproduce_the_historical_solver() {
        // `Solver::new()` and `with_options(default)` must walk the same
        // search: same decisions, conflicts and model on a nontrivial
        // instance.
        let build = |mut s: Solver| {
            let p: Vec<Vec<Var>> = (0..5).map(|_| vars(&mut s, 4)).collect();
            for row in &p {
                let lits: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
                s.add_clause(&lits);
            }
            for i in 0..5 {
                for k in (i + 1)..5 {
                    for (a, b) in p[i].iter().zip(&p[k]) {
                        s.add_clause(&[a.negative(), b.negative()]);
                    }
                }
            }
            s
        };
        let mut a = build(Solver::new());
        let mut b = build(Solver::with_options(SatOptions::default()));
        assert_eq!(a.solve(&[]), b.solve(&[]));
        assert_eq!(a.stats().decisions, b.stats().decisions);
        assert_eq!(a.stats().conflicts, b.stats().conflicts);
        assert_eq!(a.model(), b.model());
    }

    #[test]
    fn lookahead_candidates_rank_by_activity_then_occurrence() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        // v1 occurs in two clauses, v2 in one, v0 is fixed at level zero and
        // v3 is completely free.
        s.add_clause(&[v[0].positive()]);
        s.add_clause(&[v[1].positive(), v[2].positive()]);
        s.add_clause(&[v[1].negative(), v[2].positive(), v[3].positive()]);
        let ranked = s.lookahead_candidates(8);
        // The fixed variable is excluded; with zero activity everywhere the
        // occurrence counts decide, and the free variable ranks last.
        assert!(!ranked.contains(&v[0]));
        assert_eq!(ranked, vec![v[1], v[2], v[3]]);
        // The limit truncates without reordering.
        assert_eq!(s.lookahead_candidates(1), vec![v[1]]);
        // After a conflict-heavy solve, bumped activities dominate; the
        // call itself must not perturb the search state (same verdict,
        // same model, before and after).
        assert_eq!(s.solve(&[]), SatResult::Sat);
        let model_before: Vec<bool> = s.model().to_vec();
        let _ = s.lookahead_candidates(8);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.model(), &model_before[..]);
    }

    #[test]
    fn lookahead_candidates_are_deterministic() {
        let build = || {
            let mut s = Solver::new();
            let p: Vec<Vec<Var>> = (0..4).map(|_| vars(&mut s, 3)).collect();
            for row in &p {
                let lits: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
                s.add_clause(&lits);
            }
            for i in 0..4 {
                for k in (i + 1)..4 {
                    for (a, b) in p[i].iter().zip(&p[k]) {
                        s.add_clause(&[a.negative(), b.negative()]);
                    }
                }
            }
            s.solve(&[]);
            s
        };
        let a = build();
        let b = build();
        assert_eq!(a.lookahead_candidates(6), b.lookahead_candidates(6));
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let v = vars(&mut s, 8);
        for w in v.windows(2) {
            s.add_clause(&[w[0].negative(), w[1].positive()]);
        }
        s.add_clause(&[v[0].positive()]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert!(s.stats().propagations > 0);
    }
}
