//! Activity-ordered variable heap (MiniSat-style indexed max-heap).

use crate::lit::Var;

/// A max-heap of variables keyed by an external activity array.
///
/// The heap stores each variable's position so that `decrease`/`increase`
/// updates and membership checks are O(log n) / O(1).
#[derive(Debug, Default, Clone)]
pub struct VarHeap {
    heap: Vec<Var>,
    position: Vec<Option<usize>>,
}

impl VarHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        VarHeap::default()
    }

    /// Ensures the heap can track variables up to `n - 1`.
    pub fn grow_to(&mut self, n: usize) {
        if self.position.len() < n {
            self.position.resize(n, None);
        }
    }

    /// Returns `true` when the heap contains no variables.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Returns `true` when `v` is currently in the heap.
    pub fn contains(&self, v: Var) -> bool {
        self.position
            .get(v.index())
            .map(|p| p.is_some())
            .unwrap_or(false)
    }

    /// Inserts `v` unless it is already present.
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        self.grow_to(v.index() + 1);
        if self.contains(v) {
            return;
        }
        let i = self.heap.len();
        self.heap.push(v);
        self.position[v.index()] = Some(i);
        self.sift_up(i, activity);
    }

    /// Removes and returns the variable with the highest activity.
    pub fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.position[top.index()] = None;
        let last = self.heap.pop().expect("non-empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last.index()] = Some(0);
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores the heap property after `v`'s activity increased.
    pub fn update(&mut self, v: Var, activity: &[f64]) {
        if let Some(Some(i)) = self.position.get(v.index()).copied() {
            self.sift_up(i, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i].index()] > activity[self.heap[parent].index()] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let left = 2 * i + 1;
            let right = 2 * i + 2;
            let mut best = i;
            if left < self.heap.len()
                && activity[self.heap[left].index()] > activity[self.heap[best].index()]
            {
                best = left;
            }
            if right < self.heap.len()
                && activity[self.heap[right].index()] > activity[self.heap[best].index()]
            {
                best = right;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.position[self.heap[i].index()] = Some(i);
        self.position[self.heap[j].index()] = Some(j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.5, 2.0];
        let mut heap = VarHeap::new();
        for i in 0..4 {
            heap.insert(Var(i), &activity);
        }
        assert_eq!(heap.pop(&activity), Some(Var(1)));
        assert_eq!(heap.pop(&activity), Some(Var(3)));
        assert_eq!(heap.pop(&activity), Some(Var(2)));
        assert_eq!(heap.pop(&activity), Some(Var(0)));
        assert_eq!(heap.pop(&activity), None);
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0, 2.0];
        let mut heap = VarHeap::new();
        heap.insert(Var(0), &activity);
        heap.insert(Var(0), &activity);
        heap.insert(Var(1), &activity);
        assert_eq!(heap.pop(&activity), Some(Var(1)));
        assert_eq!(heap.pop(&activity), Some(Var(0)));
        assert!(heap.is_empty());
    }

    #[test]
    fn update_reorders_after_bump() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut heap = VarHeap::new();
        for i in 0..3 {
            heap.insert(Var(i), &activity);
        }
        activity[0] = 10.0;
        heap.update(Var(0), &activity);
        assert_eq!(heap.pop(&activity), Some(Var(0)));
    }
}
