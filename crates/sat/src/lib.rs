//! A CDCL SAT solver with native XOR reasoning, built for the `pact`
//! approximate SMT model counter.
//!
//! The solver implements the classic MiniSat architecture — two-watched
//! literal propagation, VSIDS branching, first-UIP clause learning, Luby
//! restarts, phase saving and solving under assumptions — extended with an
//! XOR engine ([`xor::XorEngine`]) that propagates parity constraints
//! natively instead of expanding them to CNF.  Native XOR handling is the
//! mechanism behind the `H_xor` hash family's performance in the paper
//! (§III-E), mirroring what CryptoMiniSat provides to the original tool.
//!
//! # Example
//!
//! ```
//! use pact_sat::{Solver, SatResult};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_var();
//! let y = solver.new_var();
//! let z = solver.new_var();
//! // x ∨ y, ¬x, and parity x ⊕ y ⊕ z = 1
//! solver.add_clause(&[x.positive(), y.positive()]);
//! solver.add_clause(&[!x.positive()]);
//! solver.add_xor(&[x, y, z], true);
//! assert_eq!(solver.solve(&[]), SatResult::Sat);
//! assert!(solver.model_value(y));
//! assert!(!solver.model_value(z));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod heap;
mod lit;
mod solver;
pub mod xor;

pub use lit::{LBool, Lit, Var};
pub use solver::{InterruptFlag, SatOptions, SatResult, SatStats, Solver};

// Send audit: `Solver` instances live inside the per-round oracles the
// counting engine schedules across threads.  The solver owns all its state
// (clause arena, watch lists, trail — plain `Vec`s) and `unsafe` is
// forbidden crate-wide, so `Send` holds structurally; this assertion pins
// that property at the crate boundary.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Solver>();
};
