//! Variables, literals and three-valued assignments.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// Dense index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }

    /// A literal of this variable with the given polarity.
    pub fn lit(self, positive: bool) -> Lit {
        Lit::new(self, positive)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// The code is `2 * var` for the positive literal and `2 * var + 1` for the
/// negative literal, which makes literal-indexed tables dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable and polarity (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` for positive literals.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense code suitable for indexing watcher lists.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from its [`Lit::code`].
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }
}

impl Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "-{}", self.var())
        }
    }
}

/// A three-valued assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts a concrete boolean.
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Returns `true` when the value is assigned (not [`LBool::Undef`]).
    pub fn is_assigned(self) -> bool {
        self != LBool::Undef
    }

    /// The truth value of a literal whose variable has this value.
    pub fn of_lit(self, lit: Lit) -> LBool {
        match (self, lit.is_positive()) {
            (LBool::Undef, _) => LBool::Undef,
            (LBool::True, true) | (LBool::False, false) => LBool::True,
            _ => LBool::False,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_codes_are_dense() {
        let v = Var(3);
        assert_eq!(v.positive().code(), 6);
        assert_eq!(v.negative().code(), 7);
        assert_eq!(Lit::from_code(6), v.positive());
        assert_eq!(!v.positive(), v.negative());
        assert_eq!(!(!v.positive()), v.positive());
    }

    #[test]
    fn lbool_of_lit() {
        let v = Var(0);
        assert_eq!(LBool::True.of_lit(v.positive()), LBool::True);
        assert_eq!(LBool::True.of_lit(v.negative()), LBool::False);
        assert_eq!(LBool::False.of_lit(v.negative()), LBool::True);
        assert_eq!(LBool::Undef.of_lit(v.positive()), LBool::Undef);
    }
}
