//! Rationals extended with an infinitesimal, used to model strict bounds.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub};

use pact_ir::Rational;

/// A value of the form `real + delta·δ` where `δ` is a positive
/// infinitesimal.
///
/// Strict inequalities `x < c` are represented as the weak bound
/// `x ≤ c - δ`, following the general-simplex formulation of
/// Dutertre & de Moura.  Comparison is lexicographic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaRat {
    /// The standard (real) part.
    pub real: Rational,
    /// The coefficient of the infinitesimal δ.
    pub delta: Rational,
}

impl DeltaRat {
    /// The zero value.
    pub const ZERO: DeltaRat = DeltaRat {
        real: Rational::ZERO,
        delta: Rational::ZERO,
    };

    /// A purely real value.
    pub fn real(r: Rational) -> Self {
        DeltaRat {
            real: r,
            delta: Rational::ZERO,
        }
    }

    /// `real + delta·δ`.
    pub fn new(real: Rational, delta: Rational) -> Self {
        DeltaRat { real, delta }
    }

    /// Multiplies by a rational scalar.
    pub fn scale(&self, c: Rational) -> DeltaRat {
        DeltaRat {
            real: self.real * c,
            delta: self.delta * c,
        }
    }

    /// Substitutes a concrete positive value for δ.
    pub fn concretize(&self, epsilon: Rational) -> Rational {
        self.real + self.delta * epsilon
    }
}

impl Add for DeltaRat {
    type Output = DeltaRat;
    fn add(self, rhs: DeltaRat) -> DeltaRat {
        DeltaRat {
            real: self.real + rhs.real,
            delta: self.delta + rhs.delta,
        }
    }
}

impl AddAssign for DeltaRat {
    fn add_assign(&mut self, rhs: DeltaRat) {
        *self = *self + rhs;
    }
}

impl Sub for DeltaRat {
    type Output = DeltaRat;
    fn sub(self, rhs: DeltaRat) -> DeltaRat {
        DeltaRat {
            real: self.real - rhs.real,
            delta: self.delta - rhs.delta,
        }
    }
}

impl Neg for DeltaRat {
    type Output = DeltaRat;
    fn neg(self) -> DeltaRat {
        DeltaRat {
            real: -self.real,
            delta: -self.delta,
        }
    }
}

impl PartialOrd for DeltaRat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DeltaRat {
    fn cmp(&self, other: &Self) -> Ordering {
        self.real
            .cmp(&other.real)
            .then(self.delta.cmp(&other.delta))
    }
}

impl fmt::Display for DeltaRat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.delta.is_zero() {
            write!(f, "{}", self.real)
        } else {
            write!(f, "{} + {}δ", self.real, self.delta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        let one = DeltaRat::real(Rational::ONE);
        let one_minus = DeltaRat::new(Rational::ONE, -Rational::ONE);
        let one_plus = DeltaRat::new(Rational::ONE, Rational::ONE);
        assert!(one_minus < one);
        assert!(one < one_plus);
        assert!(DeltaRat::real(Rational::from_int(2)) > one_plus);
    }

    #[test]
    fn arithmetic() {
        let a = DeltaRat::new(Rational::ONE, Rational::ONE);
        let b = DeltaRat::new(Rational::from_int(2), -Rational::ONE);
        assert_eq!(a + b, DeltaRat::real(Rational::from_int(3)));
        assert_eq!(a - a, DeltaRat::ZERO);
        assert_eq!(
            a.scale(Rational::from_int(2)),
            DeltaRat::new(Rational::from_int(2), Rational::from_int(2))
        );
    }

    #[test]
    fn concretize_substitutes_epsilon() {
        let v = DeltaRat::new(Rational::from_int(3), -Rational::ONE);
        assert_eq!(v.concretize(Rational::new(1, 4)), Rational::new(11, 4));
    }
}
