//! Linear real arithmetic (QF_LRA) theory solver for the `pact` model
//! counter.
//!
//! The continuous side of a hybrid SMT formula is decided by this crate: the
//! boolean search in `pact-solver` hands a conjunction of linear atoms to
//! [`Simplex`], which answers feasibility using the general simplex method of
//! Dutertre & de Moura with [`DeltaRat`] infinitesimals for strict bounds.
//!
//! # Example
//!
//! ```
//! use pact_lra::{Simplex, LinExpr, LraVar, Constraint, Relation, LraResult};
//! use pact_ir::Rational;
//!
//! // 0 <= x, x + y <= 2, y >= 1  is satisfiable.
//! let (x, y) = (LraVar(0), LraVar(1));
//! let mut simplex = Simplex::new(2);
//! let mut nonneg = -LinExpr::from_var(x);
//! simplex.add_constraint(Constraint::new(nonneg, Relation::Le));
//! let mut sum = LinExpr::from_var(x) + LinExpr::from_var(y);
//! sum.add_constant(Rational::from_int(-2));
//! simplex.add_constraint(Constraint::new(sum, Relation::Le));
//! let mut ylb = -LinExpr::from_var(y);
//! ylb.add_constant(Rational::ONE);
//! simplex.add_constraint(Constraint::new(ylb, Relation::Le));
//! assert_eq!(simplex.check(), LraResult::Sat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delta;
mod linexpr;
mod simplex;

pub use delta::DeltaRat;
pub use linexpr::{Constraint, LinExpr, LraVar, Relation};
pub use simplex::{LraResult, Simplex};

// Send audit: `Simplex` tableaux are built inside the per-round oracles the
// counting engine schedules across threads.  The tableau owns all its state
// (rows, bounds, assignments — plain `Vec`s of rationals) and `unsafe` is
// forbidden crate-wide, so `Send` holds structurally; this assertion pins
// that property at the crate boundary.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Simplex>();
};
