//! General simplex feasibility checking for conjunctions of linear
//! constraints, following Dutertre & de Moura's SMT-oriented formulation.

use std::collections::HashMap;

use pact_ir::Rational;

use crate::delta::DeltaRat;
#[cfg(test)]
use crate::linexpr::LinExpr;
use crate::linexpr::{Constraint, LraVar, Relation};

/// The verdict of a feasibility check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LraResult {
    /// The conjunction is satisfiable; a witness is available through
    /// [`Simplex::model_value`].
    Sat,
    /// The conjunction is unsatisfiable.
    Unsat,
}

/// Internal variable index: original problem variables first, then one slack
/// variable per asserted constraint.
type VarIdx = usize;

#[derive(Debug, Clone, Default)]
struct Bounds {
    lower: Option<DeltaRat>,
    upper: Option<DeltaRat>,
}

/// A (non-incremental) simplex feasibility checker.
///
/// The intended use inside the lazy DPLL(T) loop is: collect the linear
/// atoms that the boolean assignment forces to be true or false, translate
/// them to [`Constraint`]s, run [`Simplex::check`], and either extract a
/// model or report the conflict back to the boolean search.
///
/// ```
/// use pact_lra::{Simplex, LinExpr, LraVar, Constraint, Relation, LraResult};
/// use pact_ir::Rational;
///
/// let x = LraVar(0);
/// // x - 3 > 0  and  x - 2 <= 0  is infeasible
/// let mut gt = LinExpr::from_var(x);
/// gt.add_constant(Rational::from_int(-3));
/// let mut le = LinExpr::from_var(x);
/// le.add_constant(Rational::from_int(-2));
/// let mut simplex = Simplex::new(1);
/// simplex.add_constraint(Constraint::new(gt, Relation::Gt));
/// simplex.add_constraint(Constraint::new(le, Relation::Le));
/// assert_eq!(simplex.check(), LraResult::Unsat);
/// ```
#[derive(Debug, Clone)]
pub struct Simplex {
    num_problem_vars: usize,
    constraints: Vec<Constraint>,
    /// Row for each basic variable: basic = Σ coeff · nonbasic.
    rows: HashMap<VarIdx, HashMap<VarIdx, Rational>>,
    bounds: Vec<Bounds>,
    values: Vec<DeltaRat>,
    trivially_unsat: bool,
}

impl Simplex {
    /// Creates a checker over `num_vars` problem variables
    /// (`LraVar(0) .. LraVar(num_vars - 1)`).
    pub fn new(num_vars: usize) -> Self {
        Simplex {
            num_problem_vars: num_vars,
            constraints: Vec::new(),
            rows: HashMap::new(),
            bounds: Vec::new(),
            values: Vec::new(),
            trivially_unsat: false,
        }
    }

    /// Asserts a constraint.  Constraints accumulate until [`Simplex::check`].
    pub fn add_constraint(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// Number of asserted constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    fn build(&mut self) {
        let n = self.num_problem_vars;
        let total = n + self.constraints.len();
        self.bounds = vec![Bounds::default(); total];
        self.values = vec![DeltaRat::ZERO; total];
        self.rows.clear();
        self.trivially_unsat = false;

        for (k, c) in self.constraints.clone().into_iter().enumerate() {
            let slack = n + k;
            // slack = Σ aᵢ·xᵢ  (the constant is folded into the bound).
            let negated_const = -c.expr.constant();
            if c.expr.is_constant() {
                // Constant constraint: check it outright.
                let holds = match c.rel {
                    Relation::Le => c.expr.constant() <= Rational::ZERO,
                    Relation::Lt => c.expr.constant() < Rational::ZERO,
                    Relation::Eq => c.expr.constant().is_zero(),
                    Relation::Ge => c.expr.constant() >= Rational::ZERO,
                    Relation::Gt => c.expr.constant() > Rational::ZERO,
                };
                if !holds {
                    self.trivially_unsat = true;
                }
                continue;
            }
            let mut row = HashMap::new();
            for (v, coeff) in c.expr.iter() {
                debug_assert!(v.index() < n, "constraint uses an undeclared variable");
                row.insert(v.index(), coeff);
            }
            self.rows.insert(slack, row);
            let b = &mut self.bounds[slack];
            match c.rel {
                Relation::Le => Self::tighten_upper(b, DeltaRat::real(negated_const)),
                Relation::Lt => {
                    Self::tighten_upper(b, DeltaRat::new(negated_const, -Rational::ONE))
                }
                Relation::Ge => Self::tighten_lower(b, DeltaRat::real(negated_const)),
                Relation::Gt => Self::tighten_lower(b, DeltaRat::new(negated_const, Rational::ONE)),
                Relation::Eq => {
                    Self::tighten_upper(b, DeltaRat::real(negated_const));
                    Self::tighten_lower(b, DeltaRat::real(negated_const));
                }
            }
        }
        // Initial assignment: nonbasic variables are 0; recompute basics.
        self.recompute_basic_values();
    }

    fn tighten_upper(b: &mut Bounds, v: DeltaRat) {
        match b.upper {
            Some(existing) if existing <= v => {}
            _ => b.upper = Some(v),
        }
    }

    fn tighten_lower(b: &mut Bounds, v: DeltaRat) {
        match b.lower {
            Some(existing) if existing >= v => {}
            _ => b.lower = Some(v),
        }
    }

    fn recompute_basic_values(&mut self) {
        let basics: Vec<VarIdx> = self.rows.keys().copied().collect();
        for basic in basics {
            let row = self.rows[&basic].clone();
            let mut value = DeltaRat::ZERO;
            for (&v, &coeff) in &row {
                value += self.values[v].scale(coeff);
            }
            self.values[basic] = value;
        }
    }

    /// Runs the feasibility check.
    pub fn check(&mut self) -> LraResult {
        self.build();
        if self.trivially_unsat {
            return LraResult::Unsat;
        }
        loop {
            // Bland's rule: smallest violating basic variable.
            let violating = self.find_violating_basic();
            let (basic, need_increase) = match violating {
                None => return LraResult::Sat,
                Some(x) => x,
            };
            let target = if need_increase {
                self.bounds[basic].lower.expect("violated lower bound")
            } else {
                self.bounds[basic].upper.expect("violated upper bound")
            };
            match self.find_pivot(basic, need_increase) {
                None => return LraResult::Unsat,
                Some(nonbasic) => self.pivot_and_update(basic, nonbasic, target),
            }
        }
    }

    fn find_violating_basic(&self) -> Option<(VarIdx, bool)> {
        let mut basics: Vec<VarIdx> = self.rows.keys().copied().collect();
        basics.sort_unstable();
        for basic in basics {
            let value = self.values[basic];
            let b = &self.bounds[basic];
            if let Some(lb) = b.lower {
                if value < lb {
                    return Some((basic, true));
                }
            }
            if let Some(ub) = b.upper {
                if value > ub {
                    return Some((basic, false));
                }
            }
        }
        None
    }

    /// Finds a nonbasic variable that can be adjusted to move `basic` toward
    /// its violated bound (Bland's rule: smallest index).
    fn find_pivot(&self, basic: VarIdx, need_increase: bool) -> Option<VarIdx> {
        let row = &self.rows[&basic];
        let mut candidates: Vec<VarIdx> = row.keys().copied().collect();
        candidates.sort_unstable();
        for nonbasic in candidates {
            let coeff = row[&nonbasic];
            let b = &self.bounds[nonbasic];
            let value = self.values[nonbasic];
            // To increase `basic`: increase nonbasic if coeff > 0 (allowed when
            // below its upper bound) or decrease nonbasic if coeff < 0 (allowed
            // when above its lower bound).  Symmetrically for decreasing.
            let can_move = if need_increase == coeff.is_positive() {
                b.upper.map(|ub| value < ub).unwrap_or(true)
            } else {
                b.lower.map(|lb| value > lb).unwrap_or(true)
            };
            if can_move {
                return Some(nonbasic);
            }
        }
        None
    }

    /// Pivots `basic` out of the basis in favour of `nonbasic`, then sets the
    /// (now nonbasic) old basic variable's value to `target`.
    fn pivot_and_update(&mut self, basic: VarIdx, nonbasic: VarIdx, target: DeltaRat) {
        let row = self.rows.remove(&basic).expect("basic variable has a row");
        let pivot_coeff = row[&nonbasic];
        // Express nonbasic in terms of (basic and the other nonbasics):
        //   basic = Σ aᵢ·xᵢ  =>  nonbasic = (basic - Σ_{i≠nonbasic} aᵢ·xᵢ) / a_nonbasic
        let mut new_row: HashMap<VarIdx, Rational> = HashMap::new();
        new_row.insert(basic, Rational::ONE / pivot_coeff);
        for (&v, &coeff) in &row {
            if v != nonbasic {
                new_row.insert(v, -coeff / pivot_coeff);
            }
        }
        // Substitute into every other row that mentions `nonbasic`.
        let other_basics: Vec<VarIdx> = self.rows.keys().copied().collect();
        for other in other_basics {
            let other_row = self.rows.get_mut(&other).expect("row exists");
            if let Some(c) = other_row.remove(&nonbasic) {
                for (&v, &coeff) in &new_row {
                    let entry = other_row.entry(v).or_insert(Rational::ZERO);
                    *entry += c * coeff;
                    if entry.is_zero() {
                        other_row.remove(&v);
                    }
                }
            }
        }
        self.rows.insert(nonbasic, new_row);

        // Update values: the old basic variable jumps to its violated bound;
        // the new basic variable and all other basics are recomputed.
        let delta = target - self.values[basic];
        self.values[basic] = target;
        self.values[nonbasic] += delta.scale(Rational::ONE / pivot_coeff);
        self.recompute_basic_values();
    }

    /// Concrete rational value of a problem variable in the satisfying
    /// assignment found by the last successful [`Simplex::check`].
    ///
    /// Strict bounds are honoured by substituting a sufficiently small
    /// positive value for the infinitesimal δ.
    pub fn model_value(&self, v: LraVar) -> Rational {
        let epsilon = self.suitable_epsilon();
        self.values
            .get(v.index())
            .copied()
            .unwrap_or(DeltaRat::ZERO)
            .concretize(epsilon)
    }

    /// The full model over problem variables.
    pub fn model(&self) -> Vec<Rational> {
        let epsilon = self.suitable_epsilon();
        (0..self.num_problem_vars)
            .map(|i| self.values[i].concretize(epsilon))
            .collect()
    }

    fn suitable_epsilon(&self) -> Rational {
        let mut epsilon = Rational::ONE;
        for (i, b) in self.bounds.iter().enumerate() {
            let value = self.values[i];
            if let Some(lb) = b.lower {
                if lb.real < value.real && lb.delta > value.delta {
                    let candidate = (value.real - lb.real) / (lb.delta - value.delta);
                    if candidate < epsilon {
                        epsilon = candidate;
                    }
                }
            }
            if let Some(ub) = b.upper {
                if value.real < ub.real && value.delta > ub.delta {
                    let candidate = (ub.real - value.real) / (value.delta - ub.delta);
                    if candidate < epsilon {
                        epsilon = candidate;
                    }
                }
            }
        }
        epsilon * Rational::new(1, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(terms: &[(u32, i128)], constant: i128) -> LinExpr {
        let mut e = LinExpr::from_constant(Rational::from_int(constant));
        for &(v, c) in terms {
            e.add_term(LraVar(v), Rational::from_int(c));
        }
        e
    }

    fn check_model(simplex: &Simplex, constraints: &[Constraint]) {
        for c in constraints {
            assert!(c.holds(&|v| simplex.model_value(v)), "model violates {c}");
        }
    }

    #[test]
    fn satisfiable_box() {
        // 0 <= x <= 1, 0 <= y <= 1, x + y >= 1
        let cs = vec![
            Constraint::new(expr(&[(0, -1)], 0), Relation::Le), // -x <= 0
            Constraint::new(expr(&[(0, 1)], -1), Relation::Le), // x - 1 <= 0
            Constraint::new(expr(&[(1, -1)], 0), Relation::Le),
            Constraint::new(expr(&[(1, 1)], -1), Relation::Le),
            Constraint::new(expr(&[(0, 1), (1, 1)], -1), Relation::Ge),
        ];
        let mut s = Simplex::new(2);
        for c in &cs {
            s.add_constraint(c.clone());
        }
        assert_eq!(s.check(), LraResult::Sat);
        check_model(&s, &cs);
    }

    #[test]
    fn infeasible_interval() {
        // x > 3 and x <= 2
        let cs = vec![
            Constraint::new(expr(&[(0, 1)], -3), Relation::Gt),
            Constraint::new(expr(&[(0, 1)], -2), Relation::Le),
        ];
        let mut s = Simplex::new(1);
        for c in &cs {
            s.add_constraint(c.clone());
        }
        assert_eq!(s.check(), LraResult::Unsat);
    }

    #[test]
    fn strict_bounds_get_interior_point() {
        // 0 < x < 1
        let cs = vec![
            Constraint::new(expr(&[(0, -1)], 0), Relation::Lt), // -x < 0
            Constraint::new(expr(&[(0, 1)], -1), Relation::Lt), // x - 1 < 0
        ];
        let mut s = Simplex::new(1);
        for c in &cs {
            s.add_constraint(c.clone());
        }
        assert_eq!(s.check(), LraResult::Sat);
        let x = s.model_value(LraVar(0));
        assert!(x > Rational::ZERO && x < Rational::ONE, "x = {x}");
        check_model(&s, &cs);
    }

    #[test]
    fn strict_empty_interval_is_unsat() {
        // x > 1 and x < 1
        let cs = vec![
            Constraint::new(expr(&[(0, 1)], -1), Relation::Gt),
            Constraint::new(expr(&[(0, 1)], -1), Relation::Lt),
        ];
        let mut s = Simplex::new(1);
        for c in &cs {
            s.add_constraint(c.clone());
        }
        assert_eq!(s.check(), LraResult::Unsat);
    }

    #[test]
    fn equalities_combine() {
        // x + y = 4, x - y = 2  =>  x = 3, y = 1; additionally y >= 0.
        let cs = vec![
            Constraint::new(expr(&[(0, 1), (1, 1)], -4), Relation::Eq),
            Constraint::new(expr(&[(0, 1), (1, -1)], -2), Relation::Eq),
            Constraint::new(expr(&[(1, -1)], 0), Relation::Le),
        ];
        let mut s = Simplex::new(2);
        for c in &cs {
            s.add_constraint(c.clone());
        }
        assert_eq!(s.check(), LraResult::Sat);
        assert_eq!(s.model_value(LraVar(0)), Rational::from_int(3));
        assert_eq!(s.model_value(LraVar(1)), Rational::ONE);
    }

    #[test]
    fn inconsistent_equalities() {
        // x = 1 and x = 2
        let cs = vec![
            Constraint::new(expr(&[(0, 1)], -1), Relation::Eq),
            Constraint::new(expr(&[(0, 1)], -2), Relation::Eq),
        ];
        let mut s = Simplex::new(1);
        for c in &cs {
            s.add_constraint(c.clone());
        }
        assert_eq!(s.check(), LraResult::Unsat);
    }

    #[test]
    fn constant_constraints() {
        let mut s = Simplex::new(0);
        s.add_constraint(Constraint::new(expr(&[], -1), Relation::Le)); // -1 <= 0
        assert_eq!(s.check(), LraResult::Sat);
        let mut s = Simplex::new(0);
        s.add_constraint(Constraint::new(expr(&[], 1), Relation::Le)); // 1 <= 0
        assert_eq!(s.check(), LraResult::Unsat);
    }

    #[test]
    fn larger_system_with_many_pivots() {
        // A small flow-style system:
        //   x0 + x1 >= 10, x0 <= 4, x1 <= 7, x0 >= 0, x1 >= 0
        let cs = vec![
            Constraint::new(expr(&[(0, 1), (1, 1)], -10), Relation::Ge),
            Constraint::new(expr(&[(0, 1)], -4), Relation::Le),
            Constraint::new(expr(&[(1, 1)], -7), Relation::Le),
            Constraint::new(expr(&[(0, -1)], 0), Relation::Le),
            Constraint::new(expr(&[(1, -1)], 0), Relation::Le),
        ];
        let mut s = Simplex::new(2);
        for c in &cs {
            s.add_constraint(c.clone());
        }
        assert_eq!(s.check(), LraResult::Sat);
        check_model(&s, &cs);

        // Tightening x1 <= 5 makes it infeasible (4 + 5 < 10).
        let mut s2 = Simplex::new(2);
        for c in &cs {
            s2.add_constraint(c.clone());
        }
        s2.add_constraint(Constraint::new(expr(&[(1, 1)], -5), Relation::Le));
        assert_eq!(s2.check(), LraResult::Unsat);
    }
}
