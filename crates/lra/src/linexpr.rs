//! Linear expressions and constraints over real-valued variables.

use std::collections::BTreeMap;
use std::fmt;

use pact_ir::Rational;

/// A real-valued theory variable, identified by a dense index.
///
/// The mapping between these indices and IR terms is maintained by the caller
/// (the `pact-solver` crate keeps one `LraVar` per real-sorted term).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LraVar(pub u32);

impl LraVar {
    /// Dense index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A linear expression `Σ cᵢ·xᵢ + constant`.
///
/// ```
/// use pact_lra::{LinExpr, LraVar};
/// use pact_ir::Rational;
/// let x = LraVar(0);
/// let e = LinExpr::from_var(x) * Rational::from_int(3) + LinExpr::from_constant(Rational::ONE);
/// assert_eq!(e.coeff(x), Rational::from_int(3));
/// assert_eq!(e.constant(), Rational::ONE);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    terms: BTreeMap<LraVar, Rational>,
    constant: Rational,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn from_constant(c: Rational) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// The expression `1·v`.
    pub fn from_var(v: LraVar) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(v, Rational::ONE);
        LinExpr {
            terms,
            constant: Rational::ZERO,
        }
    }

    /// Coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: LraVar) -> Rational {
        self.terms.get(&v).copied().unwrap_or(Rational::ZERO)
    }

    /// The constant offset.
    pub fn constant(&self) -> Rational {
        self.constant
    }

    /// Adds `c·v` to the expression.
    pub fn add_term(&mut self, v: LraVar, c: Rational) {
        let entry = self.terms.entry(v).or_insert(Rational::ZERO);
        *entry += c;
        if entry.is_zero() {
            self.terms.remove(&v);
        }
    }

    /// Adds a constant to the expression.
    pub fn add_constant(&mut self, c: Rational) {
        self.constant += c;
    }

    /// Iterates over the `(variable, coefficient)` pairs with non-zero
    /// coefficients, in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (LraVar, Rational)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Returns `true` when the expression has no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// The set of variables with non-zero coefficients.
    pub fn vars(&self) -> Vec<LraVar> {
        self.terms.keys().copied().collect()
    }

    /// Scales the whole expression by `c`.
    pub fn scale(&mut self, c: Rational) {
        if c.is_zero() {
            self.terms.clear();
            self.constant = Rational::ZERO;
            return;
        }
        for coeff in self.terms.values_mut() {
            *coeff = *coeff * c;
        }
        self.constant = self.constant * c;
    }
}

impl std::ops::Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
        self
    }
}

impl std::ops::Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms {
            self.add_term(v, -c);
        }
        self.constant -= rhs.constant;
        self
    }
}

impl std::ops::Mul<Rational> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: Rational) -> LinExpr {
        self.scale(rhs);
        self
    }
}

impl std::ops::Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        self.scale(-Rational::ONE);
        self
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.iter() {
            if first {
                write!(f, "{c}*v{}", v.0)?;
                first = false;
            } else {
                write!(f, " + {c}*v{}", v.0)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)
        } else if !self.constant.is_zero() {
            write!(f, " + {}", self.constant)
        } else {
            Ok(())
        }
    }
}

/// Comparison relation of a [`Constraint`] against zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `expr ≤ 0`
    Le,
    /// `expr < 0`
    Lt,
    /// `expr = 0`
    Eq,
    /// `expr ≥ 0`
    Ge,
    /// `expr > 0`
    Gt,
}

impl Relation {
    /// The relation satisfied by exactly the assignments violating `self`.
    pub fn negate(self) -> Relation {
        match self {
            Relation::Le => Relation::Gt,
            Relation::Lt => Relation::Ge,
            Relation::Ge => Relation::Lt,
            Relation::Gt => Relation::Le,
            // The negation of an equality is a disjunction; callers split it.
            Relation::Eq => panic!("negation of an equality is not a single relation"),
        }
    }
}

/// A linear constraint `expr ⋈ 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Left-hand side, compared against zero.
    pub expr: LinExpr,
    /// The comparison relation.
    pub rel: Relation,
}

impl Constraint {
    /// Creates `expr ⋈ 0`.
    pub fn new(expr: LinExpr, rel: Relation) -> Self {
        Constraint { expr, rel }
    }

    /// Evaluates the constraint under a full assignment.
    pub fn holds(&self, assignment: &dyn Fn(LraVar) -> Rational) -> bool {
        let mut value = self.expr.constant();
        for (v, c) in self.expr.iter() {
            value += c * assignment(v);
        }
        match self.rel {
            Relation::Le => value <= Rational::ZERO,
            Relation::Lt => value < Rational::ZERO,
            Relation::Eq => value == Rational::ZERO,
            Relation::Ge => value >= Rational::ZERO,
            Relation::Gt => value > Rational::ZERO,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.rel {
            Relation::Le => "<=",
            Relation::Lt => "<",
            Relation::Eq => "=",
            Relation::Ge => ">=",
            Relation::Gt => ">",
        };
        write!(f, "{} {op} 0", self.expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_term_cancels_to_zero() {
        let x = LraVar(0);
        let mut e = LinExpr::from_var(x);
        e.add_term(x, -Rational::ONE);
        assert!(e.is_constant());
        assert_eq!(e.coeff(x), Rational::ZERO);
    }

    #[test]
    fn expression_arithmetic() {
        let x = LraVar(0);
        let y = LraVar(1);
        let e = LinExpr::from_var(x) * Rational::from_int(2)
            + LinExpr::from_var(y)
            + LinExpr::from_constant(Rational::from_int(5));
        assert_eq!(e.coeff(x), Rational::from_int(2));
        assert_eq!(e.coeff(y), Rational::ONE);
        assert_eq!(e.constant(), Rational::from_int(5));
        let d = e.clone() - e.clone();
        assert!(d.is_constant());
        assert!(d.constant().is_zero());
    }

    #[test]
    fn constraint_evaluation() {
        // 2x + y - 4 <= 0
        let x = LraVar(0);
        let y = LraVar(1);
        let mut e = LinExpr::from_var(x) * Rational::from_int(2) + LinExpr::from_var(y);
        e.add_constant(Rational::from_int(-4));
        let c = Constraint::new(e, Relation::Le);
        let holds = c.holds(&|v| {
            if v == x {
                Rational::ONE
            } else {
                Rational::from_int(2)
            }
        });
        assert!(holds); // 2 + 2 - 4 = 0 <= 0
        let fails = c.holds(&|_| Rational::from_int(3));
        assert!(!fails); // 6 + 3 - 4 = 5 > 0
    }

    #[test]
    fn relation_negation() {
        assert_eq!(Relation::Le.negate(), Relation::Gt);
        assert_eq!(Relation::Lt.negate(), Relation::Ge);
        assert_eq!(Relation::Ge.negate(), Relation::Lt);
        assert_eq!(Relation::Gt.negate(), Relation::Le);
    }
}
