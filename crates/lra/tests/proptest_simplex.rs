//! Property-based tests of the simplex core: every `Sat` answer must come
//! with a witness that satisfies all constraints, and systems with a known
//! feasible point must never be reported `Unsat`.

use proptest::prelude::*;

use pact_ir::Rational;
use pact_lra::{Constraint, LinExpr, LraResult, LraVar, Relation, Simplex};

const NUM_VARS: usize = 3;

#[derive(Debug, Clone)]
struct RandomConstraint {
    coeffs: Vec<i8>,
    constant: i8,
    relation: u8,
}

fn constraint_strategy() -> impl Strategy<Value = RandomConstraint> {
    (
        proptest::collection::vec(-4i8..=4, NUM_VARS),
        -10i8..=10,
        0u8..4,
    )
        .prop_map(|(coeffs, constant, relation)| RandomConstraint {
            coeffs,
            constant,
            relation,
        })
}

fn to_constraint(c: &RandomConstraint) -> Constraint {
    let mut expr = LinExpr::from_constant(Rational::from_int(c.constant as i128));
    for (i, &coeff) in c.coeffs.iter().enumerate() {
        expr.add_term(LraVar(i as u32), Rational::from_int(coeff as i128));
    }
    let rel = match c.relation {
        0 => Relation::Le,
        1 => Relation::Lt,
        2 => Relation::Ge,
        _ => Relation::Gt,
    };
    Constraint::new(expr, rel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sat_answers_come_with_valid_witnesses(
        constraints in proptest::collection::vec(constraint_strategy(), 1..8)
    ) {
        let cs: Vec<Constraint> = constraints.iter().map(to_constraint).collect();
        let mut simplex = Simplex::new(NUM_VARS);
        for c in &cs {
            simplex.add_constraint(c.clone());
        }
        if simplex.check() == LraResult::Sat {
            for c in &cs {
                prop_assert!(
                    c.holds(&|v| simplex.model_value(v)),
                    "witness violates {c}"
                );
            }
        }
    }

    #[test]
    fn systems_built_around_a_point_are_feasible(
        point in proptest::collection::vec(-6i8..=6, NUM_VARS),
        directions in proptest::collection::vec(
            (proptest::collection::vec(-4i8..=4, NUM_VARS), any::<bool>()),
            1..8,
        ),
    ) {
        // Build constraints of the form a·x ⋈ a·p (⋈ ∈ {≤, ≥}) so the point p
        // is feasible by construction; the solver must agree.
        let mut simplex = Simplex::new(NUM_VARS);
        for (coeffs, upper) in &directions {
            let mut expr = LinExpr::zero();
            let mut at_point = Rational::ZERO;
            for (i, &c) in coeffs.iter().enumerate() {
                expr.add_term(LraVar(i as u32), Rational::from_int(c as i128));
                at_point += Rational::from_int(c as i128) * Rational::from_int(point[i] as i128);
            }
            expr.add_constant(-at_point);
            let rel = if *upper { Relation::Le } else { Relation::Ge };
            simplex.add_constraint(Constraint::new(expr, rel));
        }
        prop_assert_eq!(simplex.check(), LraResult::Sat);
    }

    #[test]
    fn contradictory_interval_is_always_unsat(
        coeffs in proptest::collection::vec(1i8..=4, NUM_VARS),
        gap in 1i8..=10,
        base in -10i8..=10,
    ) {
        // a·x ≤ base and a·x ≥ base + gap with gap > 0 is infeasible.
        let mut le = LinExpr::zero();
        let mut ge = LinExpr::zero();
        for (i, &c) in coeffs.iter().enumerate() {
            le.add_term(LraVar(i as u32), Rational::from_int(c as i128));
            ge.add_term(LraVar(i as u32), Rational::from_int(c as i128));
        }
        le.add_constant(Rational::from_int(-(base as i128)));
        ge.add_constant(Rational::from_int(-((base + gap) as i128)));
        let mut simplex = Simplex::new(NUM_VARS);
        simplex.add_constraint(Constraint::new(le, Relation::Le));
        simplex.add_constraint(Constraint::new(ge, Relation::Ge));
        prop_assert_eq!(simplex.check(), LraResult::Unsat);
    }
}
