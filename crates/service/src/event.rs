//! The per-request event feed: the observable lifecycle of a submitted
//! count.
//!
//! Every accepted request gets its own event stream, consumed through
//! [`RequestHandle`](crate::RequestHandle).  The stream is strictly ordered
//! for one request — `Queued`, then `Admitted`, then any number of
//! `Progress` events, then exactly one terminal event — but streams of
//! *different* requests interleave arbitrarily, as they run on different
//! shard threads.
//!
//! Events are delivered over an unbounded channel owned by the handle:
//! a slow (or absent) consumer never blocks a shard, and dropping the
//! handle silently discards further events without disturbing the run.

use pact::ProgressEvent;

/// One step in the service-side lifecycle of a counting request.
///
/// The enum is `#[non_exhaustive]`: future service features (re-queueing,
/// result caching) will add event kinds, and consumers must ignore unknown
/// ones.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RequestEvent {
    /// The request passed admission control and is waiting for a shard.
    Queued,
    /// A shard thread picked the request up and is counting it.
    Admitted {
        /// The serving shard's index (`0..shards`).
        shard: usize,
    },
    /// A counting-engine progress event (models, cells, rounds), forwarded
    /// verbatim from the shard's [`pact::Progress`] observer.
    Progress(ProgressEvent),
    /// Terminal: the count finished within its budget (exact, approximate
    /// or unsat — see the report retrieved through the handle).
    Finished,
    /// Terminal: the per-request deadline expired; the report carries
    /// [`pact::CountOutcome::Timeout`] with partial statistics.
    TimedOut,
    /// Terminal: the request was cancelled — through
    /// [`RequestHandle::cancel`](crate::RequestHandle::cancel) or an
    /// aborting shutdown — before (or while) it ran.
    Cancelled,
    /// Terminal: the counting engine rejected the run (unsupported
    /// fragment, invalid configuration); the handle yields the typed error.
    Failed,
}

impl RequestEvent {
    /// Whether this event ends the stream (no further events follow it).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            RequestEvent::Finished
                | RequestEvent::TimedOut
                | RequestEvent::Cancelled
                | RequestEvent::Failed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_classification() {
        assert!(!RequestEvent::Queued.is_terminal());
        assert!(!RequestEvent::Admitted { shard: 0 }.is_terminal());
        assert!(!RequestEvent::Progress(ProgressEvent::Model { found: 1 }).is_terminal());
        assert!(RequestEvent::Finished.is_terminal());
        assert!(RequestEvent::TimedOut.is_terminal());
        assert!(RequestEvent::Cancelled.is_terminal());
        assert!(RequestEvent::Failed.is_terminal());
    }
}
