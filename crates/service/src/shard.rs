//! Shard worker threads: one persistent `Session` pipeline per shard.
//!
//! Each shard is a std thread parked on the shared [`AdmissionQueue`],
//! serving one ticket at a time: build a single-threaded [`pact::Session`]
//! from the request, count it with the request's cancellation token and a
//! progress forwarder attached, and resolve the ticket's handle with a
//! typed disposition.  Parallelism comes from running several shards, not
//! from within a request — the per-request configuration pins
//! `parallel.threads = 1` (see
//! [`CountRequest::counter_config`](crate::CountRequest::counter_config)).
//!
//! Lifecycle accounting follows the `WorkerPool` discipline from
//! `pact_solver`: the service increments a shared live-thread counter
//! before spawning each shard, and a drop guard decrements it on *any* exit
//! path, so tests can assert zero leaked threads after shutdown.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use pact::{CountOutcome, CountReport, CountStats, Session};

use crate::queue::{AdmissionQueue, Ticket};
use crate::request::{Disposition, ServiceError, ServiceReport};
use crate::RequestEvent;

/// Per-shard state the service keeps for observability and abort: the token
/// of the request currently being served (cancelled wholesale by an
/// aborting shutdown) and per-disposition counters (reported through
/// [`ServiceMetrics`](crate::ServiceMetrics) and asserted by the throughput
/// smoke run).
///
/// Every ticket the shard pops resolves into **exactly one** of the four
/// counters: `served` counts only requests that truly finished (a decisive
/// count delivered), while cancellations, deadline expiries and errors land
/// in their own buckets.  An earlier revision bumped `served` at admission,
/// which inflated it with requests that were subsequently cancelled or
/// timed out; the regression test in `tests/service.rs` pins the split.
#[derive(Debug, Default)]
pub(crate) struct ShardState {
    pub(crate) current: Mutex<Option<pact::CancellationToken>>,
    pub(crate) served: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    pub(crate) timed_out: AtomicU64,
    pub(crate) failed: AtomicU64,
}

/// Decrements the live-thread counter on any exit path (normal drain,
/// abort, or panic unwinding through the shard loop).
struct LiveGuard(Arc<AtomicUsize>);

impl Drop for LiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

/// The shard thread body: pop, publish the current token, serve, repeat —
/// until the queue closes and drains.
pub(crate) fn run(
    index: usize,
    queue: Arc<AdmissionQueue>,
    state: Arc<ShardState>,
    live: Arc<AtomicUsize>,
) {
    let _guard = LiveGuard(live);
    while let Some(ticket) = queue.pop(index) {
        let cost = ticket.cost;
        *state.current.lock().expect("shard state poisoned") = Some(ticket.token.clone());
        serve(index, &queue, ticket, &state);
        *state.current.lock().expect("shard state poisoned") = None;
        // Release the running-cost charge only after the ticket resolved,
        // so placement keeps steering new work away from a busy shard.
        queue.finished(index, cost);
    }
}

/// The report a request resolves to when it never (fully) ran: the
/// engine's `Timeout` outcome with empty statistics.
pub(crate) fn cancelled_report() -> CountReport {
    CountReport {
        outcome: CountOutcome::Timeout,
        stats: CountStats::default(),
    }
}

/// Serves one ticket end to end: admission event, session build, count,
/// terminal event + result.  Send failures are ignored throughout — a
/// dropped [`RequestHandle`](crate::RequestHandle) must never disturb the
/// shard.
fn serve(shard: usize, queue: &AdmissionQueue, ticket: Ticket, state: &ShardState) {
    let Ticket {
        id: _,
        request,
        token,
        events,
        result,
        submitted,
        cost,
    } = ticket;
    // One measurement feeds both the reported queue time and the deadline
    // charge below, so the deadline is charged exactly the queue time the
    // report admits — an earlier revision measured twice and silently
    // charged the deadline the extra microseconds between the reads.
    let waited = submitted.elapsed();
    let queue_seconds = waited.as_secs_f64();
    let _ = events.send(RequestEvent::Admitted { shard });

    // A ticket can leave the queue just as an aborting shutdown clears it,
    // or its handle may have cancelled while it queued; either way, stand
    // down without building a session.  Counters are bumped *before* the
    // result send on every path below, so the increment happens-before the
    // delivery a waiter unblocks on: once `wait` returns, the metrics
    // already account for this request's disposition.
    if queue.aborting() || token.is_cancelled() {
        state.cancelled.fetch_add(1, Ordering::Relaxed);
        let _ = events.send(RequestEvent::Cancelled);
        let _ = result.send(Ok(ServiceReport {
            report: cancelled_report(),
            shard: Some(shard),
            queue_seconds,
            disposition: Disposition::Cancelled,
            cost_estimate: cost,
        }));
        return;
    }

    // The deadline is end-to-end from submission: time already spent in the
    // queue is charged against it.  A fully consumed budget becomes
    // `Some(Duration::ZERO)`, which the engine maps to an immediate
    // `Timeout` with partial statistics.
    let mut config = request.counter_config();
    if let Some(total) = request.deadline {
        config.deadline = Some(total.saturating_sub(waited));
    }

    // `Sender` is wrapped in a `Mutex` because the `Progress` observer must
    // be `Sync`; contention is nil (the session is single-threaded).
    let forward = Mutex::new(events.clone());
    let built = Session::builder(request.tm)
        .assert_all(&request.formula)
        .project_all(&request.projection)
        .config(config)
        .cancellation(token.clone())
        .on_progress(move |event| {
            let _ = forward
                .lock()
                .expect("event forwarder poisoned")
                .send(RequestEvent::Progress(event.clone()));
        })
        .build();

    let outcome = match built {
        Ok(mut session) => session.count(),
        Err(e) => Err(e),
    };
    match outcome {
        Err(e) => {
            state.failed.fetch_add(1, Ordering::Relaxed);
            let _ = events.send(RequestEvent::Failed);
            let _ = result.send(Err(ServiceError::Count(e)));
        }
        Ok(report) => {
            // Terminal resolution decides the counter *and* the report's
            // disposition: only a decisive, uncancelled count is "served".
            let (terminal, disposition) = if token.is_cancelled() {
                state.cancelled.fetch_add(1, Ordering::Relaxed);
                (RequestEvent::Cancelled, Disposition::Cancelled)
            } else if report.outcome == CountOutcome::Timeout {
                state.timed_out.fetch_add(1, Ordering::Relaxed);
                (RequestEvent::TimedOut, Disposition::TimedOut)
            } else {
                state.served.fetch_add(1, Ordering::Relaxed);
                (RequestEvent::Finished, Disposition::Completed)
            };
            let _ = events.send(terminal);
            let _ = result.send(Ok(ServiceReport {
                report,
                shard: Some(shard),
                queue_seconds,
                disposition,
                cost_estimate: cost,
            }));
        }
    }
}
