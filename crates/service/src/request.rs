//! Requests, handles, and the typed errors of the service surface.
//!
//! A [`CountRequest`] is a self-contained counting problem — it owns its
//! [`TermManager`], formula and projection, plus the strategy knobs the
//! service honours (backend spec, `(ε, δ)`, seed, deadline, priority).
//! Submitting one to a [`CountingService`](crate::CountingService) yields a
//! [`RequestHandle`]: the caller-side end of the request, exposing blocking
//! and polling result retrieval, per-request cancellation, and the streamed
//! [`RequestEvent`](crate::RequestEvent) feed.
//!
//! Requests arrive from untrusted payloads, so everything checkable is
//! checked at admission ([`CountRequest::validate`]) and rejected with a
//! typed [`ServiceError`] before any queue slot is consumed.

use std::sync::mpsc::{Receiver, TryRecvError};
use std::time::Duration;

use pact::{
    BackendSpec, CancellationToken, CountError, CountReport, CounterConfig, ParallelConfig,
};
use pact_hash::HashFamily;
use pact_ir::{TermId, TermManager};

/// Scheduling class of a request: shards always serve the highest
/// non-empty class, FIFO within each class.
///
/// Priorities address the mixed-workload shape the service exists for —
/// many short interactive queries interleaved with a few heavy batch
/// counts: submit the heavy ones as [`Priority::Batch`] and they never
/// head-of-line-block the interactive traffic behind them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Served before everything else (operator traffic, health probes).
    Urgent,
    /// The default class for interactive queries.
    #[default]
    Normal,
    /// Heavy background counts; only served when nothing else waits.
    Batch,
}

impl Priority {
    /// Every priority, highest first (the order shards scan the lanes).
    pub const ALL: [Priority; 3] = [Priority::Urgent, Priority::Normal, Priority::Batch];

    /// The lane index of this priority (0 = most urgent).
    pub(crate) fn lane(self) -> usize {
        match self {
            Priority::Urgent => 0,
            Priority::Normal => 1,
            Priority::Batch => 2,
        }
    }
}

/// A self-contained counting problem plus the strategy the service should
/// run it under.
///
/// Built like a [`pact::SessionBuilder`], but owned data only — the request
/// crosses a thread boundary into its serving shard, so it cannot borrow
/// anything (`CountRequest: Send` is asserted in the crate root).
///
/// ```
/// use pact_ir::{TermManager, Sort};
/// use pact_service::CountRequest;
/// use pact::BackendSpec;
///
/// let mut tm = TermManager::new();
/// let x = tm.mk_var("x", Sort::BitVec(8));
/// let c = tm.mk_bv_const(16, 8);
/// let f = tm.mk_bv_ule(c, x).unwrap();
/// let request = CountRequest::new(tm)
///     .assert(f)
///     .project(x)
///     .backend(BackendSpec::Incremental)
///     .seed(42)
///     .iterations(3);
/// assert!(request.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct CountRequest {
    pub(crate) tm: TermManager,
    pub(crate) formula: Vec<TermId>,
    pub(crate) projection: Vec<TermId>,
    pub(crate) backend: BackendSpec,
    pub(crate) epsilon: f64,
    pub(crate) delta: f64,
    pub(crate) family: HashFamily,
    pub(crate) seed: u64,
    pub(crate) iterations: Option<u32>,
    pub(crate) deadline: Option<Duration>,
    pub(crate) priority: Priority,
}

impl CountRequest {
    /// Starts a request over the given term manager, with the engine's
    /// default strategy ([`CounterConfig::default`], rebuild backend, no
    /// deadline, [`Priority::Normal`]).
    pub fn new(tm: TermManager) -> Self {
        let defaults = CounterConfig::default();
        CountRequest {
            tm,
            formula: Vec::new(),
            projection: Vec::new(),
            backend: BackendSpec::default(),
            epsilon: defaults.epsilon,
            delta: defaults.delta,
            family: defaults.family,
            seed: defaults.seed,
            iterations: None,
            deadline: None,
            priority: Priority::default(),
        }
    }

    /// Starts a request over a shared snapshot of an interned term store.
    ///
    /// The request's manager opens over the frozen id table as an `Arc`
    /// share, not a deep clone: a submitter fanning one formula out to many
    /// concurrent requests snapshots its manager once and builds each
    /// request with `from_snapshot(Arc::clone(&snap))`.  Every serving
    /// shard then observes the identical interned terms — same ids, same
    /// rendering — while each request's own additions land in a private
    /// tail invisible to its siblings.
    ///
    /// ```
    /// use pact_ir::{TermManager, Sort};
    /// use pact_service::CountRequest;
    ///
    /// let mut tm = TermManager::new();
    /// let x = tm.mk_var("x", Sort::BitVec(8));
    /// let c = tm.mk_bv_const(16, 8);
    /// let f = tm.mk_bv_ule(c, x).unwrap();
    /// let snap = tm.snapshot();
    /// let a = CountRequest::from_snapshot(std::sync::Arc::clone(&snap))
    ///     .assert(f)
    ///     .project(x);
    /// let b = CountRequest::from_snapshot(snap).assert(f).project(x);
    /// assert!(a.validate().is_ok() && b.validate().is_ok());
    /// ```
    pub fn from_snapshot(snapshot: std::sync::Arc<pact_ir::TermSnapshot>) -> Self {
        CountRequest::new(TermManager::from_snapshot(snapshot))
    }

    /// Asserts one boolean term.
    pub fn assert(mut self, t: TermId) -> Self {
        self.formula.push(t);
        self
    }

    /// Asserts every term in the slice.
    pub fn assert_all(mut self, ts: &[TermId]) -> Self {
        self.formula.extend_from_slice(ts);
        self
    }

    /// Adds one variable to the projection set.
    pub fn project(mut self, v: TermId) -> Self {
        self.projection.push(v);
        self
    }

    /// Adds every variable in the slice to the projection set.
    pub fn project_all(mut self, vs: &[TermId]) -> Self {
        self.projection.extend_from_slice(vs);
        self
    }

    /// Selects the oracle backend (parsed from untrusted payloads via
    /// [`BackendSpec`]'s `FromStr`; the service validates nothing further —
    /// worker counts are clamped by the backends themselves).
    pub fn backend(mut self, spec: BackendSpec) -> Self {
        self.backend = spec;
        self
    }

    /// Tolerance `ε` of the `(ε, δ)` guarantee.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Confidence `δ` of the `(ε, δ)` guarantee.
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Hash family used to partition the solution space.
    pub fn family(mut self, family: HashFamily) -> Self {
        self.family = family;
        self
    }

    /// Seed for all randomness (hash-function sampling).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the number of outer iterations computed from `δ`.
    pub fn iterations(mut self, iterations: u32) -> Self {
        self.iterations = Some(iterations);
        self
    }

    /// End-to-end budget, measured from *submission*: time spent waiting in
    /// the admission queue counts against it.  An expired request reports
    /// [`pact::CountOutcome::Timeout`] with whatever partial statistics its
    /// run accumulated — exactly the engine's own deadline semantics.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Scheduling class (see [`Priority`]).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// The counter configuration a shard will run this request under.
    ///
    /// Exposed so callers (tests, benchmarks) can reproduce a service run
    /// exactly with a direct [`pact::Session`]: the service pins
    /// single-threaded rounds per shard (`threads: 1` — parallelism comes
    /// from sharding, not from within a request), and the remaining knobs
    /// are copied verbatim, so a direct count with this configuration is
    /// bit-identical to the service's answer.
    pub fn counter_config(&self) -> CounterConfig {
        CounterConfig {
            epsilon: self.epsilon,
            delta: self.delta,
            family: self.family,
            seed: self.seed,
            deadline: self.deadline,
            iterations_override: self.iterations,
            parallel: ParallelConfig { threads: 1 },
            ..CounterConfig::default()
        }
        .with_backend(self.backend)
    }

    /// The deterministic size estimate placement runs on: projection width
    /// (total discrete bits of the projected variables) times the number of
    /// interned terms the request's store holds.
    ///
    /// The estimate is a *scheduling heuristic*, not a runtime promise —
    /// it is computed from the request alone (no clocks, no randomness),
    /// so resubmitting the same request always stamps the same cost, and
    /// the service reports it back verbatim on the
    /// [`ServiceReport::cost_estimate`] field.  Non-discrete projected
    /// sorts (reals, floats) contribute one bit each; the floor of 1
    /// keeps even degenerate requests visible to the accounting.
    pub fn cost_estimate(&self) -> u64 {
        let width: u64 = self
            .projection
            .iter()
            .map(|&v| u64::from(self.tm.sort(v).discrete_bits().unwrap_or(1)))
            .sum();
        width.max(1).saturating_mul(self.tm.len() as u64).max(1)
    }

    /// Admission-time validation: the `(ε, δ)` ranges and the non-empty
    /// projection requirement, checked before the request consumes a queue
    /// slot.
    ///
    /// # Errors
    ///
    /// [`CountError::Config`] for out-of-range parameters,
    /// [`CountError::EmptyProjection`] for a projection-free request.
    pub fn validate(&self) -> Result<(), CountError> {
        self.counter_config().validate()?;
        if self.projection.is_empty() {
            return Err(CountError::EmptyProjection);
        }
        Ok(())
    }
}

/// Why the service could not accept, or could not complete, a request.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// Admission control rejected the request: the bounded queue is at
    /// capacity.  Back off and resubmit; nothing was enqueued.
    QueueFull {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The service is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The request failed admission-time validation (bad `(ε, δ)`, empty
    /// projection); nothing was enqueued.
    Invalid(CountError),
    /// The counting engine failed at run time (e.g. an unsupported
    /// fragment reached the oracle).
    Count(CountError),
    /// The serving shard disappeared without reporting — only possible if
    /// a shard thread panicked.
    Lost,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            ServiceError::ShuttingDown => f.write_str("service is shutting down"),
            ServiceError::Invalid(e) => write!(f, "invalid request: {e}"),
            ServiceError::Count(e) => write!(f, "count failed: {e}"),
            ServiceError::Lost => f.write_str("serving shard died without reporting"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Invalid(e) | ServiceError::Count(e) => Some(e),
            _ => None,
        }
    }
}

/// How a request reached its terminal state.
///
/// The engine itself reports cancellation and deadline expiry identically
/// (a [`pact::CountOutcome::Timeout`] with partial statistics), because a
/// cancelled run *is* a run whose budget was externally zeroed.  The
/// service knows more: it distinguishes the caller pulling the plug from
/// the clock running out, and stamps that knowledge here so a
/// [`ServiceReport`] is unambiguous without consulting the event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Disposition {
    /// The count ran to a decisive outcome (exact, approximate, or UNSAT).
    #[default]
    Completed,
    /// The end-to-end deadline expired (queue wait included); the report
    /// carries partial statistics.
    TimedOut,
    /// The request was cancelled — by its handle or by an aborting
    /// shutdown — whether it was still queued or already running.
    Cancelled,
}

impl std::fmt::Display for Disposition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Disposition::Completed => "completed",
            Disposition::TimedOut => "timed_out",
            Disposition::Cancelled => "cancelled",
        })
    }
}

/// A completed service run: the engine's report plus the service-side
/// accounting the bench harness records (which shard served it, how long it
/// queued, how it terminated, and the placement cost it was stamped with).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// The counting engine's report, bit-identical to a direct
    /// [`pact::Session`] run under [`CountRequest::counter_config`].
    pub report: CountReport,
    /// The shard that served the request, or `None` if it never reached one
    /// (cancelled in the queue by an aborting shutdown).
    pub shard: Option<usize>,
    /// Wall-clock seconds between submission and a shard picking the
    /// request up.
    pub queue_seconds: f64,
    /// How the request terminated: a [`pact::CountOutcome::Timeout`] report
    /// with `disposition == Cancelled` was cancelled, not expired.
    pub disposition: Disposition,
    /// The size estimate placement used ([`CountRequest::cost_estimate`]).
    pub cost_estimate: u64,
}

/// What a request ultimately resolves to.
pub type ServiceResult = Result<ServiceReport, ServiceError>;

/// The caller-side end of a submitted request.
///
/// The handle is `Send` (hand it to whatever task is waiting on the count)
/// but deliberately not `Clone`: exactly one consumer owns result retrieval
/// and the event stream.  Cancellation, by contrast, is shareable — clone
/// [`RequestHandle::cancellation`] into as many places as needed.
///
/// Dropping the handle does **not** cancel the request; call
/// [`RequestHandle::cancel`] for that.
#[derive(Debug)]
pub struct RequestHandle {
    pub(crate) id: u64,
    pub(crate) token: CancellationToken,
    pub(crate) events: Receiver<crate::RequestEvent>,
    pub(crate) result_rx: Receiver<ServiceResult>,
    pub(crate) done: Option<ServiceResult>,
}

impl RequestHandle {
    /// The service-assigned request id (unique per service instance).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cancellation.  If the count is running, it stops at the
    /// next safe point and resolves to a [`pact::CountOutcome::Timeout`]
    /// report with partial statistics and
    /// [`Disposition::Cancelled`](crate::Disposition::Cancelled); if it is
    /// still queued, the serving shard observes the flag and stands down
    /// immediately.  The queued ticket is removed lazily, but it stops
    /// counting against admission capacity (and `metrics().queue_depth`)
    /// the moment this returns — dead tickets never crowd out live
    /// traffic.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// A clone of the request's cancellation token, for cancelling from
    /// other threads (the handle itself is single-owner).
    pub fn cancellation(&self) -> CancellationToken {
        self.token.clone()
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.token.is_cancelled()
    }

    /// Blocks until the request resolves and returns its result.  Further
    /// calls return the cached result.
    pub fn wait(&mut self) -> ServiceResult {
        if self.done.is_none() {
            let result = self.result_rx.recv().unwrap_or(Err(ServiceError::Lost));
            self.done = Some(result);
        }
        self.done.clone().expect("cached above")
    }

    /// Polls for the result without blocking: `None` while the request is
    /// still queued or running.
    pub fn try_result(&mut self) -> Option<ServiceResult> {
        if self.done.is_none() {
            match self.result_rx.try_recv() {
                Ok(result) => self.done = Some(result),
                Err(TryRecvError::Empty) => return None,
                Err(TryRecvError::Disconnected) => self.done = Some(Err(ServiceError::Lost)),
            }
        }
        self.done.clone()
    }

    /// Blocks until the next lifecycle event, or `None` once the stream is
    /// exhausted (the terminal event was consumed and the service dropped
    /// its sender).
    pub fn next_event(&mut self) -> Option<crate::RequestEvent> {
        self.events.recv().ok()
    }

    /// Polls for the next lifecycle event without blocking.
    pub fn try_next_event(&mut self) -> Option<crate::RequestEvent> {
        self.events.try_recv().ok()
    }

    /// Blocks until an event satisfying `pred` arrives; returns it, or
    /// `None` if the stream ended first.  Convenience for tests and
    /// orchestration code waiting for admission or a terminal event.
    pub fn wait_for_event(
        &mut self,
        mut pred: impl FnMut(&crate::RequestEvent) -> bool,
    ) -> Option<crate::RequestEvent> {
        while let Some(event) = self.next_event() {
            if pred(&event) {
                return Some(event);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_ir::Sort;

    fn toy_request() -> CountRequest {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let c = tm.mk_bv_const(3, 4);
        let f = tm.mk_bv_ult(x, c).unwrap();
        CountRequest::new(tm).assert(f).project(x)
    }

    #[test]
    fn requests_validate_like_sessions() {
        assert!(toy_request().validate().is_ok());
        assert_eq!(
            toy_request().epsilon(-1.0).validate(),
            Err(CountError::Config(pact::ConfigError::NonPositiveEpsilon {
                epsilon: -1.0
            }))
        );
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let c = tm.mk_bv_const(3, 4);
        let f = tm.mk_bv_ult(x, c).unwrap();
        let projection_free = CountRequest::new(tm).assert(f);
        assert_eq!(projection_free.validate(), Err(CountError::EmptyProjection));
    }

    #[test]
    fn counter_config_pins_single_threaded_rounds() {
        let config = toy_request()
            .backend(BackendSpec::Incremental)
            .seed(9)
            .iterations(5)
            .deadline(Duration::from_secs(1))
            .counter_config();
        assert_eq!(config.parallel.threads, 1);
        assert_eq!(config.seed, 9);
        assert_eq!(config.iterations_override, Some(5));
        assert_eq!(config.deadline, Some(Duration::from_secs(1)));
        assert!(config.oracle_factory.is_incremental());
    }

    #[test]
    fn cost_estimates_are_deterministic_and_size_sensitive() {
        let a = toy_request();
        let b = toy_request();
        // Same request, same stamp — placement input is a pure function.
        assert_eq!(a.cost_estimate(), b.cost_estimate());
        assert!(a.cost_estimate() >= 1);

        // Widening the projection raises the estimate.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let y = tm.mk_var("y", Sort::BitVec(4));
        let c = tm.mk_bv_const(3, 4);
        let f = tm.mk_bv_ult(x, c).unwrap();
        let narrow = CountRequest::new(tm.clone()).assert(f).project(x);
        let wide = CountRequest::new(tm).assert(f).project(x).project(y);
        assert!(wide.cost_estimate() > narrow.cost_estimate());
    }

    #[test]
    fn dispositions_render_their_wire_names() {
        assert_eq!(Disposition::Completed.to_string(), "completed");
        assert_eq!(Disposition::TimedOut.to_string(), "timed_out");
        assert_eq!(Disposition::Cancelled.to_string(), "cancelled");
        assert_eq!(Disposition::default(), Disposition::Completed);
    }

    #[test]
    fn priorities_order_their_lanes() {
        let lanes: Vec<usize> = Priority::ALL.iter().map(|p| p.lane()).collect();
        assert_eq!(lanes, vec![0, 1, 2]);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn service_errors_render_and_chain() {
        let e = ServiceError::QueueFull { capacity: 8 };
        assert!(e.to_string().contains('8'));
        assert!(std::error::Error::source(&e).is_none());
        let e = ServiceError::Invalid(CountError::EmptyProjection);
        assert!(e.to_string().contains("empty projection"));
        assert!(std::error::Error::source(&e).is_some());
        assert_eq!(
            ServiceError::ShuttingDown.to_string(),
            "service is shutting down"
        );
    }
}
