//! `pact-serve`: the counting service behind a wire.
//!
//! SMT-LIB 2 text in, line-delimited JSON out (see `pact_service::wire`).
//! Two transports:
//!
//! - pipe mode (default): one logical client over stdin/stdout —
//!   `pact-serve < script.smt2`
//! - `--listen ADDR`: accept TCP connections on `ADDR`
//!   (e.g. `127.0.0.1:7007`), one connection = one logical client.
//!
//! `--shards N` and `--queue N` size the underlying `CountingService`
//! exactly like `ServiceConfig`.

use std::net::TcpListener;
use std::process::ExitCode;

use pact_service::wire;
use pact_service::{CountingService, ServiceConfig};

const USAGE: &str = "usage: pact-serve [--listen ADDR] [--shards N] [--queue N]";

/// Everything `pact-serve` accepts on its command line.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Args {
    listen: Option<String>,
    shards: usize,
    queue: usize,
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
    let mut parsed = Args {
        listen: None,
        shards: 0,
        queue: 64,
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| iter.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--listen" => parsed.listen = Some(value("--listen")?),
            "--shards" => {
                let v = value("--shards")?;
                parsed.shards = v
                    .parse()
                    .map_err(|_| format!("invalid --shards value {v:?}"))?;
            }
            "--queue" => {
                let v = value("--queue")?;
                parsed.queue = v
                    .parse()
                    .map_err(|_| format!("invalid --queue value {v:?}"))?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(parsed)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("pact-serve: {message}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let service = CountingService::new(ServiceConfig {
        shards: args.shards,
        queue_capacity: args.queue,
    });
    let result = match &args.listen {
        Some(addr) => match TcpListener::bind(addr) {
            Ok(listener) => {
                // The resolved address matters when the caller bound port 0.
                match listener.local_addr() {
                    Ok(local) => eprintln!("pact-serve: listening on {local}"),
                    Err(_) => eprintln!("pact-serve: listening on {addr}"),
                }
                wire::serve_listener(&service, &listener)
            }
            Err(e) => {
                eprintln!("pact-serve: cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => wire::serve_connection(&service, std::io::stdin(), std::io::stdout().lock()),
    };
    service.shutdown();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pact-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_pipe_mode_with_service_defaults() {
        let args = parse(&[]).unwrap();
        assert_eq!(args.listen, None);
        assert_eq!(args.shards, 0);
        assert_eq!(args.queue, 64);
    }

    #[test]
    fn flags_parse_and_bad_input_names_the_flag() {
        let args = parse(&["--listen", "127.0.0.1:0", "--shards", "2", "--queue", "8"]).unwrap();
        assert_eq!(args.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(args.shards, 2);
        assert_eq!(args.queue, 8);
        assert!(parse(&["--shards"]).unwrap_err().contains("--shards"));
        assert!(parse(&["--queue", "many"]).unwrap_err().contains("many"));
        assert!(parse(&["--frob"]).unwrap_err().contains("--frob"));
    }
}
