//! Bounded, priority-laned admission queue shared by the shard threads.
//!
//! `std::sync::mpsc` has no multi-consumer receiver, so the queue is a
//! `Mutex` around three FIFO lanes (one per [`Priority`]) plus a `Condvar`
//! shards park on.  Admission control lives entirely in [`AdmissionQueue::
//! push`]: when the combined depth hits capacity the ticket is handed back
//! to the caller with a typed rejection, so the service can surface
//! [`ServiceError::QueueFull`](crate::ServiceError::QueueFull) without ever
//! blocking the submitter.
//!
//! Shutdown comes in two flavours the service maps onto queue operations:
//! *drain* ([`AdmissionQueue::close`]: no new tickets, shards finish what is
//! queued, `pop` returns `None` once empty) and *abort*
//! ([`AdmissionQueue::clear`]: close, hand every pending ticket back for
//! cancellation, and raise a flag shards check before serving anything they
//! already popped).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use pact::CancellationToken;

use crate::request::{CountRequest, Priority, ServiceResult};
use crate::RequestEvent;

/// An admitted request in flight through the service: the request itself
/// plus the channels and token that tie it back to its [`RequestHandle`]
/// (crate::RequestHandle).
#[derive(Debug)]
pub(crate) struct Ticket {
    /// Mirrors the handle's id; read by the queue-ordering tests (the
    /// shards identify requests by their channels, not by id).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) id: u64,
    pub(crate) request: CountRequest,
    pub(crate) token: CancellationToken,
    pub(crate) events: Sender<RequestEvent>,
    pub(crate) result: Sender<ServiceResult>,
    pub(crate) submitted: Instant,
}

/// Why a ticket was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitError {
    /// The queue is at capacity.
    Full,
    /// The queue was closed by shutdown.
    Closed,
}

#[derive(Debug)]
struct LaneState {
    lanes: [VecDeque<Ticket>; 3],
    open: bool,
}

impl LaneState {
    fn depth(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    fn pop_highest(&mut self) -> Option<Ticket> {
        self.lanes.iter_mut().find_map(VecDeque::pop_front)
    }
}

#[derive(Debug)]
pub(crate) struct AdmissionQueue {
    state: Mutex<LaneState>,
    ready: Condvar,
    capacity: usize,
    abort: AtomicBool,
}

impl AdmissionQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        AdmissionQueue {
            state: Mutex::new(LaneState {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                open: true,
            }),
            ready: Condvar::new(),
            capacity,
            abort: AtomicBool::new(false),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current combined depth across all lanes.
    pub(crate) fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").depth()
    }

    /// Whether an aborting shutdown is in progress; shards check this
    /// between popping a ticket and serving it, closing the race where a
    /// ticket leaves the queue just as `clear` runs.
    pub(crate) fn aborting(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    /// Admits a ticket into its priority lane, or hands it back with the
    /// reason it was refused.  Never blocks.
    // The Err variant deliberately returns the whole ticket so a rejected
    // submission loses nothing; the move is one-time, on a cold path.
    #[allow(clippy::result_large_err)]
    pub(crate) fn push(
        &self,
        ticket: Ticket,
        priority: Priority,
    ) -> Result<usize, (AdmitError, Ticket)> {
        let mut state = self.state.lock().expect("queue poisoned");
        if !state.open {
            return Err((AdmitError::Closed, ticket));
        }
        if state.depth() >= self.capacity {
            return Err((AdmitError::Full, ticket));
        }
        state.lanes[priority.lane()].push_back(ticket);
        let depth = state.depth();
        drop(state);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks until a ticket is available (highest lane first, FIFO within
    /// a lane) or the queue is closed and drained — `None` tells the shard
    /// to exit its loop.
    pub(crate) fn pop(&self) -> Option<Ticket> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(ticket) = state.pop_highest() {
                return Some(ticket);
            }
            if !state.open {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue for new admissions; already-queued tickets are
    /// still served (draining shutdown).
    pub(crate) fn close(&self) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.open = false;
        drop(state);
        self.ready.notify_all();
    }

    /// Aborting shutdown: closes the queue, raises the abort flag, and
    /// hands back every pending ticket so the service can resolve each as
    /// cancelled.
    pub(crate) fn clear(&self) -> Vec<Ticket> {
        self.abort.store(true, Ordering::Release);
        let mut state = self.state.lock().expect("queue poisoned");
        state.open = false;
        let pending = state
            .lanes
            .iter_mut()
            .flat_map(std::mem::take)
            .collect::<Vec<_>>();
        drop(state);
        self.ready.notify_all();
        pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_ir::{Sort, TermManager};
    use std::sync::mpsc::channel;

    fn ticket(id: u64) -> Ticket {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(3));
        let request = CountRequest::new(tm).project(x);
        // The queue tests never send on these channels, so the receivers
        // can be dropped immediately.
        let (events, _) = channel();
        let (result, _) = channel();
        Ticket {
            id,
            request,
            token: CancellationToken::new(),
            events,
            result,
            submitted: Instant::now(),
        }
    }

    #[test]
    fn rejects_when_full_and_hands_ticket_back() {
        let q = AdmissionQueue::new(2);
        assert!(q.push(ticket(1), Priority::Normal).is_ok());
        assert!(q.push(ticket(2), Priority::Normal).is_ok());
        let (err, rejected) = q.push(ticket(3), Priority::Normal).unwrap_err();
        assert_eq!(err, AdmitError::Full);
        assert_eq!(rejected.id, 3);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn pops_fifo_within_priority_highest_lane_first() {
        let q = AdmissionQueue::new(8);
        q.push(ticket(1), Priority::Batch).unwrap();
        q.push(ticket(2), Priority::Normal).unwrap();
        q.push(ticket(3), Priority::Normal).unwrap();
        q.push(ticket(4), Priority::Urgent).unwrap();
        let order: Vec<u64> = (0..4).map(|_| q.pop().unwrap().id).collect();
        assert_eq!(order, vec![4, 2, 3, 1]);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = AdmissionQueue::new(8);
        q.push(ticket(1), Priority::Normal).unwrap();
        q.close();
        let (err, _) = q.push(ticket(2), Priority::Normal).unwrap_err();
        assert_eq!(err, AdmitError::Closed);
        assert_eq!(q.pop().unwrap().id, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn clear_returns_pending_and_flags_abort() {
        let q = AdmissionQueue::new(8);
        q.push(ticket(1), Priority::Normal).unwrap();
        q.push(ticket(2), Priority::Urgent).unwrap();
        assert!(!q.aborting());
        let pending = q.clear();
        assert!(q.aborting());
        let ids: Vec<u64> = pending.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![2, 1]);
        assert!(q.pop().is_none());
    }
}
