//! Size-aware, priority-laned placement queue shared by the shard threads.
//!
//! `std::sync::mpsc` has no multi-consumer receiver, so the queue is a
//! `Mutex` around per-shard lane sets plus a `Condvar` shards park on.
//! Admission control lives entirely in [`AdmissionQueue::push`]: when the
//! combined *live* depth (cancelled-while-queued tickets are excluded) hits
//! capacity the ticket is handed back to the caller with a typed rejection,
//! so the service can surface
//! [`ServiceError::QueueFull`](crate::ServiceError::QueueFull) without ever
//! blocking the submitter.
//!
//! # Placement and stealing
//!
//! Each shard owns three FIFO lanes (one per [`Priority`]) plus two cost
//! accumulators: the estimated cost of its queued tickets and of the ticket
//! it is currently serving.  `push` places a ticket on the shard with the
//! least estimated outstanding cost (queued + running, lowest index wins
//! ties, so placement is deterministic given the same submission sequence
//! and completion state).  A shard whose own lanes run dry *steals* the
//! next ticket from the most-loaded other shard — front of the victim's
//! highest-priority non-empty lane, so FIFO-within-priority is preserved —
//! which keeps cold shards busy when the cost estimates misjudge actual
//! runtimes.  Placement never affects a request's own pipeline (the serving
//! shard only determines *where* the single-threaded session runs), so
//! bit-identity with direct sessions is untouched.
//!
//! Shutdown comes in two flavours the service maps onto queue operations:
//! *drain* ([`AdmissionQueue::close`]: no new tickets, shards finish what is
//! queued, `pop` returns `None` once empty) and *abort*
//! ([`AdmissionQueue::clear`]: close, hand every pending ticket back for
//! cancellation, and raise a flag shards check before serving anything they
//! already popped).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use pact::CancellationToken;

use crate::request::{CountRequest, Priority, ServiceResult};
use crate::RequestEvent;

/// An admitted request in flight through the service: the request itself
/// plus the channels and token that tie it back to its [`RequestHandle`]
/// (crate::RequestHandle).
#[derive(Debug)]
pub(crate) struct Ticket {
    /// Mirrors the handle's id; read by the queue-ordering tests (the
    /// shards identify requests by their channels, not by id).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) id: u64,
    pub(crate) request: CountRequest,
    pub(crate) token: CancellationToken,
    pub(crate) events: Sender<RequestEvent>,
    pub(crate) result: Sender<ServiceResult>,
    pub(crate) submitted: Instant,
    /// Deterministic size estimate stamped at submission
    /// ([`CountRequest::cost_estimate`]); drives placement and the
    /// outstanding-cost metrics.
    pub(crate) cost: u64,
}

/// Why a ticket was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitError {
    /// The queue is at capacity.
    Full,
    /// The queue was closed by shutdown.
    Closed,
}

/// One shard's view of the queue: its three priority lanes plus the cost
/// accounting placement runs on.
#[derive(Debug, Default)]
struct ShardLanes {
    lanes: [VecDeque<Ticket>; 3],
    /// Estimated cost of the tickets queued on this shard.
    queued_cost: u64,
    /// Estimated cost of the ticket the shard is currently serving (zero
    /// between tickets).
    running_cost: u64,
    /// Tickets this shard pulled from another shard's lanes.
    steals: u64,
}

impl ShardLanes {
    /// Cost the shard is expected to work through before going idle.
    fn outstanding(&self) -> u64 {
        self.queued_cost + self.running_cost
    }

    /// Queued tickets whose handle has not already cancelled them.
    /// Cancelled tickets stay in the lanes until popped (lazy removal) but
    /// must not count against admission capacity or `queue_depth`.
    fn live_depth(&self) -> usize {
        self.lanes
            .iter()
            .flatten()
            .filter(|t| !t.token.is_cancelled())
            .count()
    }

    fn has_queued(&self) -> bool {
        self.lanes.iter().any(|l| !l.is_empty())
    }

    fn pop_highest(&mut self) -> Option<Ticket> {
        let ticket = self.lanes.iter_mut().find_map(VecDeque::pop_front)?;
        self.queued_cost = self.queued_cost.saturating_sub(ticket.cost);
        Some(ticket)
    }
}

#[derive(Debug)]
struct QueueState {
    shards: Vec<ShardLanes>,
    open: bool,
}

impl QueueState {
    fn live_depth(&self) -> usize {
        self.shards.iter().map(ShardLanes::live_depth).sum()
    }
}

#[derive(Debug)]
pub(crate) struct AdmissionQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
    abort: AtomicBool,
}

impl AdmissionQueue {
    pub(crate) fn new(capacity: usize, shard_count: usize) -> Self {
        let shards = (0..shard_count.max(1))
            .map(|_| ShardLanes::default())
            .collect();
        AdmissionQueue {
            state: Mutex::new(QueueState { shards, open: true }),
            ready: Condvar::new(),
            capacity,
            abort: AtomicBool::new(false),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current combined depth of *live* queued tickets across all shards;
    /// cancelled-while-queued tickets awaiting lazy removal are excluded.
    pub(crate) fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").live_depth()
    }

    /// Per-shard estimated outstanding cost (queued + currently running).
    pub(crate) fn outstanding_cost(&self) -> Vec<u64> {
        let state = self.state.lock().expect("queue poisoned");
        state.shards.iter().map(ShardLanes::outstanding).collect()
    }

    /// Per-shard count of tickets stolen *by* that shard.
    pub(crate) fn steals(&self) -> Vec<u64> {
        let state = self.state.lock().expect("queue poisoned");
        state.shards.iter().map(|s| s.steals).collect()
    }

    /// Whether an aborting shutdown is in progress; shards check this
    /// between popping a ticket and serving it, closing the race where a
    /// ticket leaves the queue just as `clear` runs.
    pub(crate) fn aborting(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    /// Admits a ticket into its priority lane on the least-loaded shard
    /// (by estimated outstanding cost), or hands it back with the reason it
    /// was refused.  Never blocks.  Returns the shard the ticket was placed
    /// on — a *preference*, not a promise: a different shard may steal it.
    // The Err variant deliberately returns the whole ticket so a rejected
    // submission loses nothing; the move is one-time, on a cold path.
    #[allow(clippy::result_large_err)]
    pub(crate) fn push(
        &self,
        ticket: Ticket,
        priority: Priority,
    ) -> Result<usize, (AdmitError, Ticket)> {
        let mut state = self.state.lock().expect("queue poisoned");
        if !state.open {
            return Err((AdmitError::Closed, ticket));
        }
        if state.live_depth() >= self.capacity {
            return Err((AdmitError::Full, ticket));
        }
        // Least estimated outstanding cost wins; ties break to the lowest
        // index, so placement is deterministic for a given queue state.
        let shard = state
            .shards
            .iter()
            .enumerate()
            .min_by_key(|(index, lanes)| (lanes.outstanding(), *index))
            .map(|(index, _)| index)
            .expect("queue has at least one shard");
        state.shards[shard].queued_cost += ticket.cost;
        state.shards[shard].lanes[priority.lane()].push_back(ticket);
        drop(state);
        // Any parked shard may now have work to serve or to steal.
        self.ready.notify_all();
        Ok(shard)
    }

    /// Blocks until a ticket is available for `shard` — its own lanes
    /// first (highest lane first, FIFO within a lane), then a steal from
    /// the most-loaded other shard — or the queue is closed and fully
    /// drained; `None` tells the shard to exit its loop.
    ///
    /// The popped ticket's cost moves to the shard's `running_cost` until
    /// [`AdmissionQueue::finished`] releases it.
    pub(crate) fn pop(&self, shard: usize) -> Option<Ticket> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(ticket) = state.shards[shard].pop_highest() {
                state.shards[shard].running_cost += ticket.cost;
                return Some(ticket);
            }
            // Own lanes dry: steal from the shard with the most queued
            // cost.  Front of the victim's highest-priority lane, so the
            // global priority order and FIFO-within-priority survive the
            // move.
            let victim = state
                .shards
                .iter()
                .enumerate()
                .filter(|(index, lanes)| *index != shard && lanes.has_queued())
                .max_by_key(|(index, lanes)| (lanes.queued_cost, usize::MAX - *index))
                .map(|(index, _)| index);
            if let Some(victim) = victim {
                let ticket = state.shards[victim]
                    .pop_highest()
                    .expect("victim had queued tickets");
                state.shards[shard].running_cost += ticket.cost;
                state.shards[shard].steals += 1;
                return Some(ticket);
            }
            if !state.open {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Releases the running-cost charge taken by [`AdmissionQueue::pop`]
    /// once the shard has resolved the ticket.
    pub(crate) fn finished(&self, shard: usize, cost: u64) {
        let mut state = self.state.lock().expect("queue poisoned");
        let lanes = &mut state.shards[shard];
        lanes.running_cost = lanes.running_cost.saturating_sub(cost);
    }

    /// Closes the queue for new admissions; already-queued tickets are
    /// still served (draining shutdown).
    pub(crate) fn close(&self) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.open = false;
        drop(state);
        self.ready.notify_all();
    }

    /// Aborting shutdown: closes the queue, raises the abort flag, and
    /// hands back every pending ticket so the service can resolve each as
    /// cancelled.  Tickets come back in priority order (lane by lane across
    /// shards), matching the order shards would have served them.
    pub(crate) fn clear(&self) -> Vec<Ticket> {
        self.abort.store(true, Ordering::Release);
        let mut state = self.state.lock().expect("queue poisoned");
        state.open = false;
        let mut pending = Vec::new();
        for lane in 0..3 {
            for shard in state.shards.iter_mut() {
                shard.queued_cost = 0;
                pending.extend(std::mem::take(&mut shard.lanes[lane]));
            }
        }
        drop(state);
        self.ready.notify_all();
        pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_ir::{Sort, TermManager};
    use std::sync::mpsc::channel;

    fn ticket(id: u64) -> Ticket {
        ticket_with_cost(id, 1)
    }

    fn ticket_with_cost(id: u64, cost: u64) -> Ticket {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(3));
        let request = CountRequest::new(tm).project(x);
        // The queue tests never send on these channels, so the receivers
        // can be dropped immediately.
        let (events, _) = channel();
        let (result, _) = channel();
        Ticket {
            id,
            request,
            token: CancellationToken::new(),
            events,
            result,
            submitted: Instant::now(),
            cost,
        }
    }

    #[test]
    fn rejects_when_full_and_hands_ticket_back() {
        let q = AdmissionQueue::new(2, 1);
        assert!(q.push(ticket(1), Priority::Normal).is_ok());
        assert!(q.push(ticket(2), Priority::Normal).is_ok());
        let (err, rejected) = q.push(ticket(3), Priority::Normal).unwrap_err();
        assert_eq!(err, AdmitError::Full);
        assert_eq!(rejected.id, 3);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn cancelled_tickets_do_not_hold_capacity() {
        let q = AdmissionQueue::new(2, 1);
        let dead = ticket(1);
        let dead_token = dead.token.clone();
        q.push(dead, Priority::Normal).unwrap();
        q.push(ticket(2), Priority::Normal).unwrap();
        let (err, _) = q.push(ticket(3), Priority::Normal).unwrap_err();
        assert_eq!(err, AdmitError::Full);
        // Cancelling the queued ticket frees its admission slot (and the
        // reported depth) even though the ticket is only lazily removed.
        dead_token.cancel();
        assert_eq!(q.depth(), 1);
        assert!(q.push(ticket(4), Priority::Normal).is_ok());
    }

    #[test]
    fn pops_fifo_within_priority_highest_lane_first() {
        let q = AdmissionQueue::new(8, 1);
        q.push(ticket(1), Priority::Batch).unwrap();
        q.push(ticket(2), Priority::Normal).unwrap();
        q.push(ticket(3), Priority::Normal).unwrap();
        q.push(ticket(4), Priority::Urgent).unwrap();
        let order: Vec<u64> = (0..4).map(|_| q.pop(0).unwrap().id).collect();
        assert_eq!(order, vec![4, 2, 3, 1]);
    }

    #[test]
    fn placement_prefers_the_least_loaded_shard() {
        let q = AdmissionQueue::new(8, 2);
        // Ties break to the lowest index, then cost accumulates.
        assert_eq!(
            q.push(ticket_with_cost(1, 100), Priority::Normal).unwrap(),
            0
        );
        assert_eq!(
            q.push(ticket_with_cost(2, 10), Priority::Normal).unwrap(),
            1
        );
        assert_eq!(
            q.push(ticket_with_cost(3, 10), Priority::Normal).unwrap(),
            1
        );
        assert_eq!(
            q.push(ticket_with_cost(4, 10), Priority::Normal).unwrap(),
            1
        );
        assert_eq!(q.outstanding_cost(), vec![100, 30]);
    }

    #[test]
    fn running_cost_counts_until_finished() {
        let q = AdmissionQueue::new(8, 2);
        q.push(ticket_with_cost(1, 50), Priority::Normal).unwrap();
        let t = q.pop(0).unwrap();
        assert_eq!(t.id, 1);
        // While shard 0 serves the ticket its cost still repels placement.
        assert_eq!(q.outstanding_cost(), vec![50, 0]);
        assert_eq!(
            q.push(ticket_with_cost(2, 10), Priority::Normal).unwrap(),
            1
        );
        q.finished(0, t.cost);
        assert_eq!(q.outstanding_cost(), vec![0, 10]);
    }

    #[test]
    fn a_dry_shard_steals_from_the_most_loaded() {
        let q = AdmissionQueue::new(8, 2);
        assert_eq!(
            q.push(ticket_with_cost(1, 10), Priority::Normal).unwrap(),
            0
        );
        assert_eq!(
            q.push(ticket_with_cost(2, 10), Priority::Normal).unwrap(),
            1
        );
        assert_eq!(
            q.push(ticket_with_cost(3, 10), Priority::Urgent).unwrap(),
            0
        );
        // Shard 1 drains its own lane, then steals shard 0's next ticket —
        // the urgent one, preserving global priority order.
        assert_eq!(q.pop(1).unwrap().id, 2);
        assert_eq!(q.pop(1).unwrap().id, 3);
        assert_eq!(q.steals(), vec![0, 1]);
        assert_eq!(q.pop(0).unwrap().id, 1);
        assert_eq!(q.steals(), vec![0, 1]);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = AdmissionQueue::new(8, 1);
        q.push(ticket(1), Priority::Normal).unwrap();
        q.close();
        let (err, _) = q.push(ticket(2), Priority::Normal).unwrap_err();
        assert_eq!(err, AdmitError::Closed);
        assert_eq!(q.pop(0).unwrap().id, 1);
        assert!(q.pop(0).is_none());
    }

    #[test]
    fn clear_returns_pending_and_flags_abort() {
        let q = AdmissionQueue::new(8, 1);
        q.push(ticket(1), Priority::Normal).unwrap();
        q.push(ticket(2), Priority::Urgent).unwrap();
        assert!(!q.aborting());
        let pending = q.clear();
        assert!(q.aborting());
        let ids: Vec<u64> = pending.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![2, 1]);
        assert!(q.pop(0).is_none());
    }
}
