//! Counting as a service: a long-lived batch server over `pact` sessions.
//!
//! The ROADMAP's north star is a system serving heavy concurrent counting
//! traffic, and `pact`'s `Session` + `Progress` + `CancellationToken` is
//! the natural seam to front with a service.  This crate provides that
//! front-end as a library: a [`CountingService`] owning a set of persistent
//! *shard* threads (one single-threaded `Session` pipeline each), a bounded
//! priority-laned admission queue, and per-request handles with streamed
//! lifecycle events.
//!
//! The design follows the factory/shared-context split: the service is the
//! immutable compiled artifact (threads, queue, configuration), and each
//! [`CountRequest`] is a self-contained problem that flows through it.
//! Key contracts, all pinned by tests:
//!
//! - **Admission control**: the queue is bounded; a full queue rejects
//!   immediately with [`ServiceError::QueueFull`] instead of blocking or
//!   buffering unboundedly.
//! - **Deadlines**: a per-request deadline is end-to-end from submission
//!   (queue wait counts); expiry maps onto the engine's own
//!   `Timeout`-with-partial-statistics semantics.
//! - **Cancellation**: every request carries its own
//!   [`pact::CancellationToken`]; cancelling resolves the request as a
//!   `Timeout`-style partial report, never an error.
//! - **Determinism**: a service answer is bit-identical to a direct
//!   [`pact::Session`] run under [`CountRequest::counter_config`] — the
//!   service adds scheduling, not noise.
//! - **Shutdown**: [`CountingService::shutdown`] drains,
//!   [`CountingService::abort`] cancels; both join every shard thread, and
//!   dropping the service behaves like `abort`.
//!
//! ```
//! use pact_ir::{TermManager, Sort};
//! use pact_service::{CountRequest, CountingService, ServiceConfig};
//!
//! let service = CountingService::new(ServiceConfig::default());
//! let mut tm = TermManager::new();
//! let x = tm.mk_var("x", Sort::BitVec(8));
//! let c = tm.mk_bv_const(200, 8);
//! let f = tm.mk_bv_ult(x, c).unwrap();
//! let mut handle = service
//!     .submit(CountRequest::new(tm).assert(f).project(x).epsilon(0.8))
//!     .unwrap();
//! let outcome = handle.wait().unwrap().report.outcome;
//! assert!(outcome.value().is_some());
//! service.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod queue;
mod request;
mod service;
mod shard;
pub mod wire;

pub use event::RequestEvent;
pub use request::{
    CountRequest, Disposition, Priority, RequestHandle, ServiceError, ServiceReport, ServiceResult,
};
pub use service::{CountingService, ServiceConfig, ServiceMetrics};

// The whole point of the service is crossing thread boundaries; pin the
// auto-traits at compile time so a field change cannot silently break them.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<CountRequest>();
    assert_send::<RequestHandle>();
    assert_send::<RequestEvent>();
    assert_send::<ServiceReport>();
    assert_send_sync::<CountingService>();
    assert_send_sync::<ServiceError>();
};
