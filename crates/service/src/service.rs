//! The long-lived [`CountingService`]: shard threads, admission, shutdown.
//!
//! The service owns a shared [`AdmissionQueue`](crate::queue::AdmissionQueue)
//! and a fixed set of shard threads parked on it.  [`CountingService::submit`]
//! is the only entry point: it validates the request, stamps it with an id
//! and a submission instant, and either admits it (returning a
//! [`RequestHandle`]) or rejects it with a typed error — never blocking the
//! caller.
//!
//! Shutdown comes in two flavours, both of which join every shard thread
//! before returning (the zero-leaked-threads invariant the contract tests
//! probe): [`CountingService::shutdown`] drains the queue first, while
//! [`CountingService::abort`] resolves queued requests as cancelled and
//! interrupts whatever each shard is currently counting.  Dropping the
//! service without calling either behaves like `abort`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use pact::CancellationToken;

use crate::queue::{AdmissionQueue, AdmitError, Ticket};
use crate::request::{CountRequest, Disposition, RequestHandle, ServiceError, ServiceReport};
use crate::shard::{self, ShardState};
use crate::RequestEvent;

/// Sizing of a [`CountingService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of shard threads; `0` picks `min(available cores, 4)`, the
    /// same adaptive cap the bench harness uses for oracle workers.
    pub shards: usize,
    /// Admission-queue capacity: requests beyond this many *waiting* (not
    /// running) are rejected with
    /// [`ServiceError::QueueFull`](crate::ServiceError::QueueFull).
    pub queue_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 0,
            queue_capacity: 64,
        }
    }
}

impl ServiceConfig {
    fn resolved_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(4)
        }
    }
}

/// A point-in-time snapshot of the service's counters.
///
/// Every admitted request eventually lands in exactly one terminal bucket:
/// a `served_per_shard` slot (truly finished with a decisive count),
/// `cancelled`, `timed_out` or `failed`.  Counters are bumped at terminal
/// resolution — never at admission — so a request cancelled or expired
/// mid-flight can never inflate "served".
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServiceMetrics {
    /// Requests admitted since startup.
    pub submitted: u64,
    /// Requests rejected by admission control (queue full).
    pub rejected: u64,
    /// Requests that truly finished (decisive count delivered), per shard
    /// (index = shard id).
    pub served_per_shard: Vec<u64>,
    /// Requests resolved as cancelled — by their handle, or by an aborting
    /// shutdown (whether queued or in flight).
    pub cancelled: u64,
    /// Requests whose end-to-end deadline expired (queue wait included).
    pub timed_out: u64,
    /// Requests that resolved with a counting error.
    pub failed: u64,
    /// Live requests currently waiting in the admission queue
    /// (cancelled-while-queued tickets awaiting lazy removal are excluded —
    /// they no longer hold capacity either).
    pub queue_depth: usize,
    /// Estimated outstanding cost per shard (index = shard id): the
    /// [`CountRequest::cost_estimate`] sum of the tickets queued on the
    /// shard plus the one it is currently serving.  This is the quantity
    /// placement minimises.
    pub outstanding_cost_per_shard: Vec<u64>,
    /// Tickets each shard stole from another shard's lanes (index = the
    /// *thief*).  Non-zero steals mean the cost estimates misjudged the
    /// actual runtimes and work-stealing rebalanced the difference.
    pub steals_per_shard: Vec<u64>,
}

/// A long-lived counting server: persistent shard threads serving
/// [`CountRequest`]s with admission control, priorities, deadlines and
/// per-request cancellation.
///
/// ```
/// use pact_ir::{TermManager, Sort};
/// use pact_service::{CountingService, CountRequest, ServiceConfig};
///
/// let service = CountingService::new(ServiceConfig {
///     shards: 2,
///     queue_capacity: 16,
/// });
/// let mut tm = TermManager::new();
/// let x = tm.mk_var("x", Sort::BitVec(6));
/// let c = tm.mk_bv_const(12, 6);
/// let f = tm.mk_bv_ult(x, c).unwrap();
/// let mut handle = service
///     .submit(CountRequest::new(tm).assert(f).project(x))
///     .unwrap();
/// let report = handle.wait().unwrap();
/// assert_eq!(
///     report.report.outcome,
///     pact::CountOutcome::Exact(12)
/// );
/// service.shutdown();
/// ```
#[derive(Debug)]
pub struct CountingService {
    queue: Arc<AdmissionQueue>,
    shards: Vec<Arc<ShardState>>,
    threads: Vec<JoinHandle<()>>,
    live: Arc<AtomicUsize>,
    next_id: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    /// Queued requests an aborting shutdown resolved as cancelled before
    /// any shard saw them (the per-shard states count in-flight ones).
    cancelled_in_queue: AtomicU64,
}

impl CountingService {
    /// Starts the service: spawns the shard threads and opens the queue.
    ///
    /// # Panics
    ///
    /// Panics if the operating system refuses to spawn a shard thread.
    pub fn new(config: ServiceConfig) -> Self {
        let shard_count = config.resolved_shards();
        let queue = Arc::new(AdmissionQueue::new(
            config.queue_capacity.max(1),
            shard_count,
        ));
        let live = Arc::new(AtomicUsize::new(0));
        let mut shards = Vec::with_capacity(shard_count);
        let mut threads = Vec::with_capacity(shard_count);
        for index in 0..shard_count {
            let state = Arc::new(ShardState::default());
            shards.push(Arc::clone(&state));
            let queue = Arc::clone(&queue);
            let live_for_shard = Arc::clone(&live);
            live.fetch_add(1, Ordering::Release);
            let handle = std::thread::Builder::new()
                .name(format!("pact-service-shard-{index}"))
                .spawn(move || shard::run(index, queue, state, live_for_shard))
                .expect("failed to spawn service shard thread");
            threads.push(handle);
        }
        CountingService {
            queue,
            shards,
            threads,
            live,
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            cancelled_in_queue: AtomicU64::new(0),
        }
    }

    /// Number of shard threads the service was started with.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard threads currently alive — the probe behind the
    /// zero-leaked-threads contract: after [`CountingService::shutdown`] or
    /// [`CountingService::abort`] this is `0`.
    pub fn live_shard_threads(&self) -> usize {
        self.live.load(Ordering::Acquire)
    }

    /// A snapshot of the service counters.
    pub fn metrics(&self) -> ServiceMetrics {
        ServiceMetrics {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            served_per_shard: self
                .shards
                .iter()
                .map(|s| s.served.load(Ordering::Relaxed))
                .collect(),
            cancelled: self.cancelled_in_queue.load(Ordering::Relaxed)
                + self
                    .shards
                    .iter()
                    .map(|s| s.cancelled.load(Ordering::Relaxed))
                    .sum::<u64>(),
            timed_out: self
                .shards
                .iter()
                .map(|s| s.timed_out.load(Ordering::Relaxed))
                .sum(),
            failed: self
                .shards
                .iter()
                .map(|s| s.failed.load(Ordering::Relaxed))
                .sum(),
            queue_depth: self.queue.depth(),
            outstanding_cost_per_shard: self.queue.outstanding_cost(),
            steals_per_shard: self.queue.steals(),
        }
    }

    /// Validates and admits a request, returning its handle — or a typed
    /// rejection.  Never blocks: admission control answers immediately.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Invalid`] when the request fails validation (bad
    /// `(ε, δ)`, empty projection), [`ServiceError::QueueFull`] when the
    /// bounded queue is at capacity, [`ServiceError::ShuttingDown`] after
    /// shutdown began.  In every error case nothing was enqueued.
    pub fn submit(&self, request: CountRequest) -> Result<RequestHandle, ServiceError> {
        request.validate().map_err(ServiceError::Invalid)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let priority = request.priority;
        let token = CancellationToken::new();
        let (event_tx, event_rx) = channel();
        let (result_tx, result_rx) = channel();
        // `Queued` is emitted before admission so the stream is never empty
        // for an accepted request; on rejection the receiver is dropped
        // with the handle never built, discarding the event.
        let _ = event_tx.send(RequestEvent::Queued);
        let cost = request.cost_estimate();
        let ticket = Ticket {
            id,
            request,
            token: token.clone(),
            events: event_tx,
            result: result_tx,
            submitted: Instant::now(),
            cost,
        };
        match self.queue.push(ticket, priority) {
            Ok(_depth) => {
                self.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(RequestHandle {
                    id,
                    token,
                    events: event_rx,
                    result_rx,
                    done: None,
                })
            }
            Err((AdmitError::Full, _ticket)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::QueueFull {
                    capacity: self.queue.capacity(),
                })
            }
            Err((AdmitError::Closed, _ticket)) => Err(ServiceError::ShuttingDown),
        }
    }

    /// Graceful shutdown: stops accepting requests, lets the shards finish
    /// everything already queued, then joins every shard thread.
    pub fn shutdown(mut self) {
        self.stop(false);
    }

    /// Aborting shutdown: stops accepting requests, resolves every queued
    /// request as cancelled, interrupts the counts currently running, then
    /// joins every shard thread.  In-flight requests resolve with
    /// [`pact::CountOutcome::Timeout`] partial reports.
    pub fn abort(mut self) {
        self.stop(true);
    }

    fn stop(&mut self, abort: bool) {
        if abort {
            for ticket in self.queue.clear() {
                self.cancelled_in_queue.fetch_add(1, Ordering::Relaxed);
                cancel_pending(ticket);
            }
            for state in &self.shards {
                if let Some(token) = &*state.current.lock().expect("shard state poisoned") {
                    token.cancel();
                }
            }
        } else {
            self.queue.close();
        }
        for handle in std::mem::take(&mut self.threads) {
            // A shard that panicked already resolved nothing further; the
            // service still owes the caller a completed join.
            let _ = handle.join();
        }
    }
}

/// Resolves a never-served ticket as cancelled (aborting shutdown drained
/// it out of the queue).
fn cancel_pending(ticket: Ticket) {
    ticket.token.cancel();
    let _ = ticket.events.send(RequestEvent::Cancelled);
    let _ = ticket.result.send(Ok(ServiceReport {
        report: shard::cancelled_report(),
        shard: None,
        queue_seconds: ticket.submitted.elapsed().as_secs_f64(),
        disposition: Disposition::Cancelled,
        cost_estimate: ticket.cost,
    }));
}

impl Drop for CountingService {
    /// Dropping without an explicit shutdown behaves like
    /// [`CountingService::abort`]: no thread outlives the service.
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.stop(true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact::CountOutcome;
    use pact_ir::{Sort, TermManager};

    fn small_request(width: u32, bound: u128) -> CountRequest {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(width));
        let c = tm.mk_bv_const(bound, width);
        let f = tm.mk_bv_ult(x, c).unwrap();
        CountRequest::new(tm).assert(f).project(x).seed(11)
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let service = CountingService::new(ServiceConfig {
            shards: 1,
            queue_capacity: 4,
        });
        let mut handle = service.submit(small_request(6, 12)).unwrap();
        let report = handle.wait().unwrap();
        assert_eq!(report.report.outcome, CountOutcome::Exact(12));
        assert_eq!(report.shard, Some(0));
        assert!(report.queue_seconds >= 0.0);
        assert_eq!(report.disposition, Disposition::Completed);
        assert!(report.cost_estimate >= 1);
        // The event stream saw the full lifecycle in order.
        assert_eq!(handle.next_event(), Some(RequestEvent::Queued));
        assert_eq!(
            handle.next_event(),
            Some(RequestEvent::Admitted { shard: 0 })
        );
        let mut saw_terminal = false;
        while let Some(event) = handle.next_event() {
            if saw_terminal {
                panic!("event after terminal: {event:?}");
            }
            saw_terminal = event.is_terminal();
        }
        assert!(saw_terminal);
        let metrics = service.metrics();
        assert_eq!(metrics.submitted, 1);
        assert_eq!(metrics.rejected, 0);
        // Terminal-resolution accounting: the finished request is served,
        // and nothing leaked into the failure buckets.
        assert_eq!(metrics.served_per_shard.iter().sum::<u64>(), 1);
        assert_eq!(metrics.cancelled, 0);
        assert_eq!(metrics.timed_out, 0);
        assert_eq!(metrics.failed, 0);
        service.shutdown();
    }

    #[test]
    fn shards_serve_concurrent_requests_over_one_shared_snapshot() {
        // One interned store, snapshotted once; every request opens its own
        // manager over the shared id table (an `Arc` share, not a deep
        // clone).  All shards must observe the identical frozen terms:
        // bit-identical reports for identical requests, and the same
        // `terms_interned` store size everywhere.
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(6));
        let c = tm.mk_bv_const(12, 6);
        let f = tm.mk_bv_ult(x, c).unwrap();
        let snapshot = tm.snapshot();

        let service = CountingService::new(ServiceConfig {
            shards: 3,
            queue_capacity: 16,
        });
        let mut handles: Vec<_> = (0..6)
            .map(|_| {
                let request = CountRequest::from_snapshot(std::sync::Arc::clone(&snapshot))
                    .assert(f)
                    .project(x)
                    .seed(11);
                service.submit(request).unwrap()
            })
            .collect();
        let reports: Vec<_> = handles.iter_mut().map(|h| h.wait().unwrap()).collect();
        let shards: std::collections::HashSet<_> =
            reports.iter().map(|r| r.shard.unwrap()).collect();
        assert!(!shards.is_empty());
        let first = &reports[0].report;
        assert_eq!(first.outcome, CountOutcome::Exact(12));
        for r in &reports[1..] {
            assert_eq!(r.report.outcome, first.outcome);
            assert_eq!(
                r.report.stats.terms_interned, first.stats.terms_interned,
                "shared-snapshot requests must report the same store size on every shard"
            );
        }
        service.shutdown();
    }

    #[test]
    fn invalid_requests_are_rejected_before_admission() {
        let service = CountingService::new(ServiceConfig {
            shards: 1,
            queue_capacity: 4,
        });
        let err = service
            .submit(small_request(6, 12).epsilon(-2.0))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Invalid(_)));
        assert_eq!(service.metrics().submitted, 0);
        service.shutdown();
    }

    #[test]
    fn shutdown_joins_every_shard_thread() {
        let service = CountingService::new(ServiceConfig {
            shards: 2,
            queue_capacity: 4,
        });
        assert_eq!(service.shards(), 2);
        let mut handles: Vec<_> = (0..3)
            .map(|_| service.submit(small_request(6, 12)).unwrap())
            .collect();
        let live = Arc::clone(&service.live);
        service.shutdown();
        assert_eq!(live.load(Ordering::Acquire), 0);
        // Drain completed everything that was queued.
        for handle in &mut handles {
            assert!(handle.wait().is_ok());
        }
    }

    #[test]
    fn drop_without_shutdown_aborts_and_joins() {
        let live = {
            let service = CountingService::new(ServiceConfig {
                shards: 2,
                queue_capacity: 4,
            });
            Arc::clone(&service.live)
        };
        assert_eq!(live.load(Ordering::Acquire), 0);
    }

    #[test]
    fn submitting_after_shutdown_is_rejected() {
        let service = CountingService::new(ServiceConfig {
            shards: 1,
            queue_capacity: 4,
        });
        service.queue.close();
        let err = service.submit(small_request(6, 12)).unwrap_err();
        assert_eq!(err, ServiceError::ShuttingDown);
        service.shutdown();
    }
}
