//! The wire protocol: SMT-LIB 2 text in, line-delimited JSON out.
//!
//! This module is the service's external surface for non-Rust clients: a
//! connection feeds a pragmatic SMT-LIB 2 subset (`declare-const`,
//! `assert`, `set-option`, `count` / `check-projected` — everything the
//! [`pact_ir`] parser already understands plus the counting extensions),
//! and the service answers with one JSON object per line, mirroring the
//! bench record schema's field names so the same downstream tooling parses
//! both.
//!
//! # Protocol shape
//!
//! - Commands are SMT-LIB s-expressions, whitespace/comment separated;
//!   they may span lines (the scanner buffers until the parens balance).
//! - Declarations and options are silent on success.  A `count` answers
//!   immediately with an `accepted` acknowledgement carrying the request
//!   id, then — possibly out of order with later acknowledgements — a
//!   result object with the same id: requests are *multiplexed by id* over
//!   one connection, so a cheap count submitted after an expensive one
//!   returns first.
//! - Protocol errors answer with a JSON `error` object naming the **line
//!   and column** of the offending input, and never kill the connection:
//!   the next command is parsed as if the bad one had not happened.
//! - `(exit)` ends the logical session once every pending result has been
//!   delivered; closing the input stream (EOF) behaves the same.
//!
//! The supported commands:
//!
//! | command | effect |
//! |---|---|
//! | `(set-logic L)`, `(set-info :k v)`, `(declare-const x S)`, `(declare-fun x () S)`, `(assert t)` | delegated to the [`pact_ir`] parser; accumulate into the connection's formula |
//! | `(set-info :projection (x y))` | declares the default projection set |
//! | `(set-option :epsilon 0.8)` etc. | sets a strategy knob for subsequent counts (see [`WireOptions`]) |
//! | `(count)` / `(count x y)` | submits a count over the declared (or listed) projection |
//! | `(check-projected)` | like `(count)` but *requires* a declared `:projection` |
//! | `(cancel N)` | cancels the pending request with id `N` |
//! | `(reset)` | clears declarations, asserts and options (pending requests keep running) |
//! | `(exit)` | ends the session after pending results drain |
//!
//! Determinism: a wire count is submitted as a [`CountRequest`] over a
//! snapshot of the connection's term store, so its answer is bit-identical
//! to a direct single-threaded [`pact::Session`] run under
//! [`CountRequest::counter_config`] — the transport adds framing, not
//! noise.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::time::Duration;

use pact::{BackendSpec, CountOutcome, ProgressEvent};
use pact_hash::HashFamily;
use pact_ir::{IrError, TermId, TermManager};

use crate::request::{CountRequest, Priority, ServiceReport};
use crate::{CountingService, RequestEvent, RequestHandle};

/// Version stamped on every wire JSON object.  Tracks the bench record
/// schema (`pact_bench::RECORD_SCHEMA_VERSION`) so one downstream parser
/// serves both streams; the bench crate pins the equality in a test.
pub const WIRE_SCHEMA_VERSION: u32 = 9;

/// The per-connection strategy knobs, set by `(set-option :key value)` and
/// applied to every subsequent `count` / `check-projected`.
///
/// `None` fields fall through to the engine defaults
/// ([`pact::CounterConfig::default`]).
#[derive(Debug, Clone, Default)]
pub struct WireOptions {
    /// `(set-option :epsilon 0.8)` — tolerance of the `(ε, δ)` guarantee.
    pub epsilon: Option<f64>,
    /// `(set-option :delta 0.2)` — confidence of the `(ε, δ)` guarantee.
    pub delta: Option<f64>,
    /// `(set-option :backend cube:2:2)` — oracle backend, in
    /// [`BackendSpec`]'s `FromStr` syntax.
    pub backend: Option<BackendSpec>,
    /// `(set-option :family prime)` — hash family (`xor`, `prime`, `shift`).
    pub family: Option<HashFamily>,
    /// `(set-option :seed 42)` — seed for all randomness.
    pub seed: Option<u64>,
    /// `(set-option :iterations 3)` — outer-iteration override.
    pub iterations: Option<u32>,
    /// `(set-option :deadline-ms 5000)` — end-to-end deadline.
    pub deadline: Option<Duration>,
    /// `(set-option :priority urgent)` — scheduling class.
    pub priority: Priority,
    /// `(set-option :stream-events true)` — stream per-request lifecycle
    /// events (`queued`, `admitted`, `progress`, …) as JSON lines.
    pub stream_events: bool,
}

/// A request submitted over the wire and not yet resolved.
#[derive(Debug)]
struct Pending {
    id: u64,
    kind: &'static str,
    handle: RequestHandle,
    stream_events: bool,
}

/// One logical client session: accumulated declarations and asserts, the
/// option set, and the requests in flight.
///
/// The connection is transport-agnostic — [`WireConnection::feed`] consumes
/// raw text (complete or partial commands) and [`WireConnection::poll`]
/// drains finished results; [`serve_connection`] wires both to a
/// reader/writer pair, and tests drive them directly.
#[derive(Debug)]
pub struct WireConnection<'s> {
    service: &'s CountingService,
    tm: TermManager,
    asserts: Vec<TermId>,
    projection: Vec<TermId>,
    options: WireOptions,
    next_id: u64,
    pending: Vec<Pending>,
    buffer: String,
    line: usize,
    column: usize,
    exited: bool,
}

impl<'s> WireConnection<'s> {
    /// Opens a fresh session against the service.
    pub fn new(service: &'s CountingService) -> Self {
        WireConnection {
            service,
            tm: TermManager::new(),
            asserts: Vec::new(),
            projection: Vec::new(),
            options: WireOptions::default(),
            next_id: 0,
            pending: Vec::new(),
            buffer: String::new(),
            line: 1,
            column: 1,
            exited: false,
        }
    }

    /// Whether `(exit)` was received; no further input is processed.
    pub fn exited(&self) -> bool {
        self.exited
    }

    /// Whether every submitted request has been resolved and reported.
    pub fn idle(&self) -> bool {
        self.pending.is_empty()
    }

    /// Consumes a chunk of input (any framing: whole scripts, single lines,
    /// partial commands), dispatching every complete command and pushing
    /// response lines (acknowledgements, protocol errors) onto `out`.
    pub fn feed(&mut self, chunk: &str, out: &mut Vec<String>) {
        if self.exited {
            return;
        }
        self.buffer.push_str(chunk);
        loop {
            match scan_item(&self.buffer, self.line, self.column) {
                Scan::Incomplete {
                    consumed,
                    line,
                    column,
                } => {
                    self.buffer.drain(..consumed);
                    self.line = line;
                    self.column = column;
                    break;
                }
                Scan::Command {
                    end,
                    start,
                    line,
                    column,
                    next_line,
                    next_column,
                } => {
                    let text = self.buffer[start..end].to_string();
                    self.buffer.drain(..end);
                    self.line = next_line;
                    self.column = next_column;
                    self.dispatch(&text, line, column, out);
                    if self.exited {
                        self.buffer.clear();
                        break;
                    }
                }
                Scan::Stray {
                    end,
                    token,
                    line,
                    column,
                    next_line,
                    next_column,
                } => {
                    self.buffer.drain(..end);
                    self.line = next_line;
                    self.column = next_column;
                    out.push(protocol_error(
                        line,
                        column,
                        &format!("expected a parenthesised command, found {token:?}"),
                    ));
                }
            }
        }
    }

    /// Drains completed requests (and, when enabled, their streamed
    /// events) into `out` without blocking.  Results appear as soon as
    /// their request resolves, in completion order — not submission order.
    pub fn poll(&mut self, out: &mut Vec<String>) {
        let mut i = 0;
        while i < self.pending.len() {
            let p = &mut self.pending[i];
            if p.stream_events {
                while let Some(event) = p.handle.try_next_event() {
                    out.push(event_to_json(p.id, &event));
                }
            }
            match p.handle.try_result() {
                None => i += 1,
                Some(result) => {
                    if p.stream_events {
                        while let Some(event) = p.handle.try_next_event() {
                            out.push(event_to_json(p.id, &event));
                        }
                    }
                    match result {
                        Ok(report) => out.push(report_to_json(p.id, p.kind, &report)),
                        Err(e) => out.push(request_error(p.id, &e.to_string())),
                    }
                    self.pending.remove(i);
                }
            }
        }
    }

    /// Blocks (politely: poll + sleep) until every pending request has
    /// resolved, draining all remaining responses into `out`.
    pub fn finish(&mut self, out: &mut Vec<String>) {
        while !self.idle() {
            self.poll(out);
            if !self.idle() {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Convenience for scripts: feed the whole text, wait for every
    /// result, and return all response lines in order.
    pub fn run_script(&mut self, script: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.feed(script, &mut out);
        self.finish(&mut out);
        out
    }

    fn dispatch(&mut self, text: &str, line: usize, column: usize, out: &mut Vec<String>) {
        match head_of(text) {
            "set-logic" | "set-info" | "declare-const" | "declare-fun" | "assert" => {
                match pact_ir::parser::parse_script(&mut self.tm, text) {
                    Ok(script) => {
                        self.asserts.extend(script.asserts);
                        self.projection.extend(script.projection);
                    }
                    Err(e) => {
                        let (l, c, message) = map_ir_error(e, line, column);
                        out.push(protocol_error(l, c, &message));
                    }
                }
            }
            "set-option" => self.set_option(text, line, column, out),
            "count" => self.submit_count(text, line, column, false, out),
            "check-projected" => self.submit_count(text, line, column, true, out),
            "cancel" => self.cancel(text, line, column, out),
            "reset" => {
                self.tm = TermManager::new();
                self.asserts.clear();
                self.projection.clear();
                self.options = WireOptions::default();
            }
            "exit" => self.exited = true,
            // SMT-LIB ritual commands a generic frontend may emit; silently
            // accepted, exactly like the pact_ir parser treats them.
            "check-sat" | "get-model" | "get-value" | "get-info" | "echo" | "push" | "pop" => {}
            other => out.push(protocol_error(
                line,
                column,
                &format!("unknown command {other:?}"),
            )),
        }
    }

    fn set_option(&mut self, text: &str, line: usize, column: usize, out: &mut Vec<String>) {
        let tokens = flat_tokens(text);
        let (key, value) = match (tokens.get(1), tokens.get(2)) {
            (Some(k), Some(v)) if tokens.len() == 3 => (k.as_str(), v.as_str()),
            _ => {
                out.push(protocol_error(
                    line,
                    column,
                    "set-option takes exactly a :key and a value",
                ));
                return;
            }
        };
        let result: Result<(), String> = match key {
            ":epsilon" => parse_into(value, "epsilon", &mut self.options.epsilon),
            ":delta" => parse_into(value, "delta", &mut self.options.delta),
            ":seed" => parse_into(value, "seed", &mut self.options.seed),
            ":iterations" => parse_into(value, "iterations", &mut self.options.iterations),
            ":deadline-ms" => match value.parse::<u64>() {
                Ok(ms) => {
                    self.options.deadline = Some(Duration::from_millis(ms));
                    Ok(())
                }
                Err(_) => Err(format!("invalid deadline-ms value {value:?}")),
            },
            ":backend" => match value.parse::<BackendSpec>() {
                Ok(spec) => {
                    self.options.backend = Some(spec);
                    Ok(())
                }
                Err(e) => Err(e),
            },
            ":family" => match value {
                "xor" => {
                    self.options.family = Some(HashFamily::Xor);
                    Ok(())
                }
                "prime" => {
                    self.options.family = Some(HashFamily::Prime);
                    Ok(())
                }
                "shift" => {
                    self.options.family = Some(HashFamily::Shift);
                    Ok(())
                }
                other => Err(format!(
                    "unknown hash family {other:?} (expected xor, prime or shift)"
                )),
            },
            ":priority" => match value {
                "urgent" => {
                    self.options.priority = Priority::Urgent;
                    Ok(())
                }
                "normal" => {
                    self.options.priority = Priority::Normal;
                    Ok(())
                }
                "batch" => {
                    self.options.priority = Priority::Batch;
                    Ok(())
                }
                other => Err(format!(
                    "unknown priority {other:?} (expected urgent, normal or batch)"
                )),
            },
            ":stream-events" => match value {
                "true" => {
                    self.options.stream_events = true;
                    Ok(())
                }
                "false" => {
                    self.options.stream_events = false;
                    Ok(())
                }
                other => Err(format!("invalid stream-events value {other:?}")),
            },
            other => Err(format!("unknown option {other:?}")),
        };
        if let Err(message) = result {
            out.push(protocol_error(line, column, &message));
        }
    }

    fn submit_count(
        &mut self,
        text: &str,
        line: usize,
        column: usize,
        check_projected: bool,
        out: &mut Vec<String>,
    ) {
        let tokens = flat_tokens(text);
        let names = &tokens[1..];
        if check_projected && !names.is_empty() {
            out.push(protocol_error(
                line,
                column,
                "check-projected takes no arguments (it uses the declared :projection)",
            ));
            return;
        }
        let projection = if names.is_empty() {
            if self.projection.is_empty() {
                out.push(protocol_error(
                    line,
                    column,
                    "no projection: list variables in the command or declare \
                     (set-info :projection (...)) first",
                ));
                return;
            }
            self.projection.clone()
        } else {
            let mut vars = Vec::with_capacity(names.len());
            for name in names {
                match self.tm.find_var(name) {
                    Some(v) => vars.push(v),
                    None => {
                        out.push(protocol_error(
                            line,
                            column,
                            &format!("unknown variable {name:?} in projection"),
                        ));
                        return;
                    }
                }
            }
            vars
        };

        // Submit over a snapshot: every wire request shares this
        // connection's interned id table instead of deep-cloning it, and
        // later declarations extend the connection's manager without
        // disturbing requests already in flight.
        let snapshot = self.tm.snapshot();
        let mut request = CountRequest::from_snapshot(snapshot)
            .assert_all(&self.asserts)
            .project_all(&projection)
            .priority(self.options.priority);
        if let Some(v) = self.options.epsilon {
            request = request.epsilon(v);
        }
        if let Some(v) = self.options.delta {
            request = request.delta(v);
        }
        if let Some(v) = self.options.backend {
            request = request.backend(v);
        }
        if let Some(v) = self.options.family {
            request = request.family(v);
        }
        if let Some(v) = self.options.seed {
            request = request.seed(v);
        }
        if let Some(v) = self.options.iterations {
            request = request.iterations(v);
        }
        if let Some(v) = self.options.deadline {
            request = request.deadline(v);
        }
        let cost = request.cost_estimate();
        let kind = if check_projected {
            "check-projected"
        } else {
            "count"
        };
        match self.service.submit(request) {
            Ok(handle) => {
                let id = self.next_id;
                self.next_id += 1;
                out.push(format!(
                    "{{\"schema_version\": {WIRE_SCHEMA_VERSION}, \"kind\": \"accepted\", \
                     \"id\": {id}, \"for\": \"{kind}\", \"cost_estimate\": {cost}}}"
                ));
                self.pending.push(Pending {
                    id,
                    kind,
                    handle,
                    stream_events: self.options.stream_events,
                });
            }
            // A refused submission (queue full, shutting down, invalid) is
            // a per-command error; the connection survives.
            Err(e) => out.push(protocol_error(line, column, &e.to_string())),
        }
    }

    fn cancel(&mut self, text: &str, line: usize, column: usize, out: &mut Vec<String>) {
        let tokens = flat_tokens(text);
        let id = match tokens.get(1).and_then(|t| t.parse::<u64>().ok()) {
            Some(id) if tokens.len() == 2 => id,
            _ => {
                out.push(protocol_error(
                    line,
                    column,
                    "cancel takes exactly one request id",
                ));
                return;
            }
        };
        match self.pending.iter().find(|p| p.id == id) {
            Some(p) => p.handle.cancel(),
            None => out.push(protocol_error(
                line,
                column,
                &format!("no pending request with id {id}"),
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Command scanner
// ---------------------------------------------------------------------------

/// One step of the incremental top-level scanner.
enum Scan {
    /// Nothing complete yet: consume `consumed` bytes (whitespace and
    /// comments), leaving the partial item (if any) buffered; the cursor
    /// after the consumed prefix is at (`line`, `column`).
    Incomplete {
        consumed: usize,
        line: usize,
        column: usize,
    },
    /// A balanced command occupies `start..end`; it begins at
    /// (`line`, `column`) and the cursor after it is at
    /// (`next_line`, `next_column`).
    Command {
        start: usize,
        end: usize,
        line: usize,
        column: usize,
        next_line: usize,
        next_column: usize,
    },
    /// A stray top-level atom (not a command) occupies `..end`.
    Stray {
        end: usize,
        token: String,
        line: usize,
        column: usize,
        next_line: usize,
        next_column: usize,
    },
}

/// Scans the buffer (whose first byte sits at `base_line`:`base_column`,
/// both 1-based) for the next complete top-level item.
fn scan_item(buffer: &str, base_line: usize, base_column: usize) -> Scan {
    let chars: Vec<(usize, char)> = buffer.char_indices().collect();
    let mut line = base_line;
    let mut column = base_column;
    let mut k = 0;

    // Skip whitespace and *terminated* comments.  An unterminated comment
    // stays buffered: its remainder may still arrive.
    loop {
        match chars.get(k) {
            None => {
                return Scan::Incomplete {
                    consumed: buffer.len(),
                    line,
                    column,
                }
            }
            Some(&(i, ';')) => {
                let Some(rel) = buffer[i..].find('\n') else {
                    return Scan::Incomplete {
                        consumed: i,
                        line,
                        column,
                    };
                };
                while chars[k].0 < i + rel {
                    k += 1;
                }
                // Consume the newline itself.
                k += 1;
                line += 1;
                column = 1;
            }
            Some(&(_, c)) if c.is_whitespace() => {
                advance(c, &mut line, &mut column);
                k += 1;
            }
            Some(_) => break,
        }
    }

    let (start, first) = chars[k];
    let start_line = line;
    let start_column = column;

    if first != '(' {
        // A stray atom: everything up to the next boundary.  If the buffer
        // ends first the token may be partial — wait for more input.
        let mut end = buffer.len();
        let mut complete = false;
        let mut next_line = line;
        let mut next_column = column;
        for &(i, c) in &chars[k..] {
            if c.is_whitespace() || c == '(' || c == ';' {
                end = i;
                complete = true;
                break;
            }
            advance(c, &mut next_line, &mut next_column);
        }
        if !complete {
            return Scan::Incomplete {
                consumed: start,
                line: start_line,
                column: start_column,
            };
        }
        return Scan::Stray {
            end,
            token: buffer[start..end].to_string(),
            line: start_line,
            column: start_column,
            next_line,
            next_column,
        };
    }

    // Balance parens, respecting strings, |symbols| and comments.
    let mut depth = 0usize;
    let mut in_string = false;
    let mut in_symbol = false;
    let mut in_comment = false;
    for &(i, c) in &chars[k..] {
        advance(c, &mut line, &mut column);
        if in_comment {
            in_comment = c != '\n';
            continue;
        }
        if in_string {
            in_string = c != '"';
            continue;
        }
        if in_symbol {
            in_symbol = c != '|';
            continue;
        }
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Scan::Command {
                        start,
                        end: i + c.len_utf8(),
                        line: start_line,
                        column: start_column,
                        next_line: line,
                        next_column: column,
                    };
                }
            }
            '"' => in_string = true,
            '|' => in_symbol = true,
            ';' => in_comment = true,
            _ => {}
        }
    }
    Scan::Incomplete {
        consumed: start,
        line: start_line,
        column: start_column,
    }
}

fn advance(c: char, line: &mut usize, column: &mut usize) {
    if c == '\n' {
        *line += 1;
        *column = 1;
    } else {
        *column += 1;
    }
}

/// The command's head symbol (first atom after the opening parens).
fn head_of(text: &str) -> &str {
    text.trim_start_matches(|c: char| c == '(' || c.is_whitespace())
        .split(|c: char| c.is_whitespace() || c == '(' || c == ')')
        .next()
        .unwrap_or("")
}

/// The command's atoms with all parentheses stripped — only valid for
/// commands whose arguments are flat symbols (`set-option`, `count`,
/// `cancel`).
fn flat_tokens(text: &str) -> Vec<String> {
    text.replace(['(', ')'], " ")
        .split_whitespace()
        .map(str::to_string)
        .collect()
}

fn parse_into<T: std::str::FromStr>(
    value: &str,
    what: &str,
    slot: &mut Option<T>,
) -> Result<(), String> {
    match value.parse::<T>() {
        Ok(v) => {
            *slot = Some(v);
            Ok(())
        }
        Err(_) => Err(format!("invalid {what} value {value:?}")),
    }
}

/// Maps an inner [`pact_ir`] parse error (line-relative to the command
/// text) to absolute coordinates.  The ir parser does not track columns, so
/// errors on the command's first line inherit the command's column and
/// later lines report column 1.
fn map_ir_error(e: IrError, line: usize, column: usize) -> (usize, usize, String) {
    match e {
        IrError::Parse {
            line: relative,
            message,
        } => {
            let absolute = line + relative.saturating_sub(1);
            let column = if relative <= 1 { column } else { 1 };
            (absolute, column, message)
        }
        other => (line, column, other.to_string()),
    }
}

// ---------------------------------------------------------------------------
// JSON rendering
// ---------------------------------------------------------------------------

fn escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A protocol-level error tied to a position in the input stream.  The
/// connection survives: subsequent commands are processed normally.
fn protocol_error(line: usize, column: usize, message: &str) -> String {
    format!(
        "{{\"schema_version\": {WIRE_SCHEMA_VERSION}, \"kind\": \"error\", \
         \"line\": {line}, \"column\": {column}, \"message\": \"{}\"}}",
        escape(message)
    )
}

/// A per-request failure (the engine rejected the run after admission).
fn request_error(id: u64, message: &str) -> String {
    format!(
        "{{\"schema_version\": {WIRE_SCHEMA_VERSION}, \"kind\": \"error\", \
         \"id\": {id}, \"message\": \"{}\"}}",
        escape(message)
    )
}

/// Renders a resolved request as one JSON line, mirroring the bench record
/// schema's field names (`outcome`, `estimate`, `log2_estimate`,
/// `oracle_calls`, `shard`, `queue_seconds`, `cost_estimate`, …) so bench
/// artifact consumers parse wire results unchanged.
pub fn report_to_json(id: u64, kind: &str, report: &ServiceReport) -> String {
    let (outcome, estimate, log2) = match report.report.outcome {
        CountOutcome::Exact(n) => ("exact", n as f64, (n as f64).max(1.0).log2()),
        CountOutcome::Approximate {
            estimate,
            log2_estimate,
        } => ("approximate", estimate, log2_estimate),
        CountOutcome::Unsatisfiable => ("unsat", 0.0, 0.0),
        CountOutcome::Timeout => ("timeout", -1.0, -1.0),
    };
    let stats = &report.report.stats;
    let shard = report.shard.map(|s| s as i64).unwrap_or(-1);
    format!(
        concat!(
            "{{\"schema_version\": {}, \"kind\": \"{}\", \"id\": {}, ",
            "\"disposition\": \"{}\", \"outcome\": \"{}\", \"estimate\": {}, ",
            "\"log2_estimate\": {}, \"oracle_calls\": {}, \"cells_explored\": {}, ",
            "\"iterations\": {}, \"terms_interned\": {}, \"shard\": {}, ",
            "\"queue_seconds\": {:.6}, \"cost_estimate\": {}, \"wall_seconds\": {:.6}}}"
        ),
        WIRE_SCHEMA_VERSION,
        kind,
        id,
        report.disposition,
        outcome,
        estimate,
        log2,
        stats.oracle_calls,
        stats.cells_explored,
        stats.iterations,
        stats.terms_interned,
        shard,
        report.queue_seconds,
        report.cost_estimate,
        stats.wall_seconds,
    )
}

/// Renders one lifecycle event as a JSON line (emitted when the connection
/// set `:stream-events true`).
pub fn event_to_json(id: u64, event: &RequestEvent) -> String {
    let body = match event {
        RequestEvent::Queued => "\"event\": \"queued\"".to_string(),
        RequestEvent::Admitted { shard } => {
            format!("\"event\": \"admitted\", \"shard\": {shard}")
        }
        RequestEvent::Progress(progress) => {
            let detail = match progress {
                ProgressEvent::Model { found } => {
                    format!("\"progress\": \"model\", \"found\": {found}")
                }
                ProgressEvent::Cell {
                    round,
                    cells_in_round,
                } => format!("\"progress\": \"cell\", \"round\": {round}, \"cells_in_round\": {cells_in_round}"),
                ProgressEvent::Round { round, estimate } => {
                    let estimate = estimate
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "null".to_string());
                    format!("\"progress\": \"round\", \"round\": {round}, \"estimate\": {estimate}")
                }
                // `ProgressEvent` is #[non_exhaustive]; unknown kinds still
                // produce a well-formed event line.
                _ => "\"progress\": \"other\"".to_string(),
            };
            format!("\"event\": \"progress\", {detail}")
        }
        RequestEvent::Finished => "\"event\": \"finished\"".to_string(),
        RequestEvent::TimedOut => "\"event\": \"timed_out\"".to_string(),
        RequestEvent::Cancelled => "\"event\": \"cancelled\"".to_string(),
        RequestEvent::Failed => "\"event\": \"failed\"".to_string(),
        // `RequestEvent` is #[non_exhaustive] for external consumers; new
        // in-crate variants should be named above.
        #[allow(unreachable_patterns)]
        _ => "\"event\": \"other\"".to_string(),
    };
    format!(
        "{{\"schema_version\": {WIRE_SCHEMA_VERSION}, \"kind\": \"event\", \"id\": {id}, {body}}}"
    )
}

// ---------------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------------

/// Serves one logical client over a reader/writer pair: stdin/stdout for
/// `pact-serve`'s pipe mode, a [`std::net::TcpStream`] pair for `--listen`.
///
/// A dedicated thread reads lines and hands them over a channel, so the
/// main loop can keep draining finished results while the client is idle —
/// this is what makes out-of-order multiplexing observable: a client that
/// submits two counts and then waits sees the cheaper one answer first.
/// The loop ends when the input reaches EOF or `(exit)` was processed, and
/// every pending result has been delivered.
///
/// # Errors
///
/// Returns the first I/O error from either side of the connection.
pub fn serve_connection<R, W>(service: &CountingService, reader: R, mut writer: W) -> io::Result<()>
where
    R: Read + Send + 'static,
    W: Write,
{
    let (tx, rx) = channel::<io::Result<String>>();
    std::thread::Builder::new()
        .name("pact-wire-reader".into())
        .spawn(move || {
            let mut reader = BufReader::new(reader);
            loop {
                let mut line = String::new();
                match reader.read_line(&mut line) {
                    Ok(0) => break,
                    Ok(_) => {
                        if tx.send(Ok(line)).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            }
        })
        .expect("failed to spawn wire reader thread");

    let mut conn = WireConnection::new(service);
    let mut out = Vec::new();
    let mut eof = false;
    loop {
        match rx.recv_timeout(Duration::from_millis(2)) {
            Ok(Ok(line)) => conn.feed(&line, &mut out),
            Ok(Err(e)) => return Err(e),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => eof = true,
        }
        conn.poll(&mut out);
        if !out.is_empty() {
            for line in out.drain(..) {
                writeln!(writer, "{line}")?;
            }
            writer.flush()?;
        }
        if (eof || conn.exited()) && conn.idle() {
            return Ok(());
        }
    }
}

/// Accepts TCP connections and serves each as one logical client,
/// sequentially (`pact-serve --listen`).  A connection-level I/O error is
/// reported to stderr and the listener moves on; only an `accept` failure
/// ends the loop.
///
/// # Errors
///
/// Returns the first error from [`TcpListener::accept`].
pub fn serve_listener(service: &CountingService, listener: &TcpListener) -> io::Result<()> {
    loop {
        let (stream, peer) = listener.accept()?;
        let reader = stream.try_clone()?;
        if let Err(e) = serve_connection(service, reader, &stream) {
            eprintln!("pact-serve: connection {peer}: {e}");
        }
        // Both halves dropped here close the socket and unblock the
        // connection's reader thread on the client side.
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;

    fn service() -> CountingService {
        CountingService::new(ServiceConfig {
            shards: 1,
            queue_capacity: 8,
        })
    }

    #[test]
    fn scanner_tracks_lines_and_columns() {
        // Command split across lines; a comment and leading blanks before it.
        let input = "; header\n  (assert\n    (bvult x y))\n";
        match scan_item(input, 1, 1) {
            Scan::Command {
                start,
                end,
                line,
                column,
                next_line,
                ..
            } => {
                assert_eq!(&input[start..end], "(assert\n    (bvult x y))");
                assert_eq!((line, column), (2, 3));
                assert_eq!(next_line, 3);
            }
            _ => panic!("expected a complete command"),
        }
    }

    #[test]
    fn scanner_waits_for_balanced_parens() {
        match scan_item("(assert (bvult", 4, 1) {
            Scan::Incomplete {
                consumed,
                line,
                column,
            } => {
                assert_eq!(consumed, 0);
                assert_eq!((line, column), (4, 1));
            }
            _ => panic!("unbalanced command must stay buffered"),
        }
    }

    #[test]
    fn stray_atoms_are_reported_with_position() {
        let mut conn = WireConnection::new_for_scan_tests();
        let mut out = Vec::new();
        conn.feed("  garbage (reset)\n", &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("\"kind\": \"error\""));
        assert!(out[0].contains("\"line\": 1"));
        assert!(out[0].contains("\"column\": 3"));
    }

    #[test]
    fn options_parse_and_reject_with_positions() {
        let svc = service();
        let mut conn = WireConnection::new(&svc);
        let mut out = Vec::new();
        conn.feed(
            "(set-option :epsilon 0.8)\n(set-option :priority urgent)\n",
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(conn.options.epsilon, Some(0.8));
        assert_eq!(conn.options.priority, Priority::Urgent);
        conn.feed("(set-option :epsilon many)\n", &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("\"line\": 3"));
        assert!(out[0].contains("epsilon"));
        svc.shutdown();
    }

    #[test]
    fn json_strings_are_escaped() {
        let line = protocol_error(1, 1, "a \"quoted\"\nthing");
        assert!(line.contains("a \\\"quoted\\\"\\nthing"));
    }

    impl WireConnection<'static> {
        /// A connection with a leaked service, for scanner-only tests.
        fn new_for_scan_tests() -> Self {
            let svc: &'static CountingService = Box::leak(Box::new(service()));
            WireConnection::new(svc)
        }
    }
}
