//! Exact rational arithmetic on `i128` numerators / denominators.
//!
//! The simplex core in `pact-lra` and real constant folding both need exact
//! rational arithmetic.  The generated workloads keep magnitudes small, so an
//! `i128`-backed representation with eager normalisation is sufficient;
//! arithmetic panics on overflow (documented on each operation) rather than
//! silently wrapping.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) = 1`.
///
/// ```
/// use pact_ir::Rational;
/// let a = Rational::new(1, 3);
/// let b = Rational::new(1, 6);
/// assert_eq!(a + b, Rational::new(1, 2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Creates the integer rational `n / 1`.
    pub fn from_int(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Returns `true` when the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` when the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Returns `true` when the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Returns `true` when the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Largest integer not greater than the value.
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer not less than the value.
    pub fn ceil(&self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Approximate conversion to `f64`, for reporting only.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Parses a decimal literal such as `"3"`, `"-2.5"` or `"7/4"`.
    ///
    /// Returns `None` when the literal is malformed.
    pub fn parse(text: &str) -> Option<Self> {
        let text = text.trim();
        if let Some((n, d)) = text.split_once('/') {
            let n: i128 = n.trim().parse().ok()?;
            let d: i128 = d.trim().parse().ok()?;
            if d == 0 {
                return None;
            }
            return Some(Rational::new(n, d));
        }
        if let Some((int_part, frac_part)) = text.split_once('.') {
            let negative = int_part.trim_start().starts_with('-');
            let int: i128 = if int_part.is_empty() || int_part == "-" {
                0
            } else {
                int_part.parse().ok()?
            };
            if frac_part.is_empty() {
                return Some(Rational::from_int(int));
            }
            let frac_digits: i128 = frac_part.parse().ok()?;
            if frac_digits < 0 {
                return None;
            }
            let scale = 10i128.checked_pow(frac_part.len() as u32)?;
            let magnitude = int.abs() * scale + frac_digits;
            let signed = if negative { -magnitude } else { magnitude };
            return Some(Rational::new(signed, scale));
        }
        text.parse::<i128>().ok().map(Rational::from_int)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n as i128)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(rhs.num != 0, "division by zero rational");
        Rational::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalises_on_construction() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 6);
        assert_eq!(a + b, Rational::new(1, 2));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 18));
        assert_eq!(a / b, Rational::from_int(2));
        assert_eq!(-a, Rational::new(-1, 3));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(7, 2) > Rational::from_int(3));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::from_int(5).floor(), 5);
        assert_eq!(Rational::from_int(5).ceil(), 5);
    }

    #[test]
    fn parse_literals() {
        assert_eq!(Rational::parse("3"), Some(Rational::from_int(3)));
        assert_eq!(Rational::parse("-2.5"), Some(Rational::new(-5, 2)));
        assert_eq!(Rational::parse("7/4"), Some(Rational::new(7, 4)));
        assert_eq!(Rational::parse("0.125"), Some(Rational::new(1, 8)));
        assert_eq!(Rational::parse("x"), None);
        assert_eq!(Rational::parse("1/0"), None);
    }

    #[test]
    fn display_round_trips() {
        for r in [
            Rational::new(3, 7),
            Rational::from_int(-4),
            Rational::new(-9, 2),
        ] {
            assert_eq!(Rational::parse(&r.to_string()), Some(r));
        }
    }
}
