//! Term operators and the interned term representation.

use std::num::NonZeroU32;

use crate::{BvValue, Rational, Sort};

/// A handle to an interned term inside a [`crate::TermManager`].
///
/// `TermId`s are cheap to copy and compare; two ids are equal exactly when
/// the corresponding terms are structurally identical (hash consing).  The
/// payload is a `NonZeroU32` (id = dense index + 1), so `Option<TermId>`
/// is free — the same niche trick llguidance's `HashCons` ids use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) NonZeroU32);

impl TermId {
    /// Raw index of the term inside its manager, useful as a dense map key.
    pub fn index(self) -> usize {
        (self.0.get() - 1) as usize
    }

    /// The id for the term at dense index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index + 1` overflows `u32` (more than ~4 billion terms).
    pub(crate) fn from_index(index: usize) -> TermId {
        let raw = u32::try_from(index + 1).expect("term table exceeds u32 capacity");
        TermId(NonZeroU32::new(raw).expect("index + 1 is nonzero"))
    }
}

/// Operators of the hybrid SMT term language.
///
/// Leaf operators ([`Op::Var`], the constants and [`Op::Apply`]) carry their
/// payload inline; all other operators take their operands as term children.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    // ---- leaves ------------------------------------------------------
    /// A free variable; the payload is the symbol index in the manager.
    Var(u32),
    /// A boolean constant.
    BoolConst(bool),
    /// A bit-vector constant.
    BvConst(BvValue),
    /// A real constant.
    RealConst(Rational),
    /// A bounded-integer constant.
    IntConst(i64),

    // ---- core booleans ----------------------------------------------
    /// Logical negation.
    Not,
    /// N-ary conjunction.
    And,
    /// N-ary disjunction.
    Or,
    /// Binary boolean exclusive or.
    Xor,
    /// Implication `a => b`.
    Implies,
    /// If-then-else; the first child is the condition.
    Ite,
    /// Equality between two terms of the same sort.
    Eq,
    /// Pairwise distinctness.
    Distinct,

    // ---- bit-vectors --------------------------------------------------
    /// Bitwise complement.
    BvNot,
    /// Bitwise and.
    BvAnd,
    /// Bitwise or.
    BvOr,
    /// Bitwise exclusive or.
    BvXor,
    /// Two's-complement negation.
    BvNeg,
    /// Modular addition.
    BvAdd,
    /// Modular subtraction.
    BvSub,
    /// Modular multiplication.
    BvMul,
    /// Unsigned division (SMT-LIB `bvudiv`; division by zero yields all ones).
    BvUdiv,
    /// Unsigned remainder (SMT-LIB `bvurem`; remainder by zero yields the dividend).
    BvUrem,
    /// Logical left shift.
    BvShl,
    /// Logical right shift.
    BvLshr,
    /// Arithmetic right shift.
    BvAshr,
    /// Concatenation; the first child holds the high bits.
    BvConcat,
    /// Bit extraction `[hi:lo]`, inclusive.
    BvExtract {
        /// Most significant extracted bit.
        hi: u32,
        /// Least significant extracted bit.
        lo: u32,
    },
    /// Zero extension by the given number of bits.
    BvZeroExtend(u32),
    /// Sign extension by the given number of bits.
    BvSignExtend(u32),
    /// Unsigned less-than.
    BvUlt,
    /// Unsigned less-or-equal.
    BvUle,
    /// Signed less-than.
    BvSlt,
    /// Signed less-or-equal.
    BvSle,

    // ---- reals ---------------------------------------------------------
    /// N-ary real addition.
    RealAdd,
    /// Binary real subtraction.
    RealSub,
    /// Real multiplication (the solver requires at least one constant factor).
    RealMul,
    /// Real negation.
    RealNeg,
    /// Strict real less-than.
    RealLt,
    /// Real less-or-equal.
    RealLe,

    // ---- bounded integers ----------------------------------------------
    /// N-ary bounded-integer addition.
    IntAdd,
    /// Bounded-integer less-or-equal.
    IntLe,
    /// Bounded-integer less-than.
    IntLt,

    // ---- floating point (real-relaxed by the solver) --------------------
    /// Floating point addition (round-to-nearest-even assumed).
    FpAdd,
    /// Floating point subtraction.
    FpSub,
    /// Floating point multiplication.
    FpMul,
    /// Floating point negation.
    FpNeg,
    /// Floating point equality (not the same as term equality for NaN).
    FpEq,
    /// Floating point less-than.
    FpLt,
    /// Floating point less-or-equal.
    FpLe,
    /// Conversion from floating point to real.
    FpToReal,
    /// Conversion from real to floating point.
    RealToFp,

    // ---- arrays ----------------------------------------------------------
    /// Array read `(select a i)`.
    Select,
    /// Array write `(store a i v)`.
    Store,

    // ---- uninterpreted functions -----------------------------------------
    /// Application of the uninterpreted function with the given symbol index.
    Apply(u32),
}

impl Op {
    /// Returns `true` if the operator is a leaf (takes no term children).
    pub fn is_leaf(&self) -> bool {
        matches!(
            self,
            Op::Var(_) | Op::BoolConst(_) | Op::BvConst(_) | Op::RealConst(_) | Op::IntConst(_)
        )
    }

    /// Returns `true` if the operator is one of the constant leaves.
    pub fn is_const(&self) -> bool {
        matches!(
            self,
            Op::BoolConst(_) | Op::BvConst(_) | Op::RealConst(_) | Op::IntConst(_)
        )
    }
}

/// An interned term: operator, children and sort.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Term {
    /// The operator at the root of this term.
    pub op: Op,
    /// Children, in SMT-LIB argument order.
    pub children: Vec<TermId>,
    /// The sort of the term.
    pub sort: Sort,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_classification() {
        assert!(Op::Var(0).is_leaf());
        assert!(Op::BoolConst(true).is_leaf());
        assert!(!Op::Var(0).is_const());
        assert!(Op::BvConst(BvValue::new(3, 4)).is_const());
        assert!(!Op::BvAdd.is_leaf());
        assert!(!Op::Select.is_const());
    }
}
