//! Concrete bit-vector values.

use std::fmt;

/// A concrete bit-vector value of width 1..=128 bits.
///
/// Values are stored in a `u128` with all bits above `width` cleared.
/// Widths above 128 bits are not needed by the counter: projection variables
/// are sliced into narrow chunks before hashing (§III-A of the paper), and
/// the generated workloads stay well below this limit.
///
/// ```
/// use pact_ir::BvValue;
/// let v = BvValue::new(0b1011, 4);
/// assert_eq!(v.bit(0), true);
/// assert_eq!(v.bit(2), false);
/// assert_eq!(v.extract(3, 1).as_u128(), 0b101);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BvValue {
    bits: u128,
    width: u32,
}

impl BvValue {
    /// Creates a bit-vector value, truncating `bits` to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 128.
    pub fn new(bits: u128, width: u32) -> Self {
        assert!(
            (1..=128).contains(&width),
            "bit-vector width out of range: {width}"
        );
        BvValue {
            bits: bits & Self::mask(width),
            width,
        }
    }

    /// The all-zero value of the given width.
    pub fn zero(width: u32) -> Self {
        BvValue::new(0, width)
    }

    /// The all-one value of the given width.
    pub fn ones(width: u32) -> Self {
        BvValue::new(u128::MAX, width)
    }

    fn mask(width: u32) -> u128 {
        if width >= 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        }
    }

    /// Width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Unsigned interpretation of the value.
    pub fn as_u128(&self) -> u128 {
        self.bits
    }

    /// Two's-complement signed interpretation of the value.
    pub fn as_i128(&self) -> i128 {
        let sign_bit = 1u128 << (self.width - 1);
        if self.width < 128 && (self.bits & sign_bit) != 0 {
            (self.bits as i128) - (1i128 << self.width)
        } else {
            self.bits as i128
        }
    }

    /// Returns bit `i` (little-endian: bit 0 is the least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: u32) -> bool {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        (self.bits >> i) & 1 == 1
    }

    /// Extracts bits `[hi:lo]` (inclusive, SMT-LIB convention) as a new value
    /// of width `hi - lo + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= width`.
    pub fn extract(&self, hi: u32, lo: u32) -> BvValue {
        assert!(
            hi >= lo && hi < self.width,
            "invalid extract [{hi}:{lo}] on width {}",
            self.width
        );
        BvValue::new(self.bits >> lo, hi - lo + 1)
    }

    /// Concatenates `self` (high part) with `low` (low part).
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 128.
    pub fn concat(&self, low: &BvValue) -> BvValue {
        let width = self.width + low.width;
        assert!(width <= 128, "concatenation exceeds 128 bits");
        BvValue::new((self.bits << low.width) | low.bits, width)
    }

    /// Modular addition.
    pub fn wrapping_add(&self, other: &BvValue) -> BvValue {
        debug_assert_eq!(self.width, other.width);
        BvValue::new(self.bits.wrapping_add(other.bits), self.width)
    }

    /// Modular multiplication.
    pub fn wrapping_mul(&self, other: &BvValue) -> BvValue {
        debug_assert_eq!(self.width, other.width);
        BvValue::new(self.bits.wrapping_mul(other.bits), self.width)
    }

    /// Bitwise XOR.
    pub fn xor(&self, other: &BvValue) -> BvValue {
        debug_assert_eq!(self.width, other.width);
        BvValue::new(self.bits ^ other.bits, self.width)
    }
}

impl fmt::Debug for BvValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#b{self:b}")
    }
}

impl fmt::Display for BvValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(_ bv{} {})", self.bits, self.width)
    }
}

impl fmt::Binary for BvValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width).rev() {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::LowerHex for BvValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_truncates() {
        let v = BvValue::new(0x1ff, 8);
        assert_eq!(v.as_u128(), 0xff);
        assert_eq!(v.width(), 8);
        assert_eq!(BvValue::ones(4).as_u128(), 0xf);
    }

    #[test]
    fn signed_interpretation() {
        assert_eq!(BvValue::new(0xff, 8).as_i128(), -1);
        assert_eq!(BvValue::new(0x7f, 8).as_i128(), 127);
        assert_eq!(BvValue::new(0x80, 8).as_i128(), -128);
        assert_eq!(BvValue::new(5, 8).as_i128(), 5);
    }

    #[test]
    fn extract_and_concat() {
        let v = BvValue::new(0b1101_0110, 8);
        assert_eq!(v.extract(7, 4).as_u128(), 0b1101);
        assert_eq!(v.extract(3, 0).as_u128(), 0b0110);
        let back = v.extract(7, 4).concat(&v.extract(3, 0));
        assert_eq!(back, v);
    }

    #[test]
    fn arithmetic_wraps() {
        let a = BvValue::new(0xff, 8);
        let b = BvValue::new(0x01, 8);
        assert_eq!(a.wrapping_add(&b).as_u128(), 0);
        assert_eq!(a.wrapping_mul(&BvValue::new(2, 8)).as_u128(), 0xfe);
        assert_eq!(a.xor(&b).as_u128(), 0xfe);
    }

    #[test]
    fn display_formats() {
        let v = BvValue::new(0b101, 3);
        assert_eq!(format!("{v}"), "(_ bv5 3)");
        assert_eq!(format!("{v:b}"), "101");
    }

    #[test]
    #[should_panic(expected = "width out of range")]
    fn zero_width_rejected() {
        BvValue::new(0, 0);
    }
}
