//! Hash-consing term manager and term constructors.

use std::collections::HashMap;
use std::sync::Arc;

use crate::fxhash::FxHashMap;
use crate::{BvValue, IrError, Op, Rational, Result, Sort, Term, TermId};

/// A concrete value, used for model representation and term evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A boolean value.
    Bool(bool),
    /// A bit-vector value.
    Bv(BvValue),
    /// A real value.
    Real(Rational),
    /// A bounded-integer value.
    Int(i64),
}

impl Value {
    /// Extracts the boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts the bit-vector payload, if any.
    pub fn as_bv(&self) -> Option<BvValue> {
        match self {
            Value::Bv(v) => Some(*v),
            _ => None,
        }
    }
}

/// An uninterpreted function declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunDecl {
    /// Function name.
    pub name: String,
    /// Argument sorts.
    pub args: Vec<Sort>,
    /// Return sort.
    pub ret: Sort,
}

/// The hash-consing term factory.
///
/// Every term lives inside exactly one manager and is referenced through a
/// [`TermId`].  Constructors perform sort checking and light constant
/// folding, so structurally equal terms always share an id.
///
/// ```
/// use pact_ir::{TermManager, Sort};
/// let mut tm = TermManager::new();
/// let x = tm.mk_var("x", Sort::BitVec(4));
/// let a = tm.mk_bv_add(x, x).unwrap();
/// let b = tm.mk_bv_add(x, x).unwrap();
/// assert_eq!(a, b); // hash consing
/// ```
#[derive(Debug, Clone, Default)]
pub struct TermManager {
    /// The frozen, shared prefix of the store (possibly empty).
    base: Arc<TermSnapshot>,
    /// Everything interned since the last [`TermManager::snapshot`].  Maps
    /// in the tail store *global* ids/indices, so flattening a tail into a
    /// snapshot is pure concatenation and never rewrites an id.
    tail: TermSnapshot,
}

/// An immutable snapshot of a term store, shareable across threads.
///
/// Produced by [`TermManager::snapshot`]; consumed by
/// [`TermManager::from_snapshot`].  Every `TermId` minted by the manager
/// the snapshot came from (up to the snapshot point) resolves to an
/// identical term in every manager built from it — sharing a formula with
/// N workers is N `Arc` clones of one id table, not N deep copies.
#[derive(Debug, Clone, Default)]
pub struct TermSnapshot {
    terms: Vec<Term>,
    interned: FxHashMap<Term, TermId>,
    symbols: Vec<String>,
    vars_by_name: FxHashMap<String, TermId>,
    funs: Vec<FunDecl>,
    funs_by_name: FxHashMap<String, u32>,
    fresh_counter: u64,
}

impl TermSnapshot {
    /// Number of distinct terms frozen in this snapshot.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` when the snapshot holds no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

impl TermManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        TermManager::default()
    }

    /// Creates a manager that shares the interned prefix in `base`.
    ///
    /// All ids minted before the snapshot resolve identically in the new
    /// manager; terms interned afterwards land in a private tail.  Managers
    /// built from the same snapshot allocate identical ids for identical
    /// construction sequences, which is what keeps parallel rounds
    /// bit-identical.
    pub fn from_snapshot(base: Arc<TermSnapshot>) -> Self {
        let tail = TermSnapshot {
            fresh_counter: base.fresh_counter,
            ..TermSnapshot::default()
        };
        TermManager { base, tail }
    }

    /// Freezes the current store into an immutable, shareable snapshot.
    ///
    /// The manager keeps working afterwards (new terms go to a fresh tail
    /// on top of the returned snapshot); if nothing was interned since the
    /// last call this is a free `Arc` clone.
    pub fn snapshot(&mut self) -> Arc<TermSnapshot> {
        let tail_untouched = self.tail.terms.is_empty()
            && self.tail.symbols.is_empty()
            && self.tail.funs.is_empty()
            && self.tail.fresh_counter == self.base.fresh_counter;
        if tail_untouched {
            return Arc::clone(&self.base);
        }
        let tail = std::mem::take(&mut self.tail);
        // Flatten base + tail.  Reuse the base allocation when this manager
        // holds the only reference; ids stay valid either way because the
        // frozen prefix is append-only.
        let mut snap = Arc::try_unwrap(std::mem::take(&mut self.base))
            .unwrap_or_else(|shared| (*shared).clone());
        snap.terms.extend(tail.terms);
        snap.interned.extend(tail.interned);
        snap.symbols.extend(tail.symbols);
        snap.vars_by_name.extend(tail.vars_by_name);
        snap.funs.extend(tail.funs);
        snap.funs_by_name.extend(tail.funs_by_name);
        snap.fresh_counter = tail.fresh_counter;
        self.tail.fresh_counter = snap.fresh_counter;
        self.base = Arc::new(snap);
        Arc::clone(&self.base)
    }

    /// Number of distinct terms created so far.
    pub fn len(&self) -> usize {
        self.base.terms.len() + self.tail.terms.len()
    }

    /// Returns `true` when no terms have been created.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.base.interned.get(&term) {
            return id;
        }
        if let Some(&id) = self.tail.interned.get(&term) {
            return id;
        }
        let id = TermId::from_index(self.len());
        self.tail.terms.push(term.clone());
        self.tail.interned.insert(term, id);
        id
    }

    /// Returns the interned term for `id`.
    pub fn term(&self, id: TermId) -> &Term {
        let i = id.index();
        let frozen = self.base.terms.len();
        if i < frozen {
            &self.base.terms[i]
        } else {
            &self.tail.terms[i - frozen]
        }
    }

    /// Returns the operator of `id`.
    pub fn op(&self, id: TermId) -> &Op {
        &self.term(id).op
    }

    /// Returns the children of `id`.
    pub fn children(&self, id: TermId) -> &[TermId] {
        &self.term(id).children
    }

    /// Returns the sort of `id`.
    pub fn sort(&self, id: TermId) -> Sort {
        self.term(id).sort.clone()
    }

    /// Returns the variable's name if `id` is a variable.
    pub fn var_name(&self, id: TermId) -> Option<&str> {
        match self.op(id) {
            Op::Var(sym) => {
                let s = *sym as usize;
                let frozen = self.base.symbols.len();
                Some(if s < frozen {
                    &self.base.symbols[s]
                } else {
                    &self.tail.symbols[s - frozen]
                })
            }
            _ => None,
        }
    }

    /// Looks up a previously declared variable by name.
    pub fn find_var(&self, name: &str) -> Option<TermId> {
        self.base
            .vars_by_name
            .get(name)
            .or_else(|| self.tail.vars_by_name.get(name))
            .copied()
    }

    /// Returns the declaration of uninterpreted function `fun`.
    pub fn fun_decl(&self, fun: u32) -> &FunDecl {
        let f = fun as usize;
        let frozen = self.base.funs.len();
        if f < frozen {
            &self.base.funs[f]
        } else {
            &self.tail.funs[f - frozen]
        }
    }

    /// Looks up an uninterpreted function by name.
    pub fn find_fun(&self, name: &str) -> Option<u32> {
        self.base
            .funs_by_name
            .get(name)
            .or_else(|| self.tail.funs_by_name.get(name))
            .copied()
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Creates (or returns) the variable `name` of sort `sort`.
    ///
    /// Declaring the same name twice with the same sort returns the original
    /// variable; redeclaring with a different sort panics (use unique names).
    pub fn mk_var(&mut self, name: &str, sort: Sort) -> TermId {
        if let Some(id) = self.find_var(name) {
            assert_eq!(
                self.sort(id),
                sort,
                "variable {name} redeclared with a different sort"
            );
            return id;
        }
        let sym = (self.base.symbols.len() + self.tail.symbols.len()) as u32;
        self.tail.symbols.push(name.to_string());
        let id = self.intern(Term {
            op: Op::Var(sym),
            children: vec![],
            sort,
        });
        self.tail.vars_by_name.insert(name.to_string(), id);
        id
    }

    /// Creates a fresh variable whose name starts with `prefix`.
    pub fn mk_fresh_var(&mut self, prefix: &str, sort: Sort) -> TermId {
        loop {
            let name = format!("{prefix}!{}", self.tail.fresh_counter);
            self.tail.fresh_counter += 1;
            if self.find_var(&name).is_none() {
                return self.mk_var(&name, sort);
            }
        }
    }

    /// Declares an uninterpreted function and returns its index.
    pub fn declare_fun(&mut self, name: &str, args: Vec<Sort>, ret: Sort) -> u32 {
        if let Some(f) = self.find_fun(name) {
            return f;
        }
        let f = (self.base.funs.len() + self.tail.funs.len()) as u32;
        self.tail.funs.push(FunDecl {
            name: name.to_string(),
            args,
            ret,
        });
        self.tail.funs_by_name.insert(name.to_string(), f);
        f
    }

    /// The boolean constant `true`.
    pub fn mk_true(&mut self) -> TermId {
        self.intern(Term {
            op: Op::BoolConst(true),
            children: vec![],
            sort: Sort::Bool,
        })
    }

    /// The boolean constant `false`.
    pub fn mk_false(&mut self) -> TermId {
        self.intern(Term {
            op: Op::BoolConst(false),
            children: vec![],
            sort: Sort::Bool,
        })
    }

    /// A boolean constant.
    pub fn mk_bool(&mut self, b: bool) -> TermId {
        if b {
            self.mk_true()
        } else {
            self.mk_false()
        }
    }

    /// A bit-vector constant of the given width.
    pub fn mk_bv_const(&mut self, value: u128, width: u32) -> TermId {
        let v = BvValue::new(value, width);
        self.intern(Term {
            op: Op::BvConst(v),
            children: vec![],
            sort: Sort::BitVec(width),
        })
    }

    /// A bit-vector constant from an existing [`BvValue`].
    pub fn mk_bv_value(&mut self, value: BvValue) -> TermId {
        self.intern(Term {
            op: Op::BvConst(value),
            children: vec![],
            sort: Sort::BitVec(value.width()),
        })
    }

    /// A real constant.
    pub fn mk_real_const(&mut self, value: Rational) -> TermId {
        self.intern(Term {
            op: Op::RealConst(value),
            children: vec![],
            sort: Sort::Real,
        })
    }

    /// A bounded-integer constant (its sort is the singleton range).
    pub fn mk_int_const(&mut self, value: i64) -> TermId {
        self.intern(Term {
            op: Op::IntConst(value),
            children: vec![],
            sort: Sort::BoundedInt {
                lo: value,
                hi: value,
            },
        })
    }

    // ------------------------------------------------------------------
    // Booleans
    // ------------------------------------------------------------------

    fn expect_bool(&self, id: TermId, context: &str) -> Result<()> {
        if self.sort(id) == Sort::Bool {
            Ok(())
        } else {
            Err(IrError::SortMismatch {
                context: format!("{context}: expected Bool, got {}", self.sort(id)),
            })
        }
    }

    /// Logical negation, folding constants and double negation.
    pub fn mk_not(&mut self, a: TermId) -> TermId {
        match self.op(a) {
            Op::BoolConst(b) => {
                let b = !*b;
                self.mk_bool(b)
            }
            Op::Not => self.children(a)[0],
            _ => self.intern(Term {
                op: Op::Not,
                children: vec![a],
                sort: Sort::Bool,
            }),
        }
    }

    /// N-ary conjunction; units and constants are folded away.
    pub fn mk_and(&mut self, args: impl IntoIterator<Item = TermId>) -> TermId {
        let mut children = Vec::new();
        for a in args {
            match self.op(a) {
                Op::BoolConst(true) => {}
                Op::BoolConst(false) => return self.mk_false(),
                Op::And => children.extend(self.children(a).to_vec()),
                _ => children.push(a),
            }
        }
        children.sort();
        children.dedup();
        match children.len() {
            0 => self.mk_true(),
            1 => children[0],
            _ => self.intern(Term {
                op: Op::And,
                children,
                sort: Sort::Bool,
            }),
        }
    }

    /// N-ary disjunction; units and constants are folded away.
    pub fn mk_or(&mut self, args: impl IntoIterator<Item = TermId>) -> TermId {
        let mut children = Vec::new();
        for a in args {
            match self.op(a) {
                Op::BoolConst(false) => {}
                Op::BoolConst(true) => return self.mk_true(),
                Op::Or => children.extend(self.children(a).to_vec()),
                _ => children.push(a),
            }
        }
        children.sort();
        children.dedup();
        match children.len() {
            0 => self.mk_false(),
            1 => children[0],
            _ => self.intern(Term {
                op: Op::Or,
                children,
                sort: Sort::Bool,
            }),
        }
    }

    /// Binary boolean exclusive or.
    pub fn mk_xor(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.expect_bool(a, "xor")?;
        self.expect_bool(b, "xor")?;
        if let (Op::BoolConst(x), Op::BoolConst(y)) = (self.op(a).clone(), self.op(b).clone()) {
            return Ok(self.mk_bool(x ^ y));
        }
        if a == b {
            return Ok(self.mk_false());
        }
        Ok(self.intern(Term {
            op: Op::Xor,
            children: vec![a, b],
            sort: Sort::Bool,
        }))
    }

    /// Implication `a => b`.
    pub fn mk_implies(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.expect_bool(a, "implies")?;
        self.expect_bool(b, "implies")?;
        let not_a = self.mk_not(a);
        Ok(self.mk_or([not_a, b]))
    }

    /// If-then-else over any sort.
    pub fn mk_ite(&mut self, cond: TermId, then: TermId, els: TermId) -> Result<TermId> {
        self.expect_bool(cond, "ite condition")?;
        let sort = self.sort(then);
        if sort != self.sort(els) {
            return Err(IrError::SortMismatch {
                context: format!("ite branches: {} vs {}", self.sort(then), self.sort(els)),
            });
        }
        match self.op(cond) {
            Op::BoolConst(true) => return Ok(then),
            Op::BoolConst(false) => return Ok(els),
            _ => {}
        }
        if then == els {
            return Ok(then);
        }
        Ok(self.intern(Term {
            op: Op::Ite,
            children: vec![cond, then, els],
            sort,
        }))
    }

    /// Equality between two terms of the same sort.
    pub fn mk_eq(&mut self, a: TermId, b: TermId) -> TermId {
        assert_eq!(
            self.sort(a),
            self.sort(b),
            "equality between different sorts: {} vs {}",
            self.sort(a),
            self.sort(b)
        );
        if a == b {
            return self.mk_true();
        }
        if let (Op::BvConst(x), Op::BvConst(y)) = (self.op(a), self.op(b)) {
            let eq = x == y;
            return self.mk_bool(eq);
        }
        if let (Op::BoolConst(x), Op::BoolConst(y)) = (self.op(a), self.op(b)) {
            let eq = x == y;
            return self.mk_bool(eq);
        }
        if let (Op::RealConst(x), Op::RealConst(y)) = (self.op(a), self.op(b)) {
            let eq = x == y;
            return self.mk_bool(eq);
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(Term {
            op: Op::Eq,
            children: vec![a, b],
            sort: Sort::Bool,
        })
    }

    /// Pairwise distinctness of the given terms.
    pub fn mk_distinct(&mut self, args: Vec<TermId>) -> TermId {
        if args.len() < 2 {
            return self.mk_true();
        }
        if args.len() == 2 {
            let eq = self.mk_eq(args[0], args[1]);
            return self.mk_not(eq);
        }
        self.intern(Term {
            op: Op::Distinct,
            children: args,
            sort: Sort::Bool,
        })
    }

    // ------------------------------------------------------------------
    // Bit-vectors
    // ------------------------------------------------------------------

    fn bv_width_of(&self, id: TermId, context: &str) -> Result<u32> {
        self.sort(id)
            .bv_width()
            .ok_or_else(|| IrError::SortMismatch {
                context: format!("{context}: expected bit-vector, got {}", self.sort(id)),
            })
    }

    fn mk_bv_binop(&mut self, op: Op, a: TermId, b: TermId, name: &str) -> Result<TermId> {
        let wa = self.bv_width_of(a, name)?;
        let wb = self.bv_width_of(b, name)?;
        if wa != wb {
            return Err(IrError::SortMismatch {
                context: format!("{name}: width {wa} vs {wb}"),
            });
        }
        if let (Op::BvConst(x), Op::BvConst(y)) = (self.op(a), self.op(b)) {
            let (x, y) = (*x, *y);
            let folded = match op {
                Op::BvAdd => Some(x.wrapping_add(&y)),
                Op::BvMul => Some(x.wrapping_mul(&y)),
                Op::BvXor => Some(x.xor(&y)),
                Op::BvAnd => Some(BvValue::new(x.as_u128() & y.as_u128(), wa)),
                Op::BvOr => Some(BvValue::new(x.as_u128() | y.as_u128(), wa)),
                Op::BvSub => Some(BvValue::new(x.as_u128().wrapping_sub(y.as_u128()), wa)),
                _ => None,
            };
            if let Some(v) = folded {
                return Ok(self.mk_bv_value(v));
            }
        }
        Ok(self.intern(Term {
            op,
            children: vec![a, b],
            sort: Sort::BitVec(wa),
        }))
    }

    /// Modular bit-vector addition.
    pub fn mk_bv_add(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_bv_binop(Op::BvAdd, a, b, "bvadd")
    }

    /// Modular bit-vector subtraction.
    pub fn mk_bv_sub(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_bv_binop(Op::BvSub, a, b, "bvsub")
    }

    /// Modular bit-vector multiplication.
    pub fn mk_bv_mul(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_bv_binop(Op::BvMul, a, b, "bvmul")
    }

    /// Unsigned bit-vector division.
    pub fn mk_bv_udiv(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_bv_binop(Op::BvUdiv, a, b, "bvudiv")
    }

    /// Unsigned bit-vector remainder.
    pub fn mk_bv_urem(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_bv_binop(Op::BvUrem, a, b, "bvurem")
    }

    /// Bitwise and.
    pub fn mk_bv_and(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_bv_binop(Op::BvAnd, a, b, "bvand")
    }

    /// Bitwise or.
    pub fn mk_bv_or(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_bv_binop(Op::BvOr, a, b, "bvor")
    }

    /// Bitwise exclusive or.
    pub fn mk_bv_xor(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_bv_binop(Op::BvXor, a, b, "bvxor")
    }

    /// Logical left shift.
    pub fn mk_bv_shl(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_bv_binop(Op::BvShl, a, b, "bvshl")
    }

    /// Logical right shift.
    pub fn mk_bv_lshr(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_bv_binop(Op::BvLshr, a, b, "bvlshr")
    }

    /// Arithmetic right shift.
    pub fn mk_bv_ashr(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_bv_binop(Op::BvAshr, a, b, "bvashr")
    }

    /// Bitwise complement.
    pub fn mk_bv_not(&mut self, a: TermId) -> Result<TermId> {
        let w = self.bv_width_of(a, "bvnot")?;
        if let Op::BvConst(x) = self.op(a) {
            let v = BvValue::new(!x.as_u128(), w);
            return Ok(self.mk_bv_value(v));
        }
        Ok(self.intern(Term {
            op: Op::BvNot,
            children: vec![a],
            sort: Sort::BitVec(w),
        }))
    }

    /// Two's-complement negation.
    pub fn mk_bv_neg(&mut self, a: TermId) -> Result<TermId> {
        let w = self.bv_width_of(a, "bvneg")?;
        if let Op::BvConst(x) = self.op(a) {
            let v = BvValue::new(x.as_u128().wrapping_neg(), w);
            return Ok(self.mk_bv_value(v));
        }
        Ok(self.intern(Term {
            op: Op::BvNeg,
            children: vec![a],
            sort: Sort::BitVec(w),
        }))
    }

    /// Concatenation (`a` provides the high bits).
    pub fn mk_bv_concat(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        let wa = self.bv_width_of(a, "concat")?;
        let wb = self.bv_width_of(b, "concat")?;
        if let (Op::BvConst(x), Op::BvConst(y)) = (self.op(a), self.op(b)) {
            let v = x.concat(y);
            return Ok(self.mk_bv_value(v));
        }
        Ok(self.intern(Term {
            op: Op::BvConcat,
            children: vec![a, b],
            sort: Sort::BitVec(wa + wb),
        }))
    }

    /// Bit extraction `[hi:lo]`.
    pub fn mk_bv_extract(&mut self, a: TermId, hi: u32, lo: u32) -> Result<TermId> {
        let w = self.bv_width_of(a, "extract")?;
        if hi < lo || hi >= w {
            return Err(IrError::SortMismatch {
                context: format!("extract [{hi}:{lo}] out of range for width {w}"),
            });
        }
        if hi == w - 1 && lo == 0 {
            return Ok(a);
        }
        if let Op::BvConst(x) = self.op(a) {
            let v = x.extract(hi, lo);
            return Ok(self.mk_bv_value(v));
        }
        Ok(self.intern(Term {
            op: Op::BvExtract { hi, lo },
            children: vec![a],
            sort: Sort::BitVec(hi - lo + 1),
        }))
    }

    /// Zero extension by `by` bits.
    pub fn mk_bv_zero_extend(&mut self, a: TermId, by: u32) -> Result<TermId> {
        let w = self.bv_width_of(a, "zero_extend")?;
        if by == 0 {
            return Ok(a);
        }
        if let Op::BvConst(x) = self.op(a) {
            let v = BvValue::new(x.as_u128(), w + by);
            return Ok(self.mk_bv_value(v));
        }
        Ok(self.intern(Term {
            op: Op::BvZeroExtend(by),
            children: vec![a],
            sort: Sort::BitVec(w + by),
        }))
    }

    /// Sign extension by `by` bits.
    pub fn mk_bv_sign_extend(&mut self, a: TermId, by: u32) -> Result<TermId> {
        let w = self.bv_width_of(a, "sign_extend")?;
        if by == 0 {
            return Ok(a);
        }
        Ok(self.intern(Term {
            op: Op::BvSignExtend(by),
            children: vec![a],
            sort: Sort::BitVec(w + by),
        }))
    }

    fn mk_bv_cmp(&mut self, op: Op, a: TermId, b: TermId, name: &str) -> Result<TermId> {
        let wa = self.bv_width_of(a, name)?;
        let wb = self.bv_width_of(b, name)?;
        if wa != wb {
            return Err(IrError::SortMismatch {
                context: format!("{name}: width {wa} vs {wb}"),
            });
        }
        if let (Op::BvConst(x), Op::BvConst(y)) = (self.op(a), self.op(b)) {
            let result = match op {
                Op::BvUlt => x.as_u128() < y.as_u128(),
                Op::BvUle => x.as_u128() <= y.as_u128(),
                Op::BvSlt => x.as_i128() < y.as_i128(),
                Op::BvSle => x.as_i128() <= y.as_i128(),
                _ => unreachable!(),
            };
            return Ok(self.mk_bool(result));
        }
        Ok(self.intern(Term {
            op,
            children: vec![a, b],
            sort: Sort::Bool,
        }))
    }

    /// Unsigned less-than.
    pub fn mk_bv_ult(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_bv_cmp(Op::BvUlt, a, b, "bvult")
    }

    /// Unsigned less-or-equal.
    pub fn mk_bv_ule(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_bv_cmp(Op::BvUle, a, b, "bvule")
    }

    /// Signed less-than.
    pub fn mk_bv_slt(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_bv_cmp(Op::BvSlt, a, b, "bvslt")
    }

    /// Signed less-or-equal.
    pub fn mk_bv_sle(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_bv_cmp(Op::BvSle, a, b, "bvsle")
    }

    // ------------------------------------------------------------------
    // Reals
    // ------------------------------------------------------------------

    fn expect_real(&self, id: TermId, context: &str) -> Result<()> {
        if self.sort(id) == Sort::Real {
            Ok(())
        } else {
            Err(IrError::SortMismatch {
                context: format!("{context}: expected Real, got {}", self.sort(id)),
            })
        }
    }

    /// N-ary real addition.
    pub fn mk_real_add(&mut self, args: Vec<TermId>) -> Result<TermId> {
        for &a in &args {
            self.expect_real(a, "real add")?;
        }
        match args.len() {
            0 => Ok(self.mk_real_const(Rational::ZERO)),
            1 => Ok(args[0]),
            _ => Ok(self.intern(Term {
                op: Op::RealAdd,
                children: args,
                sort: Sort::Real,
            })),
        }
    }

    /// Real subtraction.
    pub fn mk_real_sub(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.expect_real(a, "real sub")?;
        self.expect_real(b, "real sub")?;
        Ok(self.intern(Term {
            op: Op::RealSub,
            children: vec![a, b],
            sort: Sort::Real,
        }))
    }

    /// Real multiplication (linear fragments require a constant factor; the
    /// solver rejects non-linear products at solve time).
    pub fn mk_real_mul(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.expect_real(a, "real mul")?;
        self.expect_real(b, "real mul")?;
        if let (Op::RealConst(x), Op::RealConst(y)) = (self.op(a), self.op(b)) {
            let v = *x * *y;
            return Ok(self.mk_real_const(v));
        }
        Ok(self.intern(Term {
            op: Op::RealMul,
            children: vec![a, b],
            sort: Sort::Real,
        }))
    }

    /// Real negation.
    pub fn mk_real_neg(&mut self, a: TermId) -> Result<TermId> {
        self.expect_real(a, "real neg")?;
        if let Op::RealConst(x) = self.op(a) {
            let v = -*x;
            return Ok(self.mk_real_const(v));
        }
        Ok(self.intern(Term {
            op: Op::RealNeg,
            children: vec![a],
            sort: Sort::Real,
        }))
    }

    /// Strict real less-than.
    pub fn mk_real_lt(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.expect_real(a, "real lt")?;
        self.expect_real(b, "real lt")?;
        if let (Op::RealConst(x), Op::RealConst(y)) = (self.op(a), self.op(b)) {
            let r = x < y;
            return Ok(self.mk_bool(r));
        }
        Ok(self.intern(Term {
            op: Op::RealLt,
            children: vec![a, b],
            sort: Sort::Bool,
        }))
    }

    /// Real less-or-equal.
    pub fn mk_real_le(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.expect_real(a, "real le")?;
        self.expect_real(b, "real le")?;
        if let (Op::RealConst(x), Op::RealConst(y)) = (self.op(a), self.op(b)) {
            let r = x <= y;
            return Ok(self.mk_bool(r));
        }
        Ok(self.intern(Term {
            op: Op::RealLe,
            children: vec![a, b],
            sort: Sort::Bool,
        }))
    }

    // ------------------------------------------------------------------
    // Floating point (relaxed)
    // ------------------------------------------------------------------

    fn expect_float(&self, id: TermId, context: &str) -> Result<()> {
        if matches!(self.sort(id), Sort::Float { .. }) {
            Ok(())
        } else {
            Err(IrError::SortMismatch {
                context: format!("{context}: expected FloatingPoint, got {}", self.sort(id)),
            })
        }
    }

    fn mk_fp_binop(&mut self, op: Op, a: TermId, b: TermId, name: &str) -> Result<TermId> {
        self.expect_float(a, name)?;
        self.expect_float(b, name)?;
        let sort = self.sort(a);
        if sort != self.sort(b) {
            return Err(IrError::SortMismatch {
                context: format!("{name}: mismatched float sorts"),
            });
        }
        Ok(self.intern(Term {
            op,
            children: vec![a, b],
            sort,
        }))
    }

    fn mk_fp_pred(&mut self, op: Op, a: TermId, b: TermId, name: &str) -> Result<TermId> {
        self.expect_float(a, name)?;
        self.expect_float(b, name)?;
        Ok(self.intern(Term {
            op,
            children: vec![a, b],
            sort: Sort::Bool,
        }))
    }

    /// Floating point addition.
    pub fn mk_fp_add(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_fp_binop(Op::FpAdd, a, b, "fp.add")
    }

    /// Floating point subtraction.
    pub fn mk_fp_sub(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_fp_binop(Op::FpSub, a, b, "fp.sub")
    }

    /// Floating point multiplication.
    pub fn mk_fp_mul(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_fp_binop(Op::FpMul, a, b, "fp.mul")
    }

    /// Floating point negation.
    pub fn mk_fp_neg(&mut self, a: TermId) -> Result<TermId> {
        self.expect_float(a, "fp.neg")?;
        let sort = self.sort(a);
        Ok(self.intern(Term {
            op: Op::FpNeg,
            children: vec![a],
            sort,
        }))
    }

    /// Floating point equality predicate.
    pub fn mk_fp_eq(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_fp_pred(Op::FpEq, a, b, "fp.eq")
    }

    /// Floating point less-than predicate.
    pub fn mk_fp_lt(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_fp_pred(Op::FpLt, a, b, "fp.lt")
    }

    /// Floating point less-or-equal predicate.
    pub fn mk_fp_le(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.mk_fp_pred(Op::FpLe, a, b, "fp.leq")
    }

    /// Conversion from floating point to real.
    pub fn mk_fp_to_real(&mut self, a: TermId) -> Result<TermId> {
        self.expect_float(a, "fp.to_real")?;
        Ok(self.intern(Term {
            op: Op::FpToReal,
            children: vec![a],
            sort: Sort::Real,
        }))
    }

    /// Conversion from real to floating point of the given sort.
    pub fn mk_real_to_fp(&mut self, a: TermId, sort: Sort) -> Result<TermId> {
        self.expect_real(a, "to_fp")?;
        if !matches!(sort, Sort::Float { .. }) {
            return Err(IrError::SortMismatch {
                context: "to_fp target sort must be FloatingPoint".to_string(),
            });
        }
        Ok(self.intern(Term {
            op: Op::RealToFp,
            children: vec![a],
            sort,
        }))
    }

    // ------------------------------------------------------------------
    // Bounded integers
    // ------------------------------------------------------------------

    fn expect_int(&self, id: TermId, context: &str) -> Result<(i64, i64)> {
        match self.sort(id) {
            Sort::BoundedInt { lo, hi } => Ok((lo, hi)),
            other => Err(IrError::SortMismatch {
                context: format!("{context}: expected BoundedInt, got {other}"),
            }),
        }
    }

    /// Bounded-integer addition; the result bound is the interval sum.
    pub fn mk_int_add(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        let (alo, ahi) = self.expect_int(a, "int add")?;
        let (blo, bhi) = self.expect_int(b, "int add")?;
        Ok(self.intern(Term {
            op: Op::IntAdd,
            children: vec![a, b],
            sort: Sort::BoundedInt {
                lo: alo.saturating_add(blo),
                hi: ahi.saturating_add(bhi),
            },
        }))
    }

    /// Bounded-integer less-or-equal.
    pub fn mk_int_le(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.expect_int(a, "int le")?;
        self.expect_int(b, "int le")?;
        Ok(self.intern(Term {
            op: Op::IntLe,
            children: vec![a, b],
            sort: Sort::Bool,
        }))
    }

    /// Bounded-integer less-than.
    pub fn mk_int_lt(&mut self, a: TermId, b: TermId) -> Result<TermId> {
        self.expect_int(a, "int lt")?;
        self.expect_int(b, "int lt")?;
        Ok(self.intern(Term {
            op: Op::IntLt,
            children: vec![a, b],
            sort: Sort::Bool,
        }))
    }

    // ------------------------------------------------------------------
    // Arrays and uninterpreted functions
    // ------------------------------------------------------------------

    /// Array read `(select a i)`.
    pub fn mk_select(&mut self, array: TermId, index: TermId) -> Result<TermId> {
        match self.sort(array) {
            Sort::Array {
                index: isort,
                element,
            } => {
                if *isort != self.sort(index) {
                    return Err(IrError::SortMismatch {
                        context: format!(
                            "select index: expected {isort}, got {}",
                            self.sort(index)
                        ),
                    });
                }
                Ok(self.intern(Term {
                    op: Op::Select,
                    children: vec![array, index],
                    sort: *element,
                }))
            }
            other => Err(IrError::SortMismatch {
                context: format!("select on non-array sort {other}"),
            }),
        }
    }

    /// Array write `(store a i v)`.
    pub fn mk_store(&mut self, array: TermId, index: TermId, value: TermId) -> Result<TermId> {
        let sort = self.sort(array);
        match &sort {
            Sort::Array {
                index: isort,
                element,
            } => {
                if **isort != self.sort(index) || **element != self.sort(value) {
                    return Err(IrError::SortMismatch {
                        context: "store index/value sorts do not match array sort".to_string(),
                    });
                }
                Ok(self.intern(Term {
                    op: Op::Store,
                    children: vec![array, index, value],
                    sort,
                }))
            }
            other => Err(IrError::SortMismatch {
                context: format!("store on non-array sort {other}"),
            }),
        }
    }

    /// Application of a previously declared uninterpreted function.
    pub fn mk_apply(&mut self, fun: u32, args: Vec<TermId>) -> Result<TermId> {
        let decl = self.fun_decl(fun).clone();
        if decl.args.len() != args.len() {
            return Err(IrError::SortMismatch {
                context: format!(
                    "{} expects {} arguments, got {}",
                    decl.name,
                    decl.args.len(),
                    args.len()
                ),
            });
        }
        for (expected, &actual) in decl.args.iter().zip(&args) {
            if *expected != self.sort(actual) {
                return Err(IrError::SortMismatch {
                    context: format!(
                        "{}: argument sort {} expected, got {}",
                        decl.name,
                        expected,
                        self.sort(actual)
                    ),
                });
            }
        }
        Ok(self.intern(Term {
            op: Op::Apply(fun),
            children: args,
            sort: decl.ret,
        }))
    }

    // ------------------------------------------------------------------
    // Traversal utilities
    // ------------------------------------------------------------------

    /// Collects all distinct variables reachable from `roots`, in a
    /// deterministic (id) order.
    pub fn vars_of(&self, roots: &[TermId]) -> Vec<TermId> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<TermId> = roots.to_vec();
        let mut vars = Vec::new();
        while let Some(t) = stack.pop() {
            if seen[t.index()] {
                continue;
            }
            seen[t.index()] = true;
            if matches!(self.op(t), Op::Var(_)) {
                vars.push(t);
            }
            stack.extend(self.children(t).iter().copied());
        }
        vars.sort();
        vars
    }

    /// Creates a copy of `root` in which every variable is replaced by a
    /// fresh variable whose name is suffixed with `suffix`.
    ///
    /// Used by the CDM baseline, which self-composes the formula.
    /// Returns the copied root along with the mapping from original to fresh
    /// variables.
    pub fn clone_with_fresh_vars(
        &mut self,
        root: TermId,
        suffix: &str,
    ) -> (TermId, HashMap<TermId, TermId>) {
        let vars = self.vars_of(&[root]);
        let mut map = HashMap::new();
        for v in vars {
            let name = format!("{}@{}", self.var_name(v).unwrap_or("v"), suffix);
            let sort = self.sort(v);
            let fresh = self.mk_var(&name, sort);
            map.insert(v, fresh);
        }
        let copied = self.substitute(root, &map);
        (copied, map)
    }

    /// Substitutes terms bottom-up: every occurrence of a key in `map` is
    /// replaced by its value.
    pub fn substitute(&mut self, root: TermId, map: &HashMap<TermId, TermId>) -> TermId {
        let mut cache: HashMap<TermId, TermId> = map.clone();
        self.substitute_rec(root, &mut cache)
    }

    fn substitute_rec(&mut self, t: TermId, cache: &mut HashMap<TermId, TermId>) -> TermId {
        if let Some(&r) = cache.get(&t) {
            return r;
        }
        let term = self.term(t).clone();
        if term.children.is_empty() {
            cache.insert(t, t);
            return t;
        }
        let new_children: Vec<TermId> = term
            .children
            .iter()
            .map(|&c| self.substitute_rec(c, cache))
            .collect();
        let result = if new_children == term.children {
            t
        } else {
            self.intern(Term {
                op: term.op,
                children: new_children,
                sort: term.sort,
            })
        };
        cache.insert(t, result);
        result
    }

    /// Evaluates a term under a variable assignment.
    ///
    /// Returns `None` if the term contains operators that cannot be evaluated
    /// without theory-specific reasoning (arrays, uninterpreted functions,
    /// floating point arithmetic) or if a variable is missing from the
    /// assignment.
    pub fn eval(&self, t: TermId, assignment: &HashMap<TermId, Value>) -> Option<Value> {
        match self.op(t).clone() {
            Op::Var(_) => assignment.get(&t).cloned(),
            Op::BoolConst(b) => Some(Value::Bool(b)),
            Op::BvConst(v) => Some(Value::Bv(v)),
            Op::RealConst(r) => Some(Value::Real(r)),
            Op::IntConst(i) => Some(Value::Int(i)),
            Op::Not => {
                let a = self.eval(self.children(t)[0], assignment)?.as_bool()?;
                Some(Value::Bool(!a))
            }
            Op::And => {
                let mut acc = true;
                for &c in self.children(t) {
                    acc &= self.eval(c, assignment)?.as_bool()?;
                }
                Some(Value::Bool(acc))
            }
            Op::Or => {
                let mut acc = false;
                for &c in self.children(t) {
                    acc |= self.eval(c, assignment)?.as_bool()?;
                }
                Some(Value::Bool(acc))
            }
            Op::Xor => {
                let a = self.eval(self.children(t)[0], assignment)?.as_bool()?;
                let b = self.eval(self.children(t)[1], assignment)?.as_bool()?;
                Some(Value::Bool(a ^ b))
            }
            Op::Implies => {
                let a = self.eval(self.children(t)[0], assignment)?.as_bool()?;
                let b = self.eval(self.children(t)[1], assignment)?.as_bool()?;
                Some(Value::Bool(!a || b))
            }
            Op::Ite => {
                let c = self.eval(self.children(t)[0], assignment)?.as_bool()?;
                let branch = if c {
                    self.children(t)[1]
                } else {
                    self.children(t)[2]
                };
                self.eval(branch, assignment)
            }
            Op::Eq => {
                let a = self.eval(self.children(t)[0], assignment)?;
                let b = self.eval(self.children(t)[1], assignment)?;
                Some(Value::Bool(a == b))
            }
            Op::Distinct => {
                let vals: Option<Vec<Value>> = self
                    .children(t)
                    .iter()
                    .map(|&c| self.eval(c, assignment))
                    .collect();
                let vals = vals?;
                for i in 0..vals.len() {
                    for j in i + 1..vals.len() {
                        if vals[i] == vals[j] {
                            return Some(Value::Bool(false));
                        }
                    }
                }
                Some(Value::Bool(true))
            }
            Op::BvNot => {
                let a = self.eval(self.children(t)[0], assignment)?.as_bv()?;
                Some(Value::Bv(BvValue::new(!a.as_u128(), a.width())))
            }
            Op::BvNeg => {
                let a = self.eval(self.children(t)[0], assignment)?.as_bv()?;
                Some(Value::Bv(BvValue::new(
                    a.as_u128().wrapping_neg(),
                    a.width(),
                )))
            }
            Op::BvAdd
            | Op::BvSub
            | Op::BvMul
            | Op::BvAnd
            | Op::BvOr
            | Op::BvXor
            | Op::BvUdiv
            | Op::BvUrem
            | Op::BvShl
            | Op::BvLshr
            | Op::BvAshr => {
                let a = self.eval(self.children(t)[0], assignment)?.as_bv()?;
                let b = self.eval(self.children(t)[1], assignment)?.as_bv()?;
                let w = a.width();
                let bits = match self.op(t) {
                    Op::BvAdd => a.as_u128().wrapping_add(b.as_u128()),
                    Op::BvSub => a.as_u128().wrapping_sub(b.as_u128()),
                    Op::BvMul => a.as_u128().wrapping_mul(b.as_u128()),
                    Op::BvAnd => a.as_u128() & b.as_u128(),
                    Op::BvOr => a.as_u128() | b.as_u128(),
                    Op::BvXor => a.as_u128() ^ b.as_u128(),
                    Op::BvUdiv => {
                        if b.as_u128() == 0 {
                            u128::MAX
                        } else {
                            a.as_u128() / b.as_u128()
                        }
                    }
                    Op::BvUrem => {
                        if b.as_u128() == 0 {
                            a.as_u128()
                        } else {
                            a.as_u128() % b.as_u128()
                        }
                    }
                    Op::BvShl => {
                        let s = b.as_u128().min(127) as u32;
                        if s >= w {
                            0
                        } else {
                            a.as_u128() << s
                        }
                    }
                    Op::BvLshr => {
                        let s = b.as_u128().min(127) as u32;
                        if s >= w {
                            0
                        } else {
                            a.as_u128() >> s
                        }
                    }
                    Op::BvAshr => {
                        let s = b.as_u128().min(127) as u32;
                        let signed = a.as_i128();
                        if s >= w {
                            if signed < 0 {
                                u128::MAX
                            } else {
                                0
                            }
                        } else {
                            (signed >> s) as u128
                        }
                    }
                    _ => unreachable!(),
                };
                Some(Value::Bv(BvValue::new(bits, w)))
            }
            Op::BvConcat => {
                let a = self.eval(self.children(t)[0], assignment)?.as_bv()?;
                let b = self.eval(self.children(t)[1], assignment)?.as_bv()?;
                Some(Value::Bv(a.concat(&b)))
            }
            Op::BvExtract { hi, lo } => {
                let a = self.eval(self.children(t)[0], assignment)?.as_bv()?;
                Some(Value::Bv(a.extract(hi, lo)))
            }
            Op::BvZeroExtend(by) => {
                let a = self.eval(self.children(t)[0], assignment)?.as_bv()?;
                Some(Value::Bv(BvValue::new(a.as_u128(), a.width() + by)))
            }
            Op::BvSignExtend(by) => {
                let a = self.eval(self.children(t)[0], assignment)?.as_bv()?;
                let w = a.width() + by;
                let v = a.as_i128();
                let bits = if v < 0 {
                    (v as u128)
                        & (if w >= 128 {
                            u128::MAX
                        } else {
                            (1u128 << w) - 1
                        })
                } else {
                    v as u128
                };
                Some(Value::Bv(BvValue::new(bits, w)))
            }
            Op::BvUlt | Op::BvUle | Op::BvSlt | Op::BvSle => {
                let a = self.eval(self.children(t)[0], assignment)?.as_bv()?;
                let b = self.eval(self.children(t)[1], assignment)?.as_bv()?;
                let r = match self.op(t) {
                    Op::BvUlt => a.as_u128() < b.as_u128(),
                    Op::BvUle => a.as_u128() <= b.as_u128(),
                    Op::BvSlt => a.as_i128() < b.as_i128(),
                    Op::BvSle => a.as_i128() <= b.as_i128(),
                    _ => unreachable!(),
                };
                Some(Value::Bool(r))
            }
            Op::RealAdd => {
                let mut acc = Rational::ZERO;
                for &c in self.children(t) {
                    match self.eval(c, assignment)? {
                        Value::Real(r) => acc += r,
                        _ => return None,
                    }
                }
                Some(Value::Real(acc))
            }
            Op::RealSub => {
                let a = self.eval_real(self.children(t)[0], assignment)?;
                let b = self.eval_real(self.children(t)[1], assignment)?;
                Some(Value::Real(a - b))
            }
            Op::RealMul => {
                let a = self.eval_real(self.children(t)[0], assignment)?;
                let b = self.eval_real(self.children(t)[1], assignment)?;
                Some(Value::Real(a * b))
            }
            Op::RealNeg => {
                let a = self.eval_real(self.children(t)[0], assignment)?;
                Some(Value::Real(-a))
            }
            Op::RealLt => {
                let a = self.eval_real(self.children(t)[0], assignment)?;
                let b = self.eval_real(self.children(t)[1], assignment)?;
                Some(Value::Bool(a < b))
            }
            Op::RealLe => {
                let a = self.eval_real(self.children(t)[0], assignment)?;
                let b = self.eval_real(self.children(t)[1], assignment)?;
                Some(Value::Bool(a <= b))
            }
            Op::IntAdd => {
                let a = self.eval_int(self.children(t)[0], assignment)?;
                let b = self.eval_int(self.children(t)[1], assignment)?;
                Some(Value::Int(a + b))
            }
            Op::IntLe => {
                let a = self.eval_int(self.children(t)[0], assignment)?;
                let b = self.eval_int(self.children(t)[1], assignment)?;
                Some(Value::Bool(a <= b))
            }
            Op::IntLt => {
                let a = self.eval_int(self.children(t)[0], assignment)?;
                let b = self.eval_int(self.children(t)[1], assignment)?;
                Some(Value::Bool(a < b))
            }
            // Theory-specific reasoning required; not evaluable here.
            Op::FpAdd
            | Op::FpSub
            | Op::FpMul
            | Op::FpNeg
            | Op::FpEq
            | Op::FpLt
            | Op::FpLe
            | Op::FpToReal
            | Op::RealToFp
            | Op::Select
            | Op::Store
            | Op::Apply(_) => None,
        }
    }

    fn eval_real(&self, t: TermId, assignment: &HashMap<TermId, Value>) -> Option<Rational> {
        match self.eval(t, assignment)? {
            Value::Real(r) => Some(r),
            _ => None,
        }
    }

    fn eval_int(&self, t: TermId, assignment: &HashMap<TermId, Value>) -> Option<i64> {
        match self.eval(t, assignment)? {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_ids() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let y = tm.mk_var("y", Sort::BitVec(8));
        let a = tm.mk_bv_add(x, y).unwrap();
        let b = tm.mk_bv_add(x, y).unwrap();
        assert_eq!(a, b);
        let c = tm.mk_bv_add(y, x).unwrap();
        assert_ne!(a, c); // bvadd is not canonicalised by argument order
    }

    #[test]
    fn boolean_folding() {
        let mut tm = TermManager::new();
        let t = tm.mk_true();
        let f = tm.mk_false();
        let p = tm.mk_var("p", Sort::Bool);
        assert_eq!(tm.mk_and([t, p]), p);
        assert_eq!(tm.mk_and([f, p]), f);
        assert_eq!(tm.mk_or([t, p]), t);
        assert_eq!(tm.mk_or([f, p]), p);
        let np = tm.mk_not(p);
        assert_eq!(tm.mk_not(np), p);
        assert_eq!(tm.mk_not(t), f);
    }

    #[test]
    fn equality_folding() {
        let mut tm = TermManager::new();
        let a = tm.mk_bv_const(3, 8);
        let b = tm.mk_bv_const(3, 8);
        let c = tm.mk_bv_const(4, 8);
        assert_eq!(tm.mk_eq(a, b), tm.mk_true());
        assert_eq!(tm.mk_eq(a, c), tm.mk_false());
        let x = tm.mk_var("x", Sort::BitVec(8));
        assert_eq!(tm.mk_eq(x, x), tm.mk_true());
    }

    #[test]
    fn bv_constant_folding() {
        let mut tm = TermManager::new();
        let a = tm.mk_bv_const(200, 8);
        let b = tm.mk_bv_const(100, 8);
        let sum = tm.mk_bv_add(a, b).unwrap();
        assert_eq!(tm.op(sum), &Op::BvConst(BvValue::new(44, 8)));
        let lt = tm.mk_bv_ult(b, a).unwrap();
        assert_eq!(lt, tm.mk_true());
        let slt = tm.mk_bv_slt(a, b).unwrap(); // 200 is -56 signed
        assert_eq!(slt, tm.mk_true());
    }

    #[test]
    fn sort_errors_are_reported() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let y = tm.mk_var("y", Sort::BitVec(4));
        assert!(tm.mk_bv_add(x, y).is_err());
        let r = tm.mk_var("r", Sort::Real);
        assert!(tm.mk_bv_add(x, r).is_err());
        assert!(tm.mk_real_lt(x, r).is_err());
    }

    #[test]
    fn vars_of_collects_reachable_variables() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let y = tm.mk_var("y", Sort::BitVec(8));
        let _z = tm.mk_var("z", Sort::BitVec(8));
        let sum = tm.mk_bv_add(x, y).unwrap();
        let c = tm.mk_bv_const(7, 8);
        let f = tm.mk_eq(sum, c);
        let vars = tm.vars_of(&[f]);
        assert_eq!(vars, vec![x, y]);
    }

    #[test]
    fn clone_with_fresh_vars_renames_everything() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let c = tm.mk_bv_const(7, 8);
        let f = tm.mk_bv_ult(x, c).unwrap();
        let (g, map) = tm.clone_with_fresh_vars(f, "copy1");
        assert_ne!(f, g);
        let fresh = map[&x];
        assert_eq!(tm.var_name(fresh), Some("x@copy1"));
        assert_eq!(tm.sort(fresh), Sort::BitVec(8));
    }

    #[test]
    fn eval_mixed_formula() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let r = tm.mk_var("r", Sort::Real);
        let c = tm.mk_bv_const(10, 8);
        let lt = tm.mk_bv_ult(x, c).unwrap();
        let half = tm.mk_real_const(Rational::new(1, 2));
        let rle = tm.mk_real_le(r, half).unwrap();
        let f = tm.mk_and([lt, rle]);

        let mut asg = HashMap::new();
        asg.insert(x, Value::Bv(BvValue::new(5, 8)));
        asg.insert(r, Value::Real(Rational::new(1, 4)));
        assert_eq!(tm.eval(f, &asg), Some(Value::Bool(true)));

        asg.insert(x, Value::Bv(BvValue::new(200, 8)));
        assert_eq!(tm.eval(f, &asg), Some(Value::Bool(false)));
    }

    #[test]
    fn ite_and_extract() {
        let mut tm = TermManager::new();
        let p = tm.mk_var("p", Sort::Bool);
        let a = tm.mk_bv_const(0xAB, 8);
        let b = tm.mk_bv_const(0xCD, 8);
        let ite = tm.mk_ite(p, a, b).unwrap();
        assert_eq!(tm.sort(ite), Sort::BitVec(8));
        let hi = tm.mk_bv_extract(a, 7, 4).unwrap();
        assert_eq!(tm.op(hi), &Op::BvConst(BvValue::new(0xA, 4)));
        assert!(tm.mk_bv_extract(a, 8, 0).is_err());
    }

    #[test]
    fn uninterpreted_functions() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", vec![Sort::BitVec(8)], Sort::BitVec(8));
        let x = tm.mk_var("x", Sort::BitVec(8));
        let fx = tm.mk_apply(f, vec![x]).unwrap();
        assert_eq!(tm.sort(fx), Sort::BitVec(8));
        let r = tm.mk_var("r", Sort::Real);
        assert!(tm.mk_apply(f, vec![r]).is_err());
        assert!(tm.mk_apply(f, vec![x, x]).is_err());
    }

    #[test]
    fn snapshot_preserves_ids_and_interning() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let c = tm.mk_bv_const(3, 8);
        let sum = tm.mk_bv_add(x, c).unwrap();
        let before = tm.len();

        let snap = tm.snapshot();
        assert_eq!(snap.len(), before);

        // The originating manager keeps resolving and deduping ids.
        assert_eq!(tm.len(), before);
        assert_eq!(tm.mk_bv_add(x, c).unwrap(), sum);
        assert_eq!(tm.op(sum), &Op::BvAdd);
        assert_eq!(tm.var_name(x), Some("x"));

        // A manager built from the snapshot sees the identical store.
        let shared = TermManager::from_snapshot(snap);
        assert_eq!(shared.len(), before);
        assert_eq!(shared.find_var("x"), Some(x));
        assert_eq!(shared.term(sum), tm.term(sum));
        assert_eq!(shared.sort(sum), Sort::BitVec(8));
    }

    #[test]
    fn snapshot_of_unchanged_store_is_shared() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::Bool);
        let first = tm.snapshot();
        let second = tm.snapshot();
        assert!(Arc::ptr_eq(&first, &second));

        // Interning something new forces a fresh snapshot that still
        // contains the whole frozen prefix.
        let y = tm.mk_var("y", Sort::Bool);
        let third = tm.snapshot();
        assert!(!Arc::ptr_eq(&second, &third));
        assert_eq!(third.len(), 2); // x and y
        let shared = TermManager::from_snapshot(third);
        assert_eq!(shared.find_var("x"), Some(x));
        assert_eq!(shared.find_var("y"), Some(y));
    }

    #[test]
    fn managers_from_one_snapshot_allocate_identical_tails() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let snap = tm.snapshot();

        let build = |mut m: TermManager| {
            let c = m.mk_bv_const(5, 4);
            let eq = m.mk_eq(x, c);
            let not = m.mk_not(eq);
            (c, eq, not, m.len())
        };
        let a = build(TermManager::from_snapshot(Arc::clone(&snap)));
        let b = build(TermManager::from_snapshot(snap));
        assert_eq!(a, b, "identical construction yields identical ids");
    }

    #[test]
    fn fresh_vars_stay_fresh_across_snapshots() {
        let mut tm = TermManager::new();
        let f0 = tm.mk_fresh_var("tmp", Sort::Bool);
        let snap = tm.snapshot();
        let f1 = tm.mk_fresh_var("tmp", Sort::Bool);
        assert_ne!(tm.var_name(f0), tm.var_name(f1));

        // A sharing manager continues the same fresh-name sequence and so
        // cannot collide with names minted before the snapshot.
        let mut shared = TermManager::from_snapshot(snap);
        let g = shared.mk_fresh_var("tmp", Sort::Bool);
        assert_ne!(shared.var_name(g), shared.var_name(f0));
    }

    #[test]
    fn snapshot_keeps_function_declarations() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", vec![Sort::BitVec(4)], Sort::Bool);
        let snap = tm.snapshot();
        let mut shared = TermManager::from_snapshot(snap);
        assert_eq!(shared.find_fun("f"), Some(f));
        assert_eq!(shared.fun_decl(f).name, "f");
        let g = shared.declare_fun("g", vec![], Sort::Bool);
        assert_ne!(f, g);
        assert_eq!(shared.fun_decl(g).name, "g");
    }
}
