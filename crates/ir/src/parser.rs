//! SMT-LIB 2 subset parser.
//!
//! Supports the command and term fragment needed by the logics of Table I:
//! `set-logic`, `set-info` (with the `:projection` extension used by the
//! counter), `declare-fun` / `declare-const`, `assert`, `check-sat`,
//! `get-model` and `exit`; terms over booleans, bit-vectors, reals, floating
//! point predicates, arrays, uninterpreted functions and `let` bindings.

use std::collections::HashMap;

use crate::logic::Logic;
use crate::{IrError, Rational, Result, Sort, TermId, TermManager};

/// The result of parsing an SMT-LIB script.
#[derive(Debug, Clone, Default)]
pub struct Script {
    /// The declared logic (defaults to [`Logic::Other`]).
    pub logic: Logic,
    /// One entry per `assert` command.
    pub asserts: Vec<TermId>,
    /// Projection variables from `(set-info :projection (...))`, if present.
    pub projection: Vec<TermId>,
}

/// Parses an SMT-LIB 2 script into `tm`.
///
/// # Errors
///
/// Returns [`IrError::Parse`] on malformed input and
/// [`IrError::Unsupported`] for commands or operators outside the supported
/// subset.
pub fn parse_script(tm: &mut TermManager, input: &str) -> Result<Script> {
    let tokens = tokenize(input)?;
    let sexprs = parse_sexprs(&tokens)?;
    let mut script = Script::default();
    for sexpr in &sexprs {
        apply_command(tm, sexpr, &mut script)?;
    }
    Ok(script)
}

/// Parses a single term (no surrounding command) against an existing manager.
///
/// Variables must already be declared in `tm`.
pub fn parse_term(tm: &mut TermManager, input: &str) -> Result<TermId> {
    let tokens = tokenize(input)?;
    let sexprs = parse_sexprs(&tokens)?;
    if sexprs.len() != 1 {
        return Err(IrError::Parse {
            line: 1,
            message: format!("expected exactly one term, found {}", sexprs.len()),
        });
    }
    let mut scope = HashMap::new();
    term_of(tm, &sexprs[0], &mut scope)
}

// ---------------------------------------------------------------------------
// Tokenizer and s-expressions
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Open(usize),
    Close(usize),
    Atom(String, usize),
}

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            ';' => {
                while let Some(&c) = chars.peek() {
                    chars.next();
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '(' => {
                tokens.push(Token::Open(line));
                chars.next();
            }
            ')' => {
                tokens.push(Token::Close(line));
                chars.next();
            }
            '|' => {
                chars.next();
                let mut atom = String::new();
                loop {
                    match chars.next() {
                        Some('|') => break,
                        Some(c) => {
                            if c == '\n' {
                                line += 1;
                            }
                            atom.push(c);
                        }
                        None => {
                            return Err(IrError::Parse {
                                line,
                                message: "unterminated quoted symbol".to_string(),
                            })
                        }
                    }
                }
                tokens.push(Token::Atom(atom, line));
            }
            '"' => {
                chars.next();
                let mut atom = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(c) => {
                            if c == '\n' {
                                line += 1;
                            }
                            atom.push(c);
                        }
                        None => {
                            return Err(IrError::Parse {
                                line,
                                message: "unterminated string literal".to_string(),
                            })
                        }
                    }
                }
                tokens.push(Token::Atom(format!("\"{atom}\""), line));
            }
            _ => {
                let mut atom = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == '(' || c == ')' || c == ';' {
                        break;
                    }
                    atom.push(c);
                    chars.next();
                }
                tokens.push(Token::Atom(atom, line));
            }
        }
    }
    Ok(tokens)
}

/// A parsed s-expression.
#[derive(Debug, Clone, PartialEq)]
enum Sexpr {
    Atom(String, usize),
    List(Vec<Sexpr>, usize),
}

impl Sexpr {
    fn line(&self) -> usize {
        match self {
            Sexpr::Atom(_, l) | Sexpr::List(_, l) => *l,
        }
    }

    fn as_atom(&self) -> Option<&str> {
        match self {
            Sexpr::Atom(a, _) => Some(a),
            Sexpr::List(..) => None,
        }
    }

    fn as_list(&self) -> Option<&[Sexpr]> {
        match self {
            Sexpr::List(l, _) => Some(l),
            Sexpr::Atom(..) => None,
        }
    }
}

fn parse_sexprs(tokens: &[Token]) -> Result<Vec<Sexpr>> {
    let mut pos = 0;
    let mut result = Vec::new();
    while pos < tokens.len() {
        let (sexpr, next) = parse_one(tokens, pos)?;
        result.push(sexpr);
        pos = next;
    }
    Ok(result)
}

fn parse_one(tokens: &[Token], pos: usize) -> Result<(Sexpr, usize)> {
    match &tokens[pos] {
        Token::Atom(a, line) => Ok((Sexpr::Atom(a.clone(), *line), pos + 1)),
        Token::Open(line) => {
            let mut items = Vec::new();
            let mut cur = pos + 1;
            loop {
                match tokens.get(cur) {
                    Some(Token::Close(_)) => return Ok((Sexpr::List(items, *line), cur + 1)),
                    Some(_) => {
                        let (item, next) = parse_one(tokens, cur)?;
                        items.push(item);
                        cur = next;
                    }
                    None => {
                        return Err(IrError::Parse {
                            line: *line,
                            message: "unbalanced parentheses".to_string(),
                        })
                    }
                }
            }
        }
        Token::Close(line) => Err(IrError::Parse {
            line: *line,
            message: "unexpected ')'".to_string(),
        }),
    }
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

fn apply_command(tm: &mut TermManager, sexpr: &Sexpr, script: &mut Script) -> Result<()> {
    let line = sexpr.line();
    let items = sexpr.as_list().ok_or_else(|| IrError::Parse {
        line,
        message: "top-level input must be a command list".to_string(),
    })?;
    let head = items
        .first()
        .and_then(|s| s.as_atom())
        .ok_or_else(|| IrError::Parse {
            line,
            message: "empty command".to_string(),
        })?;
    match head {
        "set-logic" => {
            let name = items.get(1).and_then(|s| s.as_atom()).unwrap_or("ALL");
            script.logic = Logic::parse(name);
        }
        "set-info" => {
            if items.get(1).and_then(|s| s.as_atom()) == Some(":projection") {
                let vars =
                    items
                        .get(2)
                        .and_then(|s| s.as_list())
                        .ok_or_else(|| IrError::Parse {
                            line,
                            message: ":projection expects a list of variable names".to_string(),
                        })?;
                for v in vars {
                    let name = v.as_atom().ok_or_else(|| IrError::Parse {
                        line,
                        message: "projection entries must be symbols".to_string(),
                    })?;
                    let var = tm.find_var(name).ok_or_else(|| IrError::Parse {
                        line,
                        message: format!("projection variable {name} is not declared"),
                    })?;
                    script.projection.push(var);
                }
            }
        }
        "set-option" | "check-sat" | "get-model" | "get-value" | "exit" | "echo" | "push"
        | "pop" | "get-info" => {}
        "declare-const" => {
            let name = expect_atom(items.get(1), line, "declare-const name")?;
            let sort = sort_of(items.get(2).ok_or_else(|| missing(line, "sort"))?)?;
            tm.mk_var(name, sort);
        }
        "declare-fun" => {
            let name = expect_atom(items.get(1), line, "declare-fun name")?;
            let args = items
                .get(2)
                .and_then(|s| s.as_list())
                .ok_or_else(|| missing(line, "argument sort list"))?;
            let ret = sort_of(items.get(3).ok_or_else(|| missing(line, "return sort"))?)?;
            if args.is_empty() {
                tm.mk_var(name, ret);
            } else {
                let arg_sorts: Result<Vec<Sort>> = args.iter().map(sort_of).collect();
                tm.declare_fun(name, arg_sorts?, ret);
            }
        }
        "assert" => {
            let body = items.get(1).ok_or_else(|| missing(line, "assert body"))?;
            let mut scope = HashMap::new();
            let t = term_of(tm, body, &mut scope)?;
            script.asserts.push(t);
        }
        "define-fun" => {
            return Err(IrError::Unsupported(
                "define-fun (inline the definition before parsing)".to_string(),
            ))
        }
        other => {
            return Err(IrError::Unsupported(format!("command {other}")));
        }
    }
    Ok(())
}

fn missing(line: usize, what: &str) -> IrError {
    IrError::Parse {
        line,
        message: format!("missing {what}"),
    }
}

fn expect_atom<'a>(sexpr: Option<&'a Sexpr>, line: usize, what: &str) -> Result<&'a str> {
    sexpr
        .and_then(|s| s.as_atom())
        .ok_or_else(|| IrError::Parse {
            line,
            message: format!("expected symbol for {what}"),
        })
}

// ---------------------------------------------------------------------------
// Sorts
// ---------------------------------------------------------------------------

fn sort_of(sexpr: &Sexpr) -> Result<Sort> {
    let line = sexpr.line();
    match sexpr {
        Sexpr::Atom(a, _) => match a.as_str() {
            "Bool" => Ok(Sort::Bool),
            "Real" => Ok(Sort::Real),
            "Float32" => Ok(Sort::float32()),
            "Float64" => Ok(Sort::float64()),
            other => Err(IrError::Parse {
                line,
                message: format!("unknown sort {other}"),
            }),
        },
        Sexpr::List(items, _) => {
            let atoms: Vec<&str> = items.iter().filter_map(|s| s.as_atom()).collect();
            if atoms.len() == items.len() && atoms.first() == Some(&"_") {
                match atoms.get(1) {
                    Some(&"BitVec") => {
                        let w: u32 = atoms
                            .get(2)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| missing(line, "bit-vector width"))?;
                        return Ok(Sort::BitVec(w));
                    }
                    Some(&"FloatingPoint") => {
                        let e: u32 = atoms
                            .get(2)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| missing(line, "exponent width"))?;
                        let s: u32 = atoms
                            .get(3)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| missing(line, "significand width"))?;
                        return Ok(Sort::Float { exp: e, sig: s });
                    }
                    Some(&"BoundedInt") => {
                        let lo: i64 = atoms
                            .get(2)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| missing(line, "lower bound"))?;
                        let hi: i64 = atoms
                            .get(3)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| missing(line, "upper bound"))?;
                        return Ok(Sort::BoundedInt { lo, hi });
                    }
                    _ => {}
                }
            }
            if items.first().and_then(|s| s.as_atom()) == Some("Array") {
                let index = sort_of(items.get(1).ok_or_else(|| missing(line, "index sort"))?)?;
                let element = sort_of(items.get(2).ok_or_else(|| missing(line, "element sort"))?)?;
                return Ok(Sort::array(index, element));
            }
            Err(IrError::Parse {
                line,
                message: "unknown sort expression".to_string(),
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Terms
// ---------------------------------------------------------------------------

type Scope = HashMap<String, TermId>;

fn term_of(tm: &mut TermManager, sexpr: &Sexpr, scope: &mut Scope) -> Result<TermId> {
    let line = sexpr.line();
    match sexpr {
        Sexpr::Atom(a, _) => atom_term(tm, a, line, scope),
        Sexpr::List(items, _) => {
            if items.is_empty() {
                return Err(IrError::Parse {
                    line,
                    message: "empty term".to_string(),
                });
            }
            // Indexed operators: ((_ extract hi lo) t), (_ bvN w), etc.
            if let Some(indexed) = items[0].as_list() {
                return indexed_term(tm, indexed, &items[1..], line, scope);
            }
            let head = items[0].as_atom().unwrap_or_default().to_string();
            if head == "_" {
                return underscore_literal(tm, items, line);
            }
            if head == "let" {
                return let_term(tm, items, line, scope);
            }
            let args: Result<Vec<TermId>> =
                items[1..].iter().map(|s| term_of(tm, s, scope)).collect();
            let args = args?;
            apply_operator(tm, &head, args, line)
        }
    }
}

fn atom_term(tm: &mut TermManager, atom: &str, line: usize, scope: &Scope) -> Result<TermId> {
    if let Some(&t) = scope.get(atom) {
        return Ok(t);
    }
    match atom {
        "true" => return Ok(tm.mk_true()),
        "false" => return Ok(tm.mk_false()),
        _ => {}
    }
    if let Some(bin) = atom.strip_prefix("#b") {
        let width = bin.len() as u32;
        let value = u128::from_str_radix(bin, 2).map_err(|_| IrError::Parse {
            line,
            message: format!("invalid binary literal {atom}"),
        })?;
        return Ok(tm.mk_bv_const(value, width));
    }
    if let Some(hex) = atom.strip_prefix("#x") {
        let width = hex.len() as u32 * 4;
        let value = u128::from_str_radix(hex, 16).map_err(|_| IrError::Parse {
            line,
            message: format!("invalid hex literal {atom}"),
        })?;
        return Ok(tm.mk_bv_const(value, width));
    }
    if atom.contains('.') {
        if let Some(r) = Rational::parse(atom) {
            return Ok(tm.mk_real_const(r));
        }
    }
    if let Ok(i) = atom.parse::<i64>() {
        return Ok(tm.mk_int_const(i));
    }
    tm.find_var(atom).ok_or_else(|| IrError::Parse {
        line,
        message: format!("undeclared symbol {atom}"),
    })
}

fn underscore_literal(tm: &mut TermManager, items: &[Sexpr], line: usize) -> Result<TermId> {
    // (_ bvN width)
    let kind = items.get(1).and_then(|s| s.as_atom()).unwrap_or_default();
    if let Some(value) = kind.strip_prefix("bv") {
        let value: u128 = value.parse().map_err(|_| IrError::Parse {
            line,
            message: format!("invalid bit-vector literal {kind}"),
        })?;
        let width: u32 = items
            .get(2)
            .and_then(|s| s.as_atom())
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| missing(line, "bit-vector literal width"))?;
        return Ok(tm.mk_bv_const(value, width));
    }
    Err(IrError::Unsupported(format!(
        "indexed literal (_ {kind} ...)"
    )))
}

fn let_term(
    tm: &mut TermManager,
    items: &[Sexpr],
    line: usize,
    scope: &mut Scope,
) -> Result<TermId> {
    let bindings = items
        .get(1)
        .and_then(|s| s.as_list())
        .ok_or_else(|| missing(line, "let bindings"))?;
    let body = items.get(2).ok_or_else(|| missing(line, "let body"))?;
    let mut added = Vec::new();
    // SMT-LIB `let` is parallel: evaluate all right-hand sides in the outer scope.
    let mut new_bindings = Vec::new();
    for binding in bindings {
        let pair = binding
            .as_list()
            .ok_or_else(|| missing(line, "let binding pair"))?;
        let name = expect_atom(pair.first(), line, "let-bound name")?;
        let value = term_of(
            tm,
            pair.get(1).ok_or_else(|| missing(line, "let value"))?,
            scope,
        )?;
        new_bindings.push((name.to_string(), value));
    }
    for (name, value) in new_bindings {
        let previous = scope.insert(name.clone(), value);
        added.push((name, previous));
    }
    let result = term_of(tm, body, scope);
    for (name, previous) in added.into_iter().rev() {
        match previous {
            Some(prev) => {
                scope.insert(name, prev);
            }
            None => {
                scope.remove(&name);
            }
        }
    }
    result
}

fn indexed_term(
    tm: &mut TermManager,
    indexed: &[Sexpr],
    args: &[Sexpr],
    line: usize,
    scope: &mut Scope,
) -> Result<TermId> {
    let atoms: Vec<&str> = indexed.iter().filter_map(|s| s.as_atom()).collect();
    if atoms.first() != Some(&"_") {
        return Err(IrError::Parse {
            line,
            message: "expected indexed operator".to_string(),
        });
    }
    let arg_terms: Result<Vec<TermId>> = args.iter().map(|s| term_of(tm, s, scope)).collect();
    let arg_terms = arg_terms?;
    let idx = |i: usize| -> Result<u32> {
        atoms
            .get(i)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| missing(line, "operator index"))
    };
    match atoms.get(1) {
        Some(&"extract") => {
            let hi = idx(2)?;
            let lo = idx(3)?;
            tm.mk_bv_extract(arg_terms[0], hi, lo)
        }
        Some(&"zero_extend") => tm.mk_bv_zero_extend(arg_terms[0], idx(2)?),
        Some(&"sign_extend") => tm.mk_bv_sign_extend(arg_terms[0], idx(2)?),
        Some(&"to_fp") => {
            let e = idx(2)?;
            let s = idx(3)?;
            // Rounding-mode argument (first) is ignored by the relaxation.
            let value = *arg_terms
                .last()
                .ok_or_else(|| missing(line, "to_fp operand"))?;
            tm.mk_real_to_fp(value, Sort::Float { exp: e, sig: s })
        }
        other => Err(IrError::Unsupported(format!("indexed operator {other:?}"))),
    }
}

fn apply_operator(
    tm: &mut TermManager,
    head: &str,
    args: Vec<TermId>,
    line: usize,
) -> Result<TermId> {
    let need = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(IrError::Parse {
                line,
                message: format!("{head} expects {n} arguments, got {}", args.len()),
            })
        }
    };
    let first_is_real = args
        .first()
        .map(|&a| tm.sort(a) == Sort::Real)
        .unwrap_or(false);
    match head {
        "not" => {
            need(1)?;
            Ok(tm.mk_not(args[0]))
        }
        "and" => Ok(tm.mk_and(args)),
        "or" => Ok(tm.mk_or(args)),
        "xor" => {
            need(2)?;
            tm.mk_xor(args[0], args[1])
        }
        "=>" => {
            need(2)?;
            tm.mk_implies(args[0], args[1])
        }
        "ite" => {
            need(3)?;
            tm.mk_ite(args[0], args[1], args[2])
        }
        "=" => {
            if args.len() < 2 {
                return Err(IrError::Parse {
                    line,
                    message: "= expects at least 2 arguments".to_string(),
                });
            }
            let mut eqs = Vec::new();
            for pair in args.windows(2) {
                eqs.push(tm.mk_eq(pair[0], pair[1]));
            }
            Ok(tm.mk_and(eqs))
        }
        "distinct" => Ok(tm.mk_distinct(args)),
        "bvnot" => {
            need(1)?;
            tm.mk_bv_not(args[0])
        }
        "bvneg" => {
            need(1)?;
            tm.mk_bv_neg(args[0])
        }
        "bvand" => fold_binop(tm, args, line, "bvand", TermManager::mk_bv_and),
        "bvor" => fold_binop(tm, args, line, "bvor", TermManager::mk_bv_or),
        "bvxor" => fold_binop(tm, args, line, "bvxor", TermManager::mk_bv_xor),
        "bvadd" => fold_binop(tm, args, line, "bvadd", TermManager::mk_bv_add),
        "bvsub" => fold_binop(tm, args, line, "bvsub", TermManager::mk_bv_sub),
        "bvmul" => fold_binop(tm, args, line, "bvmul", TermManager::mk_bv_mul),
        "bvudiv" => {
            need(2)?;
            tm.mk_bv_udiv(args[0], args[1])
        }
        "bvurem" => {
            need(2)?;
            tm.mk_bv_urem(args[0], args[1])
        }
        "bvshl" => {
            need(2)?;
            tm.mk_bv_shl(args[0], args[1])
        }
        "bvlshr" => {
            need(2)?;
            tm.mk_bv_lshr(args[0], args[1])
        }
        "bvashr" => {
            need(2)?;
            tm.mk_bv_ashr(args[0], args[1])
        }
        "concat" => fold_binop(tm, args, line, "concat", TermManager::mk_bv_concat),
        "bvult" => {
            need(2)?;
            tm.mk_bv_ult(args[0], args[1])
        }
        "bvule" => {
            need(2)?;
            tm.mk_bv_ule(args[0], args[1])
        }
        "bvugt" => {
            need(2)?;
            tm.mk_bv_ult(args[1], args[0])
        }
        "bvuge" => {
            need(2)?;
            tm.mk_bv_ule(args[1], args[0])
        }
        "bvslt" => {
            need(2)?;
            tm.mk_bv_slt(args[0], args[1])
        }
        "bvsle" => {
            need(2)?;
            tm.mk_bv_sle(args[0], args[1])
        }
        "bvsgt" => {
            need(2)?;
            tm.mk_bv_slt(args[1], args[0])
        }
        "bvsge" => {
            need(2)?;
            tm.mk_bv_sle(args[1], args[0])
        }
        "+" if first_is_real => tm.mk_real_add(args),
        "+" => {
            need(2)?;
            tm.mk_int_add(args[0], args[1])
        }
        "-" if args.len() == 1 => tm.mk_real_neg(args[0]),
        "-" => {
            need(2)?;
            tm.mk_real_sub(args[0], args[1])
        }
        "*" => {
            need(2)?;
            tm.mk_real_mul(args[0], args[1])
        }
        "/" => {
            need(2)?;
            // Division by a constant is multiplication by its reciprocal.
            if let crate::Op::RealConst(c) = tm.op(args[1]).clone() {
                if !c.is_zero() {
                    let recip = tm.mk_real_const(c.recip());
                    return tm.mk_real_mul(args[0], recip);
                }
            }
            Err(IrError::Unsupported(
                "real division by a non-constant".to_string(),
            ))
        }
        "<" if first_is_real => {
            need(2)?;
            tm.mk_real_lt(args[0], args[1])
        }
        "<=" if first_is_real => {
            need(2)?;
            tm.mk_real_le(args[0], args[1])
        }
        ">" if first_is_real => {
            need(2)?;
            tm.mk_real_lt(args[1], args[0])
        }
        ">=" if first_is_real => {
            need(2)?;
            tm.mk_real_le(args[1], args[0])
        }
        "<" => {
            need(2)?;
            tm.mk_int_lt(args[0], args[1])
        }
        "<=" => {
            need(2)?;
            tm.mk_int_le(args[0], args[1])
        }
        ">" => {
            need(2)?;
            tm.mk_int_lt(args[1], args[0])
        }
        ">=" => {
            need(2)?;
            tm.mk_int_le(args[1], args[0])
        }
        "fp.add" => {
            // Rounding mode is the first argument when three are given.
            let (a, b) = last_two(&args, line, "fp.add")?;
            tm.mk_fp_add(a, b)
        }
        "fp.sub" => {
            let (a, b) = last_two(&args, line, "fp.sub")?;
            tm.mk_fp_sub(a, b)
        }
        "fp.mul" => {
            let (a, b) = last_two(&args, line, "fp.mul")?;
            tm.mk_fp_mul(a, b)
        }
        "fp.neg" => {
            need(1)?;
            tm.mk_fp_neg(args[0])
        }
        "fp.eq" => {
            need(2)?;
            tm.mk_fp_eq(args[0], args[1])
        }
        "fp.lt" => {
            need(2)?;
            tm.mk_fp_lt(args[0], args[1])
        }
        "fp.leq" => {
            need(2)?;
            tm.mk_fp_le(args[0], args[1])
        }
        "fp.gt" => {
            need(2)?;
            tm.mk_fp_lt(args[1], args[0])
        }
        "fp.geq" => {
            need(2)?;
            tm.mk_fp_le(args[1], args[0])
        }
        "fp.to_real" => {
            need(1)?;
            tm.mk_fp_to_real(args[0])
        }
        "select" => {
            need(2)?;
            tm.mk_select(args[0], args[1])
        }
        "store" => {
            need(3)?;
            tm.mk_store(args[0], args[1], args[2])
        }
        other => {
            if let Some(fun) = tm.find_fun(other) {
                return tm.mk_apply(fun, args);
            }
            Err(IrError::Unsupported(format!("operator {other}")))
        }
    }
}

fn last_two(args: &[TermId], line: usize, what: &str) -> Result<(TermId, TermId)> {
    if args.len() < 2 {
        return Err(IrError::Parse {
            line,
            message: format!("{what} expects at least 2 arguments"),
        });
    }
    Ok((args[args.len() - 2], args[args.len() - 1]))
}

fn fold_binop(
    tm: &mut TermManager,
    args: Vec<TermId>,
    line: usize,
    what: &str,
    f: fn(&mut TermManager, TermId, TermId) -> Result<TermId>,
) -> Result<TermId> {
    if args.len() < 2 {
        return Err(IrError::Parse {
            line,
            message: format!("{what} expects at least 2 arguments"),
        });
    }
    let mut acc = args[0];
    for &a in &args[1..] {
        acc = f(tm, acc, a)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic;

    #[test]
    fn parses_a_small_bv_script() {
        let mut tm = TermManager::new();
        let script = parse_script(
            &mut tm,
            r#"
            (set-logic QF_BV)
            (declare-fun x () (_ BitVec 8))
            (declare-const y (_ BitVec 8))
            (set-info :projection (x y))
            (assert (bvult x (_ bv10 8)))
            (assert (= (bvadd x y) #x20))
            (check-sat)
            "#,
        )
        .unwrap();
        assert_eq!(script.logic, Logic::QfBv);
        assert_eq!(script.asserts.len(), 2);
        assert_eq!(script.projection.len(), 2);
    }

    #[test]
    fn parses_hybrid_script_with_let() {
        let mut tm = TermManager::new();
        let script = parse_script(
            &mut tm,
            r#"
            (set-logic QF_BVFPLRA)
            (declare-fun b () (_ BitVec 4))
            (declare-fun r () Real)
            (assert (let ((t (bvadd b #b0001))) (bvult t #b1000)))
            (assert (and (<= 0.0 r) (< r 2.5)))
            "#,
        )
        .unwrap();
        assert_eq!(script.asserts.len(), 2);
        let p = logic::profile(&tm, &script.asserts);
        assert!(p.bitvectors && p.reals);
    }

    #[test]
    fn parses_arrays_and_uf() {
        let mut tm = TermManager::new();
        let script = parse_script(
            &mut tm,
            r#"
            (set-logic QF_ABV)
            (declare-fun a () (Array (_ BitVec 4) (_ BitVec 8)))
            (declare-fun i () (_ BitVec 4))
            (declare-fun f ((_ BitVec 8)) (_ BitVec 8))
            (assert (= (select (store a i #x0A) i) #x0A))
            (assert (bvult (f #x01) #x10))
            "#,
        )
        .unwrap();
        assert_eq!(script.asserts.len(), 2);
    }

    #[test]
    fn reports_undeclared_symbols() {
        let mut tm = TermManager::new();
        let err = parse_script(&mut tm, "(assert (bvult x (_ bv1 4)))").unwrap_err();
        assert!(matches!(err, IrError::Parse { .. }));
    }

    #[test]
    fn reports_unbalanced_parens() {
        let mut tm = TermManager::new();
        let err = parse_script(&mut tm, "(assert (and true false)").unwrap_err();
        assert!(matches!(err, IrError::Parse { .. }));
    }

    #[test]
    fn roundtrip_through_printer() {
        use crate::printer;
        let mut tm = TermManager::new();
        let script = parse_script(
            &mut tm,
            r#"
            (set-logic QF_BVFP)
            (declare-fun x () (_ BitVec 6))
            (declare-fun u () (_ FloatingPoint 8 24))
            (set-info :projection (x))
            (assert (bvule x (_ bv50 6)))
            (assert (fp.leq u u))
            "#,
        )
        .unwrap();
        let printed =
            printer::script_to_smtlib(&tm, script.logic, &script.asserts, &script.projection);
        let mut tm2 = TermManager::new();
        let reparsed = parse_script(&mut tm2, &printed).unwrap();
        assert_eq!(reparsed.logic, Logic::QfBvfp);
        assert_eq!(reparsed.asserts.len(), script.asserts.len());
        assert_eq!(reparsed.projection.len(), 1);
    }

    #[test]
    fn parse_single_term() {
        let mut tm = TermManager::new();
        tm.mk_var("x", Sort::BitVec(8));
        let t = parse_term(&mut tm, "(bvadd x (_ bv1 8))").unwrap();
        assert_eq!(tm.sort(t), Sort::BitVec(8));
    }
}
