//! Hybrid SMT intermediate representation for the `pact` model counter.
//!
//! This crate provides the term language shared by every other crate in the
//! workspace:
//!
//! * [`Sort`] — sorts for booleans, bit-vectors, reals, bounded integers,
//!   floating point (modelled, see `pact-solver`), arrays and uninterpreted
//!   functions.
//! * [`TermManager`] — a hash-consing term factory with light constant
//!   folding.  Terms are referenced by the cheap copyable [`TermId`]
//!   (`NonZeroU32`-backed, so `Option<TermId>` is free) and can be frozen
//!   into an immutable [`TermSnapshot`] shared across threads by `Arc`.
//! * [`parser`] — an SMT-LIB 2 subset parser sufficient for the logics the
//!   paper evaluates (QF_ABV, QF_BVFP, QF_UFBV, QF_BVFPLRA, QF_ABVFP,
//!   QF_ABVFPLRA).
//! * [`printer`] — the matching SMT-LIB 2 printer.
//!
//! # Example
//!
//! ```
//! use pact_ir::{TermManager, Sort};
//!
//! let mut tm = TermManager::new();
//! let x = tm.mk_var("x", Sort::BitVec(8));
//! let c = tm.mk_bv_const(42, 8);
//! let eq = tm.mk_eq(x, c);
//! assert_eq!(tm.sort(eq), Sort::Bool);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fxhash;
mod manager;
pub mod parser;
pub mod printer;
mod rational;
mod sort;
mod term;
mod value;

pub mod logic;

pub use manager::{FunDecl, TermManager, TermSnapshot, Value};
pub use rational::Rational;
pub use sort::Sort;
pub use term::{Op, Term, TermId};
pub use value::BvValue;

/// Errors produced while constructing or parsing terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A term was applied to children of the wrong sort.
    SortMismatch {
        /// Human readable description of the offending operation.
        context: String,
    },
    /// The SMT-LIB input could not be parsed.
    Parse {
        /// Line where the error occurred (1-based).
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A feature of full SMT-LIB that this subset parser does not support.
    Unsupported(String),
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::SortMismatch { context } => write!(f, "sort mismatch: {context}"),
            IrError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IrError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
        }
    }
}

impl std::error::Error for IrError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, IrError>;

// Send/Sync audit: the counting engine ships `TermManager`s and
// `Arc<TermSnapshot>`s into worker threads (one per scheduled round, one per
// service request), so these bounds are part of the crate's contract.  All
// term storage is owned (`Vec`s, `String`s, hash maps of plain data) and
// `unsafe` is forbidden crate-wide, so the auto traits hold structurally;
// these assertions make any future `Rc`/`RefCell`/raw-pointer regression a
// compile error here rather than a confusing one in `pact-core`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TermManager>();
    assert_send_sync::<TermSnapshot>();
    assert_send_sync::<Term>();
    assert_send_sync::<Value>();
};
