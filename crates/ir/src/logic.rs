//! SMT-LIB logic names and detection of the logic a formula belongs to.

use std::fmt;

use crate::{Op, Sort, TermId, TermManager};

/// The six SMT-LIB logics evaluated in the paper (Table I), plus a catch-all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Logic {
    /// Arrays, bit-vectors, floating point and linear real arithmetic.
    QfAbvfplra,
    /// Arrays, bit-vectors and floating point.
    QfAbvfp,
    /// Arrays and bit-vectors.
    QfAbv,
    /// Bit-vectors, floating point and linear real arithmetic.
    QfBvfplra,
    /// Bit-vectors and floating point.
    QfBvfp,
    /// Uninterpreted functions and bit-vectors.
    QfUfbv,
    /// Pure bit-vectors.
    QfBv,
    /// Anything else supported by the term language.
    #[default]
    Other,
}

impl Logic {
    /// All paper logics, in Table I order.
    pub const TABLE_ONE: [Logic; 6] = [
        Logic::QfAbvfplra,
        Logic::QfAbvfp,
        Logic::QfAbv,
        Logic::QfBvfplra,
        Logic::QfBvfp,
        Logic::QfUfbv,
    ];

    /// The SMT-LIB name of the logic.
    pub fn name(&self) -> &'static str {
        match self {
            Logic::QfAbvfplra => "QF_ABVFPLRA",
            Logic::QfAbvfp => "QF_ABVFP",
            Logic::QfAbv => "QF_ABV",
            Logic::QfBvfplra => "QF_BVFPLRA",
            Logic::QfBvfp => "QF_BVFP",
            Logic::QfUfbv => "QF_UFBV",
            Logic::QfBv => "QF_BV",
            Logic::Other => "ALL",
        }
    }

    /// Parses an SMT-LIB logic name; unknown names map to [`Logic::Other`].
    pub fn parse(name: &str) -> Logic {
        match name {
            "QF_ABVFPLRA" => Logic::QfAbvfplra,
            "QF_ABVFP" => Logic::QfAbvfp,
            "QF_ABV" | "QF_ABVLRA" => Logic::QfAbv,
            "QF_BVFPLRA" => Logic::QfBvfplra,
            "QF_BVFP" | "QF_FPBV" => Logic::QfBvfp,
            "QF_UFBV" => Logic::QfUfbv,
            "QF_BV" => Logic::QfBv,
            _ => Logic::Other,
        }
    }

    /// Returns `true` when the logic mixes discrete and continuous theories,
    /// i.e. it is *hybrid* in the sense of the paper.
    pub fn is_hybrid(&self) -> bool {
        matches!(
            self,
            Logic::QfAbvfplra | Logic::QfAbvfp | Logic::QfBvfplra | Logic::QfBvfp
        )
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Theory features observed in a formula.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TheoryProfile {
    /// Formula contains bit-vector terms.
    pub bitvectors: bool,
    /// Formula contains real arithmetic terms.
    pub reals: bool,
    /// Formula contains floating point terms.
    pub floats: bool,
    /// Formula contains array terms.
    pub arrays: bool,
    /// Formula contains uninterpreted function applications.
    pub uninterpreted: bool,
    /// Formula contains bounded-integer terms.
    pub bounded_ints: bool,
}

impl TheoryProfile {
    /// Returns `true` when both a discrete and a continuous theory occur.
    pub fn is_hybrid(&self) -> bool {
        let discrete = self.bitvectors || self.bounded_ints;
        let continuous = self.reals || self.floats;
        discrete && continuous
    }

    /// Maps the profile onto the closest Table I logic.
    pub fn logic(&self) -> Logic {
        match (self.arrays, self.uninterpreted, self.floats, self.reals) {
            (true, _, true, true) => Logic::QfAbvfplra,
            (true, _, true, false) => Logic::QfAbvfp,
            (true, _, false, _) => Logic::QfAbv,
            (false, false, true, true) => Logic::QfBvfplra,
            (false, false, true, false) => Logic::QfBvfp,
            (false, true, false, false) => Logic::QfUfbv,
            (false, false, false, false) if self.bitvectors => Logic::QfBv,
            _ => Logic::Other,
        }
    }
}

/// Walks the formula and records which theories it uses.
pub fn profile(tm: &TermManager, roots: &[TermId]) -> TheoryProfile {
    let mut p = TheoryProfile::default();
    let mut seen = vec![false; tm.len()];
    let mut stack: Vec<TermId> = roots.to_vec();
    while let Some(t) = stack.pop() {
        if seen[t.index()] {
            continue;
        }
        seen[t.index()] = true;
        match tm.sort(t) {
            Sort::BitVec(_) => p.bitvectors = true,
            Sort::Real => p.reals = true,
            Sort::Float { .. } => p.floats = true,
            Sort::Array { .. } => p.arrays = true,
            Sort::BoundedInt { .. } => p.bounded_ints = true,
            Sort::Bool => {}
        }
        if matches!(tm.op(t), Op::Apply(_)) {
            p.uninterpreted = true;
        }
        if matches!(tm.op(t), Op::Select | Op::Store) {
            p.arrays = true;
        }
        stack.extend(tm.children(t).iter().copied());
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rational;

    #[test]
    fn logic_names_round_trip() {
        for logic in Logic::TABLE_ONE {
            assert_eq!(Logic::parse(logic.name()), logic);
        }
        assert_eq!(Logic::parse("QF_LIA"), Logic::Other);
    }

    #[test]
    fn hybrid_classification() {
        assert!(Logic::QfBvfplra.is_hybrid());
        assert!(Logic::QfAbvfp.is_hybrid());
        assert!(!Logic::QfAbv.is_hybrid());
        assert!(!Logic::QfUfbv.is_hybrid());
    }

    #[test]
    fn profile_detects_theories() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let r = tm.mk_var("r", Sort::Real);
        let c = tm.mk_bv_const(3, 8);
        let bv = tm.mk_bv_ult(x, c).unwrap();
        let half = tm.mk_real_const(Rational::new(1, 2));
        let real = tm.mk_real_le(r, half).unwrap();
        let f = tm.mk_and([bv, real]);
        let p = profile(&tm, &[f]);
        assert!(p.bitvectors);
        assert!(p.reals);
        assert!(!p.floats);
        assert!(p.is_hybrid());
        assert_eq!(p.logic(), Logic::Other); // BV + LRA without FP is not a Table I logic
    }

    #[test]
    fn profile_maps_to_table_one_logics() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let a = tm.mk_var("a", Sort::array(Sort::BitVec(4), Sort::BitVec(8)));
        let i = tm.mk_var("i", Sort::BitVec(4));
        let sel = tm.mk_select(a, i).unwrap();
        let f = tm.mk_eq(sel, x);
        assert_eq!(profile(&tm, &[f]).logic(), Logic::QfAbv);

        let g = tm.declare_fun("g", vec![Sort::BitVec(8)], Sort::BitVec(8));
        let gx = tm.mk_apply(g, vec![x]).unwrap();
        let f2 = tm.mk_eq(gx, x);
        assert_eq!(profile(&tm, &[f2]).logic(), Logic::QfUfbv);
    }
}
