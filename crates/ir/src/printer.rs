//! SMT-LIB 2 printing of terms and whole scripts.
//!
//! The printer is the inverse of [`crate::parser`]: scripts it produces can
//! be parsed back, which the round-trip tests in `tests/` rely on.

use std::collections::HashSet;
use std::fmt::Write;

use crate::logic::Logic;
use crate::{Op, Sort, TermId, TermManager};

/// Renders a single term as an SMT-LIB 2 s-expression.
///
/// ```
/// use pact_ir::{TermManager, Sort, printer};
/// let mut tm = TermManager::new();
/// let x = tm.mk_var("x", Sort::BitVec(4));
/// let c = tm.mk_bv_const(3, 4);
/// let f = tm.mk_bv_ult(x, c).unwrap();
/// assert_eq!(printer::term_to_smtlib(&tm, f), "(bvult x (_ bv3 4))");
/// ```
pub fn term_to_smtlib(tm: &TermManager, t: TermId) -> String {
    let mut out = String::new();
    write_term(tm, t, &mut out);
    out
}

fn write_term(tm: &TermManager, t: TermId, out: &mut String) {
    let children = tm.children(t);
    match tm.op(t) {
        Op::Var(_) => out.push_str(tm.var_name(t).unwrap_or("?")),
        Op::BoolConst(b) => out.push_str(if *b { "true" } else { "false" }),
        Op::BvConst(v) => {
            let _ = write!(out, "(_ bv{} {})", v.as_u128(), v.width());
        }
        Op::RealConst(r) => {
            if r.is_negative() {
                let _ = write!(out, "(- {})", rational_smtlib(&-*r));
            } else {
                out.push_str(&rational_smtlib(r));
            }
        }
        Op::IntConst(i) => {
            if *i < 0 {
                let _ = write!(out, "(- {})", -i);
            } else {
                let _ = write!(out, "{i}");
            }
        }
        op => {
            out.push('(');
            out.push_str(op_name(op));
            for &c in children {
                out.push(' ');
                write_term(tm, c, out);
            }
            out.push(')');
        }
    }
}

fn rational_smtlib(r: &crate::Rational) -> String {
    if r.is_integer() {
        format!("{}.0", r.numer())
    } else {
        format!("(/ {}.0 {}.0)", r.numer(), r.denom())
    }
}

fn op_name(op: &Op) -> &str {
    match op {
        Op::Not => "not",
        Op::And => "and",
        Op::Or => "or",
        Op::Xor => "xor",
        Op::Implies => "=>",
        Op::Ite => "ite",
        Op::Eq => "=",
        Op::Distinct => "distinct",
        Op::BvNot => "bvnot",
        Op::BvAnd => "bvand",
        Op::BvOr => "bvor",
        Op::BvXor => "bvxor",
        Op::BvNeg => "bvneg",
        Op::BvAdd => "bvadd",
        Op::BvSub => "bvsub",
        Op::BvMul => "bvmul",
        Op::BvUdiv => "bvudiv",
        Op::BvUrem => "bvurem",
        Op::BvShl => "bvshl",
        Op::BvLshr => "bvlshr",
        Op::BvAshr => "bvashr",
        Op::BvConcat => "concat",
        Op::BvUlt => "bvult",
        Op::BvUle => "bvule",
        Op::BvSlt => "bvslt",
        Op::BvSle => "bvsle",
        Op::RealAdd => "+",
        Op::RealSub => "-",
        Op::RealMul => "*",
        Op::RealNeg => "-",
        Op::RealLt => "<",
        Op::RealLe => "<=",
        Op::IntAdd => "+",
        Op::IntLe => "<=",
        Op::IntLt => "<",
        Op::FpAdd => "fp.add",
        Op::FpSub => "fp.sub",
        Op::FpMul => "fp.mul",
        Op::FpNeg => "fp.neg",
        Op::FpEq => "fp.eq",
        Op::FpLt => "fp.lt",
        Op::FpLe => "fp.leq",
        Op::FpToReal => "fp.to_real",
        Op::RealToFp => "to_fp",
        Op::Select => "select",
        Op::Store => "store",
        Op::Apply(_) => "apply",
        Op::BvExtract { .. } | Op::BvZeroExtend(_) | Op::BvSignExtend(_) => "",
        Op::Var(_) | Op::BoolConst(_) | Op::BvConst(_) | Op::RealConst(_) | Op::IntConst(_) => "",
    }
}

/// Renders a whole SMT-LIB 2 script: `set-logic`, declarations of every
/// variable and function reachable from `asserts`, an optional projection-set
/// annotation, one `assert` per root, and `check-sat`.
pub fn script_to_smtlib(
    tm: &TermManager,
    logic: Logic,
    asserts: &[TermId],
    projection: &[TermId],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "(set-logic {})", logic.name());
    let mut declared_funs: HashSet<u32> = HashSet::new();
    let mut all_roots = asserts.to_vec();
    all_roots.extend_from_slice(projection);
    for v in tm.vars_of(&all_roots) {
        let name = tm.var_name(v).unwrap_or("?");
        let _ = writeln!(
            out,
            "(declare-fun {name} () {})",
            sort_to_smtlib(&tm.sort(v))
        );
    }
    // The projection annotation references variables, so it must come after
    // their declarations for the script to be re-parseable.
    if !projection.is_empty() {
        let names: Vec<&str> = projection.iter().filter_map(|&v| tm.var_name(v)).collect();
        let _ = writeln!(out, "(set-info :projection ({}))", names.join(" "));
    }
    // Declare uninterpreted functions that occur in the asserts.
    let mut stack: Vec<TermId> = asserts.to_vec();
    let mut seen = vec![false; tm.len()];
    while let Some(t) = stack.pop() {
        if seen[t.index()] {
            continue;
        }
        seen[t.index()] = true;
        if let Op::Apply(f) = tm.op(t) {
            if declared_funs.insert(*f) {
                let decl = tm.fun_decl(*f);
                let args: Vec<String> = decl.args.iter().map(sort_to_smtlib).collect();
                let _ = writeln!(
                    out,
                    "(declare-fun {} ({}) {})",
                    decl.name,
                    args.join(" "),
                    sort_to_smtlib(&decl.ret)
                );
            }
        }
        stack.extend(tm.children(t).iter().copied());
    }
    for &a in asserts {
        let _ = writeln!(out, "(assert {})", term_to_full_smtlib(tm, a));
    }
    let _ = writeln!(out, "(check-sat)");
    out
}

/// Like [`term_to_smtlib`] but renders indexed operators (`extract`,
/// `zero_extend`, `sign_extend`) and UF applications with their real names.
pub fn term_to_full_smtlib(tm: &TermManager, t: TermId) -> String {
    let mut out = String::new();
    write_full(tm, t, &mut out);
    out
}

fn write_full(tm: &TermManager, t: TermId, out: &mut String) {
    let children = tm.children(t);
    match tm.op(t) {
        Op::BvExtract { hi, lo } => {
            let _ = write!(out, "((_ extract {hi} {lo}) ");
            write_full(tm, children[0], out);
            out.push(')');
        }
        Op::BvZeroExtend(by) => {
            let _ = write!(out, "((_ zero_extend {by}) ");
            write_full(tm, children[0], out);
            out.push(')');
        }
        Op::BvSignExtend(by) => {
            let _ = write!(out, "((_ sign_extend {by}) ");
            write_full(tm, children[0], out);
            out.push(')');
        }
        Op::RealToFp => {
            if let Sort::Float { exp, sig } = tm.sort(t) {
                let _ = write!(out, "((_ to_fp {exp} {sig}) ");
                write_full(tm, children[0], out);
                out.push(')');
            }
        }
        Op::Apply(f) => {
            let name = tm.fun_decl(*f).name.clone();
            let _ = write!(out, "({name}");
            for &c in children {
                out.push(' ');
                write_full(tm, c, out);
            }
            out.push(')');
        }
        Op::Var(_) | Op::BoolConst(_) | Op::BvConst(_) | Op::RealConst(_) | Op::IntConst(_) => {
            write_term(tm, t, out)
        }
        op => {
            out.push('(');
            out.push_str(op_name(op));
            for &c in children {
                out.push(' ');
                write_full(tm, c, out);
            }
            out.push(')');
        }
    }
}

/// Renders a sort in SMT-LIB 2 syntax.
pub fn sort_to_smtlib(sort: &Sort) -> String {
    sort.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rational;

    #[test]
    fn prints_basic_terms() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let c = tm.mk_bv_const(5, 8);
        let f = tm.mk_bv_ult(x, c).unwrap();
        assert_eq!(term_to_smtlib(&tm, f), "(bvult x (_ bv5 8))");
        let r = tm.mk_var("r", Sort::Real);
        let half = tm.mk_real_const(Rational::new(1, 2));
        let g = tm.mk_real_le(r, half).unwrap();
        assert_eq!(term_to_smtlib(&tm, g), "(<= r (/ 1.0 2.0))");
    }

    #[test]
    fn prints_indexed_operators() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let ex = tm.mk_bv_extract(x, 6, 3).unwrap();
        assert_eq!(term_to_full_smtlib(&tm, ex), "((_ extract 6 3) x)");
        let ze = tm.mk_bv_zero_extend(x, 4).unwrap();
        assert_eq!(term_to_full_smtlib(&tm, ze), "((_ zero_extend 4) x)");
    }

    #[test]
    fn script_includes_declarations_and_projection() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let r = tm.mk_var("r", Sort::Real);
        let c = tm.mk_bv_const(3, 4);
        let f1 = tm.mk_bv_ult(x, c).unwrap();
        let one = tm.mk_real_const(Rational::ONE);
        let f2 = tm.mk_real_lt(r, one).unwrap();
        let script = script_to_smtlib(&tm, Logic::QfBvfplra, &[f1, f2], &[x]);
        assert!(script.contains("(set-logic QF_BVFPLRA)"));
        assert!(script.contains("(declare-fun x () (_ BitVec 4))"));
        assert!(script.contains("(declare-fun r () Real)"));
        assert!(script.contains("(set-info :projection (x))"));
        assert!(script.contains("(assert (bvult x (_ bv3 4)))"));
        assert!(script.trim_end().ends_with("(check-sat)"));
    }
}
