//! A vendored FxHash: the non-cryptographic multiply-rotate hash rustc uses
//! for its interning tables.
//!
//! The hash-consing table in [`crate::TermManager`] hashes every candidate
//! term on every `mk_*` call, so the (DoS-resistant, but slow) SipHash
//! default is pure overhead there: keys are program-shaped terms, not
//! attacker-controlled network input, and no map iteration order is ever
//! observable.  This is the workspace-local stand-in for the `fxhash` /
//! `rustc-hash` crates, in keeping with the no-registry-deps policy.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by the Fx multiply-rotate hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The rustc-style Fx hasher: `hash = (hash rotl 5 ^ word) * K` per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn fx_of(value: impl Hash) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn equal_keys_hash_equal() {
        assert_eq!(fx_of(42u64), fx_of(42u64));
        assert_eq!(fx_of("hello"), fx_of("hello"));
        assert_eq!(fx_of((1u32, vec![2u8, 3])), fx_of((1u32, vec![2u8, 3])));
    }

    #[test]
    fn distinct_keys_spread() {
        // Not a distribution test — just that the hasher is not degenerate.
        let hashes: std::collections::HashSet<u64> = (0u64..1000).map(fx_of).collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn short_tails_with_different_lengths_differ() {
        // The length tag in the tail word keeps b"a" and b"a\0" apart.
        assert_ne!(fx_of([1u8]), fx_of([1u8, 0]));
    }

    #[test]
    fn map_round_trips() {
        let mut map: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..100u32 {
            map.insert(format!("key{i}"), i);
        }
        for i in 0..100u32 {
            assert_eq!(map.get(&format!("key{i}")), Some(&i));
        }
    }
}
