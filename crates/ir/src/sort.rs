//! Sorts of the hybrid SMT term language.

use std::fmt;

/// A sort (type) in the hybrid SMT language.
///
/// Discrete sorts are [`Sort::Bool`], [`Sort::BitVec`] and
/// [`Sort::BoundedInt`]; continuous sorts are [`Sort::Real`] and
/// [`Sort::Float`].  Arrays combine an index and element sort.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Sort {
    /// The booleans.
    Bool,
    /// Fixed-width bit-vectors; the payload is the width in bits (1..=128).
    BitVec(u32),
    /// Bounded integers `[lo, hi]`; the paper's §V future-work extension.
    /// These are encoded as bit-vectors of minimal width by the solver.
    BoundedInt {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// The real numbers (continuous).
    Real,
    /// IEEE-754-style floating point with the given exponent and significand
    /// widths (continuous; handled by real relaxation in the solver).
    Float {
        /// Exponent width in bits.
        exp: u32,
        /// Significand width in bits (including the hidden bit).
        sig: u32,
    },
    /// Arrays from `index` to `element`.
    Array {
        /// Index sort.
        index: Box<Sort>,
        /// Element sort.
        element: Box<Sort>,
    },
}

impl Sort {
    /// The IEEE-754 single-precision float sort (`Float32`).
    pub fn float32() -> Sort {
        Sort::Float { exp: 8, sig: 24 }
    }

    /// The IEEE-754 double-precision float sort (`Float64`).
    pub fn float64() -> Sort {
        Sort::Float { exp: 11, sig: 53 }
    }

    /// Creates an array sort.
    pub fn array(index: Sort, element: Sort) -> Sort {
        Sort::Array {
            index: Box::new(index),
            element: Box::new(element),
        }
    }

    /// Returns `true` for sorts whose domain is finite and enumerable
    /// (booleans, bit-vectors, bounded integers).
    pub fn is_discrete(&self) -> bool {
        matches!(self, Sort::Bool | Sort::BitVec(_) | Sort::BoundedInt { .. })
    }

    /// Returns `true` for continuous sorts (reals and floats).
    pub fn is_continuous(&self) -> bool {
        matches!(self, Sort::Real | Sort::Float { .. })
    }

    /// Returns the bit-vector width, if this is a bit-vector sort.
    pub fn bv_width(&self) -> Option<u32> {
        match self {
            Sort::BitVec(w) => Some(*w),
            _ => None,
        }
    }

    /// Number of bits needed to represent every value of a discrete scalar
    /// sort, or `None` for continuous / array sorts.
    ///
    /// This is what the counter uses to size hash domains: booleans take one
    /// bit, bit-vectors their width, bounded integers the minimal width that
    /// covers `hi - lo`.
    pub fn discrete_bits(&self) -> Option<u32> {
        match self {
            Sort::Bool => Some(1),
            Sort::BitVec(w) => Some(*w),
            Sort::BoundedInt { lo, hi } => {
                let span = (*hi as i128 - *lo as i128).max(0) as u128;
                let mut bits = 1;
                while (1u128 << bits) <= span {
                    bits += 1;
                }
                Some(bits)
            }
            _ => None,
        }
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "Bool"),
            Sort::BitVec(w) => write!(f, "(_ BitVec {w})"),
            Sort::BoundedInt { lo, hi } => write!(f, "(_ BoundedInt {lo} {hi})"),
            Sort::Real => write!(f, "Real"),
            Sort::Float { exp, sig } => write!(f, "(_ FloatingPoint {exp} {sig})"),
            Sort::Array { index, element } => write!(f, "(Array {index} {element})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_and_continuous_classification() {
        assert!(Sort::Bool.is_discrete());
        assert!(Sort::BitVec(8).is_discrete());
        assert!(Sort::BoundedInt { lo: 0, hi: 10 }.is_discrete());
        assert!(!Sort::Real.is_discrete());
        assert!(Sort::Real.is_continuous());
        assert!(Sort::float32().is_continuous());
        assert!(!Sort::array(Sort::BitVec(4), Sort::BitVec(8)).is_discrete());
    }

    #[test]
    fn discrete_bits() {
        assert_eq!(Sort::Bool.discrete_bits(), Some(1));
        assert_eq!(Sort::BitVec(12).discrete_bits(), Some(12));
        assert_eq!(Sort::BoundedInt { lo: 0, hi: 1 }.discrete_bits(), Some(1));
        assert_eq!(Sort::BoundedInt { lo: 0, hi: 255 }.discrete_bits(), Some(8));
        assert_eq!(Sort::BoundedInt { lo: -4, hi: 3 }.discrete_bits(), Some(3));
        assert_eq!(Sort::Real.discrete_bits(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Sort::BitVec(8).to_string(), "(_ BitVec 8)");
        assert_eq!(Sort::float32().to_string(), "(_ FloatingPoint 8 24)");
        assert_eq!(
            Sort::array(Sort::BitVec(4), Sort::Real).to_string(),
            "(Array (_ BitVec 4) Real)"
        );
    }
}
