//! Synthetic hybrid-SMT workload generators for the `pact` evaluation.
//!
//! The paper evaluates on 3,119 SMT-LIB 2023 instances across six logics.
//! Those files (and the cluster infrastructure they were run on) are not
//! available here, so this crate provides parametric generators that produce
//! the same *kinds* of formulas — modelled on the paper's four motivating
//! applications (§I-A) — across the same six logics, plus the suite assembly
//! steps of the paper's methodology (cluster sampling and a satisfiability
//! filter).  See `DESIGN.md` for why this substitution preserves the shape of
//! the evaluation.
//!
//! # Example
//!
//! ```
//! use pact_benchgen::{paper_suite, SuiteParams};
//!
//! let suite = paper_suite(&SuiteParams::smoke());
//! assert!(suite.len() >= 6); // at least one instance per Table I logic
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generators;
mod instance;
mod suite;

pub use generators::{
    cfg_reachability, cps_robustness, generate_for_logic, hybrid_controller, information_flow,
    quantitative_verification, sensor_log, GenParams,
};
pub use instance::Instance;
pub use suite::{count_by_logic, filter_satisfiable, paper_suite, sample_clusters, SuiteParams};
