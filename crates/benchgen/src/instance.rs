//! The benchmark instance abstraction shared by every generator.

use pact_ir::logic::{profile, Logic};
use pact_ir::{printer, TermId, TermManager};

/// One benchmark instance: a self-contained formula with its projection set.
///
/// Each instance owns its [`TermManager`], so instances can be counted
/// independently (and in parallel by a harness if desired).
#[derive(Debug, Clone)]
pub struct Instance {
    /// Human-readable name, unique within a suite.
    pub name: String,
    /// The SMT-LIB logic this instance belongs to (Table I row).
    pub logic: Logic,
    /// Cluster identifier; the suite keeps at most a handful of instances
    /// per cluster, mirroring the paper's benchmark de-duplication.
    pub cluster: String,
    /// The term manager owning all terms below.
    pub tm: TermManager,
    /// The assertions of the formula.
    pub asserts: Vec<TermId>,
    /// The projection set `S` (discrete variables).
    pub projection: Vec<TermId>,
}

impl Instance {
    /// Renders the instance as an SMT-LIB 2 script (with the projection
    /// recorded as a `:projection` annotation), so it can be inspected or
    /// fed to an external solver.
    pub fn to_smtlib(&self) -> String {
        printer::script_to_smtlib(&self.tm, self.logic, &self.asserts, &self.projection)
    }

    /// Checks that the generated formula actually belongs to the logic it
    /// claims (used by the generator tests).
    pub fn logic_is_consistent(&self) -> bool {
        let p = profile(&self.tm, &self.asserts);
        match self.logic {
            Logic::QfAbv => p.bitvectors && p.arrays && !p.floats && !p.reals,
            Logic::QfUfbv => p.bitvectors && p.uninterpreted,
            Logic::QfBvfp => p.bitvectors && p.floats && !p.reals && !p.arrays,
            Logic::QfBvfplra => p.bitvectors && p.floats && p.reals && !p.arrays,
            Logic::QfAbvfp => p.bitvectors && p.floats && p.arrays && !p.reals,
            Logic::QfAbvfplra => p.bitvectors && p.floats && p.arrays && p.reals,
            Logic::QfBv => p.bitvectors,
            Logic::Other => true,
        }
    }

    /// Total number of projection bits (the size `|S|` relevant to the
    /// counter's complexity bound).
    pub fn projection_bits(&self) -> u32 {
        self.projection
            .iter()
            .map(|&v| self.tm.sort(v).discrete_bits().unwrap_or(0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_ir::Sort;

    #[test]
    fn smtlib_rendering_round_trips() {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(8));
        let c = tm.mk_bv_const(9, 8);
        let f = tm.mk_bv_ult(x, c).unwrap();
        let inst = Instance {
            name: "toy".to_string(),
            logic: Logic::QfBv,
            cluster: "toy".to_string(),
            tm,
            asserts: vec![f],
            projection: vec![x],
        };
        let text = inst.to_smtlib();
        let mut tm2 = TermManager::new();
        let script = pact_ir::parser::parse_script(&mut tm2, &text).unwrap();
        assert_eq!(script.asserts.len(), 1);
        assert_eq!(script.projection.len(), 1);
        assert!(inst.logic_is_consistent());
        assert_eq!(inst.projection_bits(), 8);
    }
}
