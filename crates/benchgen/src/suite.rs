//! Benchmark-suite assembly: parameter sweeps, cluster sampling and the
//! satisfiability / minimum-count filters of the paper's methodology (§IV).

use std::collections::HashMap;
use std::time::Duration;

use pact_ir::logic::Logic;
use pact_solver::{Context, SolverConfig, SolverResult};

use crate::generators::{generate_for_logic, GenParams};
use crate::instance::Instance;

/// Parameters of a suite build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteParams {
    /// Number of instances generated per logic (before cluster sampling).
    pub per_logic: u32,
    /// Minimum projected bit-width used in the sweep.
    pub min_width: u32,
    /// Maximum projected bit-width used in the sweep.
    pub max_width: u32,
    /// Maximum number of instances kept per cluster, mirroring the paper's
    /// "at most five benchmarks per cluster" sampling.
    pub max_per_cluster: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for SuiteParams {
    fn default() -> Self {
        SuiteParams {
            per_logic: 6,
            min_width: 6,
            max_width: 9,
            max_per_cluster: 5,
            seed: 2023,
        }
    }
}

impl SuiteParams {
    /// A tiny suite for unit tests and smoke runs.
    pub fn smoke() -> Self {
        SuiteParams {
            per_logic: 2,
            min_width: 5,
            max_width: 6,
            max_per_cluster: 5,
            seed: 7,
        }
    }
}

/// Builds the benchmark suite used by the Table I / Fig. 1 harnesses: a
/// parameter sweep over all six logics, then cluster sampling.
pub fn paper_suite(params: &SuiteParams) -> Vec<Instance> {
    let mut instances = Vec::new();
    for logic in Logic::TABLE_ONE {
        for i in 0..params.per_logic {
            let width = params.min_width + (i % (params.max_width - params.min_width + 1));
            let scale = 1 + (i % 3);
            let gen = GenParams {
                scale,
                width,
                seed: params
                    .seed
                    .wrapping_add(u64::from(i))
                    .wrapping_mul(0x100_0000_01b3)
                    ^ (logic as u64),
            };
            instances.push(generate_for_logic(logic, &gen));
        }
    }
    sample_clusters(instances, params.max_per_cluster)
}

/// Keeps at most `max_per_cluster` instances of every cluster, preserving
/// generation order (the paper's de-duplication step).
pub fn sample_clusters(instances: Vec<Instance>, max_per_cluster: usize) -> Vec<Instance> {
    let mut kept = Vec::with_capacity(instances.len());
    let mut counts: HashMap<String, usize> = HashMap::new();
    for inst in instances {
        let seen = counts.entry(inst.cluster.clone()).or_insert(0);
        if *seen < max_per_cluster {
            *seen += 1;
            kept.push(inst);
        }
    }
    kept
}

/// Drops instances that are not obviously satisfiable within a small solver
/// budget — the analogue of the paper's "CVC5 finds a model within 5 s"
/// filter.  Returns the surviving instances.
pub fn filter_satisfiable(instances: Vec<Instance>, budget: Duration) -> Vec<Instance> {
    let conflicts = (budget.as_millis() as u64).max(1) * 10;
    instances
        .into_iter()
        .filter_map(|mut inst| {
            let mut ctx = Context::with_config(SolverConfig {
                max_conflicts: Some(conflicts),
                ..SolverConfig::default()
            });
            for &v in &inst.projection {
                ctx.track_var(v);
            }
            for &a in &inst.asserts {
                ctx.assert_term(a);
            }
            match ctx.check(&mut inst.tm) {
                Ok(SolverResult::Sat) => Some(inst),
                _ => None,
            }
        })
        .collect()
}

/// Per-logic instance counts of a suite, in Table I row order.
pub fn count_by_logic(instances: &[Instance]) -> Vec<(Logic, usize)> {
    Logic::TABLE_ONE
        .iter()
        .map(|&logic| (logic, instances.iter().filter(|i| i.logic == logic).count()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_logics() {
        let suite = paper_suite(&SuiteParams::smoke());
        let counts = count_by_logic(&suite);
        for (logic, n) in counts {
            assert!(n >= 1, "logic {logic} missing from the suite");
        }
    }

    #[test]
    fn cluster_sampling_caps_duplicates() {
        let params = SuiteParams {
            per_logic: 8,
            min_width: 6,
            max_width: 6, // all instances of a logic share a width bucket
            max_per_cluster: 3,
            seed: 1,
        };
        let suite = paper_suite(&params);
        let mut per_cluster: HashMap<&str, usize> = HashMap::new();
        for inst in &suite {
            *per_cluster.entry(inst.cluster.as_str()).or_default() += 1;
        }
        for (cluster, n) in per_cluster {
            assert!(n <= 3, "cluster {cluster} has {n} instances");
        }
    }

    #[test]
    fn instance_names_are_unique() {
        let suite = paper_suite(&SuiteParams::smoke());
        let mut names: Vec<&str> = suite.iter().map(|i| i.name.as_str()).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn satisfiability_filter_keeps_generated_instances() {
        let suite = paper_suite(&SuiteParams::smoke());
        let expected = suite.len();
        let kept = filter_satisfiable(suite, Duration::from_millis(500));
        // Our generators only emit satisfiable formulas, so nothing is lost.
        assert_eq!(kept.len(), expected);
    }
}
